"""One front door: the spec-driven ``repro.api`` facade.

Every way of running the reproduction — a single deployment, a
declarative adversarial/WAN scenario, a parameter sweep or a full paper
figure — goes through this module:

* :func:`run` — one :class:`~repro.scenarios.spec.ScenarioSpec` (or a
  preset name, spec file path or plain dict) → one
  :class:`~repro.results.RunResult` with a stable JSON schema.
* :func:`sweep` — a base spec plus a grid of overrides, fanned out over
  the shared worker-process pool; returns one ``RunResult`` per cell.
* :func:`figure` — any paper table/figure as a
  :class:`~repro.experiments.export.FigureArtifact`; ``quick=True``
  applies the same reduced-size profile the CLI uses.
* :func:`deploy` — the escape hatch: a fully wired, not-yet-started
  :class:`~repro.experiments.runner.Deployment` compiled from a spec,
  for callers that need the live simulator (drop rules, QC audits).

    >>> from repro import api
    >>> result = api.run("partition-heal", quick=True)
    >>> result.summary()["committed_blocks"] > 0
    True
    >>> runs = api.sweep("rack-baseline", {"aggregation": ["star", "iniva"]},
    ...                  quick=True)
    >>> len(runs)
    2

Fixed seeds make every entry point deterministic; ``RunResult.to_dict``
round-trips through JSON for archival and diffing.
"""

from __future__ import annotations

import itertools
import os
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.experiments.export import FigureArtifact
from repro.experiments.runner import parallel_map
from repro.results import RESULT_SCHEMA, RunResult
from repro.scenarios.engine import (
    build_scenario_deployment,
    compile_scenario,
    run_scenario,
)
from repro.scenarios.presets import PRESETS, load_preset, preset_names
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "FIGURES",
    "Figure",
    "QUICK_PROFILES",
    "RESULT_SCHEMA",
    "RunResult",
    "ScenarioSpec",
    "deploy",
    "expand_grid",
    "figure",
    "list_figures",
    "list_presets",
    "resolve_spec",
    "run",
    "sweep",
]

SpecLike = Union[ScenarioSpec, str, Path, Mapping[str, Any]]


# ---------------------------------------------------------------------------
# Spec resolution
# ---------------------------------------------------------------------------
def resolve_spec(spec_or_preset: SpecLike) -> ScenarioSpec:
    """Turn any accepted description of a run into a :class:`ScenarioSpec`.

    Accepts a spec instance (returned as-is), a plain mapping
    (``ScenarioSpec.from_dict``), a path to a JSON/YAML spec file, or a
    string — preset names always win over same-named local files so a
    stray directory can't shadow the catalogue.
    """
    if isinstance(spec_or_preset, ScenarioSpec):
        return spec_or_preset
    if isinstance(spec_or_preset, Mapping):
        return ScenarioSpec.from_dict(spec_or_preset)
    if isinstance(spec_or_preset, Path):
        return ScenarioSpec.load(spec_or_preset)
    name = str(spec_or_preset)
    if name in PRESETS:
        return load_preset(name)
    if os.path.isfile(name):
        return ScenarioSpec.load(name)
    if name.lower().endswith((".json", ".yaml", ".yml")):
        raise FileNotFoundError(f"scenario spec file not found: {name}")
    return load_preset(name)  # raises KeyError listing the catalogue


def list_presets() -> List[str]:
    """Names of the built-in scenario presets."""
    return preset_names()


# ---------------------------------------------------------------------------
# run / deploy
# ---------------------------------------------------------------------------
def run(
    spec_or_preset: SpecLike,
    *,
    quick: bool = False,
    seed: Optional[int] = None,
    runtime: str = "sim",
    overrides: Optional[Mapping[str, Any]] = None,
    **runtime_options: Any,
) -> RunResult:
    """Run one scenario end to end and return the unified result.

    Args:
        spec_or_preset: Spec instance, preset name, spec file path or dict.
        quick: Shrink the spec via :meth:`ScenarioSpec.quick` so the run
            finishes in seconds (the CI/CLI quick profile).
        seed: Optional seed override applied before running.
        overrides: Spec-field overrides applied before running, dotted
            paths allowed (``{"workload.rate": 800}``) — how the CLI's
            ``--rate``/``--clients``/``--arrival`` flags reach the spec.
        runtime: ``"sim"`` (deterministic discrete-event simulation, the
            default) or ``"live"`` (an asyncio cluster of real replica
            processes over localhost TCP, with the :mod:`repro.chaos`
            layer injecting the spec's partitions, loss, WAN latency,
            bandwidth limits, crash-restart churn and Byzantine cartels
            onto the real transport).  Both return the same
            :class:`RunResult` schema and run every built-in preset.
        **runtime_options: Live-runtime knobs forwarded to
            :func:`repro.runtime.live.run_live` — ``duration`` (wall
            seconds), ``target_blocks`` (stop early once a node commits
            this many) and ``procs`` (worker subprocess count).

    Returns:
        One :class:`RunResult`; ``to_json()`` emits the stable
        ``repro.run-result/1`` document for archival and diffing.
    """
    spec = resolve_spec(spec_or_preset)
    if seed is not None:
        spec = spec.with_(seed=seed)
    if overrides:
        spec = spec.with_(**_nest_dotted(overrides))
    if runtime == "live":
        from repro.runtime.live import run_live

        return run_live(spec, quick=quick, **runtime_options)
    if runtime != "sim":
        raise ValueError(f"unknown runtime {runtime!r} (expected 'sim' or 'live')")
    if runtime_options:
        unknown = ", ".join(sorted(runtime_options))
        raise TypeError(f"sim runtime does not accept options: {unknown}")
    return run_scenario(spec, quick=quick)


def deploy(
    spec_or_preset: SpecLike, *, quick: bool = False, epoch: int = 0, runtime: str = "sim"
):
    """Compile a spec into a fully wired, not-yet-started deployment.

    With ``runtime="sim"`` (default) the workload is attached and
    crash/partition/attack schedules are installed, but
    ``deployment.start()`` / ``simulator.run(...)`` are left to the
    caller — use this when you need the live simulator (e.g. custom drop
    rules or auditing QCs out of replica state).  With ``runtime="live"``
    you get a not-yet-started :class:`~repro.runtime.live.LiveCluster`
    whose ``run()`` brings up the asyncio TCP committee.
    """
    spec = resolve_spec(spec_or_preset)
    if quick:
        spec = spec.quick()
    return build_scenario_deployment(compile_scenario(spec), epoch, runtime=runtime)


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------
def _nest_dotted(overrides: Mapping[str, Any]) -> Dict[str, Any]:
    """Expand ``{"workload.rate": 5}`` into ``{"workload": {"rate": 5}}``."""
    nested: Dict[str, Any] = {}
    for key, value in overrides.items():
        if "." in key:
            head, _, rest = key.partition(".")
            bucket = nested.setdefault(head, {})
            if not isinstance(bucket, dict):
                raise ValueError(f"override {key!r} conflicts with {head!r}")
            bucket[rest] = value
        elif key in nested and isinstance(nested[key], dict) and isinstance(value, Mapping):
            nested[key].update(value)
        else:
            nested[key] = dict(value) if isinstance(value, Mapping) else value
    return nested


def expand_grid(grid: Union[None, Mapping[str, Sequence[Any]], Iterable[Mapping[str, Any]]]) -> List[Dict[str, Any]]:
    """Normalise a sweep grid into a list of override mappings.

    A mapping of ``field -> list of values`` expands to the cartesian
    product (fields may use dotted paths like ``"workload.rate"``); an
    iterable of mappings is taken cell-by-cell; ``None`` is one empty
    cell.  A bare scalar (including a string) counts as a single value,
    not a sequence — ``{"aggregation": "star"}`` is one cell, not four
    per-character ones.  Order is deterministic: the last field varies
    fastest.
    """
    if grid is None:
        return [{}]
    if isinstance(grid, Mapping):
        keys = list(grid)
        value_lists = [
            [value] if isinstance(value, (str, bytes)) or not _is_sequence(value) else list(value)
            for value in (grid[key] for key in keys)
        ]
        return [
            _nest_dotted(dict(zip(keys, combo)))
            for combo in itertools.product(*value_lists)
        ]
    return [_nest_dotted(cell) for cell in grid]


def _is_sequence(value: Any) -> bool:
    try:
        iter(value)
    except TypeError:
        return False
    return not isinstance(value, Mapping)


def sweep(
    base_spec: SpecLike,
    grid: Union[None, Mapping[str, Sequence[Any]], Iterable[Mapping[str, Any]]] = None,
    *,
    quick: bool = False,
    max_workers: Optional[int] = None,
) -> List[RunResult]:
    """Run one scenario per grid cell, in parallel where possible.

    Each cell's overrides are merged onto ``base_spec`` via
    :meth:`ScenarioSpec.with_` (nested specs accept partial dicts), the
    resulting specs fan out over the shared process pool, and the results
    come back in grid order.  ``REPRO_MAX_WORKERS`` (or ``max_workers``)
    bounds the parallelism; one worker reproduces the serial run exactly.

    Args:
        base_spec: Spec instance, preset name, spec file path or dict
            every cell starts from.
        grid: ``field -> values`` mapping (cartesian product, dotted
            paths allowed), an iterable of per-cell override mappings,
            or ``None`` for a single unmodified run.
        quick: Shrink every cell via :meth:`ScenarioSpec.quick`.
        max_workers: Cap on the worker-process pool (defaults to the
            ``REPRO_MAX_WORKERS`` environment variable).

    Returns:
        One :class:`RunResult` per grid cell, in grid order.
    """
    base = resolve_spec(base_spec)
    specs = [base.with_(**cell) if cell else base for cell in expand_grid(grid)]
    if quick:
        specs = [spec.quick() for spec in specs]
    return parallel_map(run_scenario, specs, max_workers=max_workers)


# ---------------------------------------------------------------------------
# figures
# ---------------------------------------------------------------------------
class Figure:
    """One reproducible paper table/figure and how to present it.

    Attributes:
        name: Catalogue key (``"fig3c"``, ``"table1"``, ...).
        title: Human-readable caption used by exports.
        runner: Callable producing the figure's rows (one dict per
            data point); resolved lazily to keep the import graph
            acyclic.
        series_key: Row field that splits the data into plot series,
            or ``None`` for tabular output.
        x, y: Row fields plotted on each axis, or ``None``.
    """

    def __init__(
        self,
        name: str,
        title: str,
        runner: Callable[..., List[Dict[str, object]]],
        series_key: Optional[str] = None,
        x: Optional[str] = None,
        y: Optional[str] = None,
    ) -> None:
        self.name = name
        self.title = title
        self.runner = runner
        self.series_key = series_key
        self.x = x
        self.y = y


def _run_table1(seed: int = 1, attacker_power: float = 0.1, gosig_trials: int = 800, **kwargs):
    from repro.analysis.table1 import table1

    rows = table1(
        attacker_power=attacker_power, gosig_trials=gosig_trials, seed=seed, **kwargs
    )
    return [row.as_dict() for row in rows]


def _figure_runner(module: str, func: str) -> Callable[..., List[Dict[str, object]]]:
    # Figure modules import repro.api for sweep(), so they are resolved
    # lazily here to keep the import graph acyclic.
    def call(**kwargs):
        import importlib

        return getattr(importlib.import_module(module), func)(**kwargs)

    return call


FIGURES: Dict[str, Figure] = {
    fig.name: fig
    for fig in (
        Figure("table1", "Table I: scheme comparison", _run_table1),
        Figure(
            "fig2a",
            "Figure 2a: 0-collateral omission probability",
            _figure_runner("repro.experiments.security", "figure_2a"),
            series_key="protocol",
            x="attacker_power",
            y="omission_probability",
        ),
        Figure(
            "fig2b",
            "Figure 2b: omission probability vs collateral",
            _figure_runner("repro.experiments.security", "figure_2b"),
            series_key="protocol",
            x="collateral",
            y="omission_probability",
        ),
        Figure(
            "fig2c",
            "Figure 2c: reward lost under collateral-0 attacks",
            _figure_runner("repro.experiments.security", "figure_2c"),
        ),
        Figure(
            "fig2d",
            "Figure 2d: reward lost with large collateral",
            _figure_runner("repro.experiments.security", "figure_2d"),
        ),
        Figure(
            "fig3a",
            "Figure 3a: throughput vs latency",
            _figure_runner("repro.experiments.throughput", "figure_3a"),
            series_key="scheme",
            x="throughput_ops",
            y="latency_ms",
        ),
        Figure(
            "fig3b",
            "Figure 3b: CPU usage",
            _figure_runner("repro.experiments.cpu", "figure_3b"),
        ),
        Figure(
            "fig3c",
            "Figure 3c: scalability",
            _figure_runner("repro.experiments.scalability", "figure_3c"),
            series_key="scheme",
            x="replicas",
            y="throughput_ops",
        ),
        Figure(
            "fig4",
            "Figure 4: resiliency under crash faults",
            _figure_runner("repro.experiments.resiliency", "figure_4"),
            series_key="variant",
            x="faulty_nodes",
            y="throughput_ops",
        ),
    )
}

#: The single quick-profile table: reduced trial counts / durations per
#: figure so every entry finishes in seconds.  ``figure(name, quick=True)``
#: and the CLI's ``--quick`` flag both read from here.
QUICK_PROFILES: Dict[str, Dict[str, Any]] = {
    "table1": {"gosig_trials": 100},
    "fig2a": {"attacker_powers": (0.05, 0.10, 0.15), "gosig_trials": 60, "iniva_trials": 800},
    "fig2b": {"collaterals": (0, 2, 4, 6, 8), "gosig_trials": 60, "iniva_trials": 600},
    "fig2c": {"attacker_powers": (0.1, 0.3), "trials": 80},
    "fig2d": {"trials": 80},
    "fig3a": {"committee_size": 9, "loads": (2_000, 6_000), "duration": 1.0, "warmup": 0.2},
    "fig3b": {
        "committee_size": 9,
        "payload_sizes": (64,),
        "saturation_load": 6_000,
        "duration": 1.0,
        "warmup": 0.2,
    },
    "fig3c": {
        "replica_counts": (9, 13),
        "payload_sizes": (64,),
        "load": 4_000,
        "duration": 1.0,
        "warmup": 0.2,
    },
    "fig4": {
        "committee_size": 9,
        "fault_counts": (0, 1, 2),
        "load": 2_000,
        "duration": 1.5,
        "warmup": 0.2,
        "view_timeout": 0.1,
    },
}


def list_figures() -> List[str]:
    """Names of the reproducible paper tables/figures."""
    return list(FIGURES)


def figure(
    name: str, *, quick: bool = False, seed: int = 1, **overrides: Any
) -> FigureArtifact:
    """Reproduce one paper table/figure and return its artifact.

    Args:
        name: Figure name (see :func:`list_figures`).
        quick: Apply the figure's :data:`QUICK_PROFILES` entry (reduced
            trials and durations) before ``overrides``.
        seed: Seed forwarded to the figure harness.
        overrides: Extra keyword arguments for the underlying
            ``figure_*`` function (grid sizes, trial counts, ...).

    Returns:
        A :class:`~repro.experiments.export.FigureArtifact` holding the
        rows plus presentation metadata; its ``write()`` exports
        CSV/JSON/Markdown/plot files.
    """
    try:
        entry = FIGURES[name]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {name!r} (known: {known})") from None
    kwargs: Dict[str, Any] = {}
    if quick:
        kwargs.update(QUICK_PROFILES.get(name, {}))
    kwargs.update(overrides)
    rows = entry.runner(seed=seed, **kwargs)
    return FigureArtifact(
        name=entry.name,
        title=entry.title,
        rows=list(rows),
        series_key=entry.series_key,
        x=entry.x,
        y=entry.y,
    )
