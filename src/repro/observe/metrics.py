"""A unified registry of named counters, gauges, and histograms.

Telemetry grew organically: transport counters live on ``LiveNode``,
resilience counters on sessions and the supervisor, client counters on
the admission path — each with its own merge logic in
``_experiment_result``.  The registry subsumes them behind one
snapshot-and-merge API with fixed semantics:

- **counters** add across shards (messages, bytes, drops, restarts),
- **gauges** take the max (peak queue depth, highest incarnation),
- **histograms** are :class:`~repro.clients.stats.LatencyDigest`
  instances, which merge by adding log-buckets.

Nodes fill a registry at summary time from their existing counters
(zero hot-path rewiring), workers ship ``snapshot()`` dicts over the
stdout summary channel, and the parent folds them with
:func:`merge_snapshots` — the same shape the tracer uses.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..clients.stats import LatencyDigest

__all__ = ["MetricsRegistry", "merge_snapshots"]


class MetricsRegistry:
    """Named counters/gauges/histograms with one JSON-safe snapshot."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, LatencyDigest] = {}

    # -- recording ---------------------------------------------------------------
    def counter(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + int(amount)

    def gauge(self, name: str, value: float) -> None:
        """Record a gauge observation; merged snapshots keep the max."""
        current = self._gauges.get(name)
        if current is None or value > current:
            self._gauges[name] = float(value)

    def histogram(self, name: str) -> LatencyDigest:
        """The named histogram, created on first use."""
        digest = self._histograms.get(name)
        if digest is None:
            digest = LatencyDigest()
            self._histograms[name] = digest
        return digest

    def observe(self, name: str, seconds: float) -> None:
        """Shorthand: record one sample into the named histogram."""
        self.histogram(name).record(seconds)

    def fill_counters(self, counters: Mapping[str, int], *, prefix: str = "") -> None:
        """Bulk-import an existing ad-hoc counter dict (summary-time)."""
        for name, value in counters.items():
            self.counter(f"{prefix}{name}", int(value))

    # -- reading -----------------------------------------------------------------
    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        return self._gauges.get(name, 0.0)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe form; histograms serialise as LatencyDigest dicts."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: digest.to_dict() for name, digest in self._histograms.items()},
        }


def merge_snapshots(snapshots: Iterable[Optional[Dict[str, object]]]) -> Dict[str, object]:
    """Fold registry snapshots from many nodes/workers into one.

    Counters add, gauges take the max, histograms merge bucket-wise.
    ``None``/empty entries (salvaged workers that died before summary)
    are tolerated and contribute nothing.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, LatencyDigest] = {}
    for snap in snapshots:
        if not snap:
            continue
        for name, value in dict(snap.get("counters", {})).items():  # type: ignore[arg-type]
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in dict(snap.get("gauges", {})).items():  # type: ignore[arg-type]
            current = gauges.get(name)
            numeric = float(value)
            if current is None or numeric > current:
                gauges[name] = numeric
        for name, payload in dict(snap.get("histograms", {})).items():  # type: ignore[arg-type]
            digest = LatencyDigest.from_dict(payload)
            if name in histograms:
                histograms[name].merge(digest)
            else:
                histograms[name] = digest
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": {name: digest.to_dict() for name, digest in histograms.items()},
    }
