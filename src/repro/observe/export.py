"""Trace export: schema'd JSON document, JSONL, and Chrome trace-event.

The canonical on-disk form is a single JSON document (schema
``repro.trace/1``) wrapping the merged tracer snapshot.  Two derived
views exist for tooling:

- **JSONL** — one event per line, grep/jq-friendly;
- **Chrome trace-event JSON** — loadable in Perfetto / ``chrome://tracing``,
  with each replica as a track (``tid``) and each event as an instant
  event plus duration slices for the per-block critical path from
  :mod:`repro.observe.report`.

Validation is hand-rolled (the container has no ``jsonschema``): a
:func:`validate_trace` pass returns a list of human-readable problems,
empty when the document is well-formed.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Mapping, Optional

from .trace import EVENT_TYPES

__all__ = [
    "TRACE_SCHEMA",
    "trace_document",
    "to_jsonl",
    "write_jsonl",
    "to_chrome_trace",
    "validate_trace",
]

TRACE_SCHEMA = "repro.trace/1"

#: Fields every event must carry; anything else is event-type payload.
_REQUIRED_EVENT_FIELDS = ("type", "pid", "t", "seq")


def trace_document(
    snapshot: Mapping[str, object],
    *,
    spec_name: str = "",
    seed: int = 0,
    runtime: str = "",
) -> Dict[str, object]:
    """Wrap a merged tracer snapshot in the versioned trace document."""
    return {
        "schema": TRACE_SCHEMA,
        "run_id": snapshot.get("run_id", ""),
        "spec": spec_name,
        "seed": seed,
        "runtime": runtime,
        "capacity": snapshot.get("capacity", 0),
        "sample_rate": snapshot.get("sample_rate", 1.0),
        "dropped": snapshot.get("dropped", 0),
        "events": list(snapshot.get("events", [])),  # type: ignore[arg-type]
    }


def to_jsonl(document: Mapping[str, object]) -> str:
    """One JSON object per line: a header line, then one line per event."""
    header = {key: value for key, value in document.items() if key != "events"}
    lines = [json.dumps(header, sort_keys=True)]
    for event in document.get("events", []):  # type: ignore[union-attr]
        lines.append(json.dumps(event, sort_keys=True))
    return "\n".join(lines) + "\n"


def write_jsonl(document: Mapping[str, object], stream: IO[str]) -> None:
    stream.write(to_jsonl(document))


def to_chrome_trace(
    document: Mapping[str, object],
    *,
    critical_paths: Optional[Iterable[Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """Chrome trace-event JSON (Perfetto-loadable).

    Every consensus event becomes an instant event (phase ``"i"``) on
    the emitting replica's track; per-block critical-path segments (if
    supplied from :func:`repro.observe.report.critical_path`) become
    complete slices (phase ``"X"``) on a dedicated ``critical-path``
    track.  Timestamps are microseconds per the trace-event spec.
    """
    run_id = str(document.get("run_id", "trace"))
    trace_events: List[Dict[str, object]] = []
    pids_seen = set()
    for event in document.get("events", []):  # type: ignore[union-attr]
        pid = int(event.get("pid", 0))
        pids_seen.add(pid)
        args = {
            key: value
            for key, value in event.items()
            if key not in ("type", "pid", "t")
        }
        trace_events.append(
            {
                "name": str(event.get("type", "event")),
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": round(float(event.get("t", 0.0)) * 1e6, 3),
                "pid": run_id,
                "tid": f"replica-{pid}",
                "args": args,
            }
        )
    for pid in sorted(pids_seen):
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": run_id,
                "tid": f"replica-{pid}",
                "args": {"name": f"replica {pid}"},
            }
        )
    if critical_paths:
        for path in critical_paths:
            block = str(path.get("block", ""))
            for segment in path.get("segments", []):  # type: ignore[union-attr]
                trace_events.append(
                    {
                        "name": f"{segment['name']} {block}",
                        "ph": "X",
                        "ts": round(float(segment["start"]) * 1e6, 3),
                        "dur": max(0.0, round(float(segment["duration"]) * 1e6, 3)),
                        "pid": run_id,
                        "tid": "critical-path",
                        "args": {"block": block},
                    }
                )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def validate_trace(document: Mapping[str, object]) -> List[str]:
    """Check a trace document against ``repro.trace/1``.

    Returns a list of problems (empty means valid).  Checks: schema
    tag, header field types, event envelope fields, taxonomy
    membership, and per-pid ``seq`` monotonicity.
    """
    problems: List[str] = []
    if document.get("schema") != TRACE_SCHEMA:
        problems.append(f"schema must be {TRACE_SCHEMA!r}, got {document.get('schema')!r}")
    if not isinstance(document.get("run_id"), str) or not document.get("run_id"):
        problems.append("run_id must be a non-empty string")
    for field, kind in (("capacity", int), ("dropped", int)):
        value = document.get(field)
        if not isinstance(value, int) or isinstance(value, bool) or value < 0:
            problems.append(f"{field} must be a non-negative integer, got {value!r}")
    sample_rate = document.get("sample_rate")
    if not isinstance(sample_rate, (int, float)) or not 0.0 < float(sample_rate) <= 1.0:
        problems.append(f"sample_rate must be in (0, 1], got {sample_rate!r}")
    events = document.get("events")
    if not isinstance(events, list):
        problems.append("events must be a list")
        return problems
    last_seq: Dict[int, int] = {}
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {position} is not an object")
            continue
        missing = [field for field in _REQUIRED_EVENT_FIELDS if field not in event]
        if missing:
            problems.append(f"event {position} missing fields {missing}")
            continue
        etype = event["type"]
        if etype not in EVENT_TYPES:
            problems.append(f"event {position} has unknown type {etype!r}")
        pid = event["pid"]
        if not isinstance(pid, int) or isinstance(pid, bool) or pid < 0:
            problems.append(f"event {position} pid must be a non-negative integer")
            continue
        if not isinstance(event["t"], (int, float)):
            problems.append(f"event {position} t must be numeric")
        seq = event["seq"]
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            problems.append(f"event {position} seq must be a non-negative integer")
            continue
        previous = last_seq.get(pid)
        if previous is not None and seq <= previous:
            problems.append(
                f"event {position}: pid {pid} seq {seq} not greater than previous {previous}"
            )
        last_seq[pid] = seq
        if len(problems) >= 50:
            problems.append("... (truncated)")
            break
    return problems
