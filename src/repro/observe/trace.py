"""Low-overhead per-replica consensus event tracer.

The tracer records *why* a run behaved the way it did: a bounded ring
buffer of typed consensus events (view entries, proposals, share
arrivals, QC formation, commits, 2ND-CHANCE firings, suspicion state,
reconnects, sync, client admission) with a monotonic timestamp and a
per-replica logical sequence number.  Both runtimes emit through the
same taxonomy, so a sim trace and a live trace of the same spec+seed
are directly comparable on their deterministic subsequence
(``propose``/``qc_formed``/``commit`` carry block ids that the preload
parity harness pins identical across runtimes).

Design constraints, in order:

1. **Hot-path cost when disabled is one attribute load + ``is None``
   check** — emission sites fetch ``metrics.tracer`` and skip when
   unset, so runs without ``observe.enabled`` pay nothing else.
2. **Bounded memory** — a ``deque(maxlen=capacity)`` ring per tracer;
   overflow increments ``dropped`` instead of growing.
3. **Deterministic sampling** — ``sample_view`` hashes ``(view, seed)``
   so sim and live sample the *same* views; wall-clock and
   ``random.random()`` never decide what gets traced.
4. **JSON-safe flat events** — worker tracers ship their snapshot over
   the existing stdout summary channel; events must round-trip through
   ``json.dumps`` unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "EVENT_TYPES",
    "Tracer",
    "merge_snapshots",
    "seeded_run_id",
]

#: The consensus event taxonomy.  Emission sites may only use these
#: names; the export validator rejects anything else so the schema and
#: the docs cannot drift apart silently.
EVENT_TYPES = frozenset(
    {
        "view_enter",
        "propose",
        "share_recv",
        "share_verified",
        "qc_formed",
        "commit",
        "second_chance",
        "suspicion_raised",
        "suspicion_cleared",
        "reconnect",
        "sync",
        "client_admit",
        "client_reply",
    }
)

#: Knuth's multiplicative hash constant — also used by the scenario
#: compiler for attacker selection, so it is already part of the
#: repo's deterministic-seeding idiom.
_HASH_MULT = 2654435761
#: Second odd constant (golden-ratio for 64 bits) so the seed perturbs
#: the whole sampled set rather than nudging the threshold by one.
_HASH_MULT2 = 0x9E3779B97F4A7C15


def seeded_run_id(name: str, seed: int) -> str:
    """A stable run identifier derived purely from the spec identity.

    Both runtimes (and every ``--procs`` worker) derive the same id for
    the same spec+seed, which is what lets a merged worker trace and a
    sim trace be recognised as runs of the same experiment.
    """
    return f"{name}-{seed}"


class Tracer:
    """Bounded ring buffer of consensus events for one trace domain.

    Sim attaches one tracer to the deployment-wide
    :class:`~repro.simnet.metrics.MetricsCollector` (events carry the
    replica ``pid`` explicitly); live attaches one per node, and the
    fabric merges worker snapshots with :func:`merge_snapshots`.
    """

    __slots__ = ("run_id", "capacity", "sample_rate", "seed", "dropped", "_events", "_seq", "_ticks")

    def __init__(
        self,
        run_id: str,
        *,
        capacity: int = 4096,
        sample_rate: float = 1.0,
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be >= 1")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.run_id = run_id
        self.capacity = capacity
        self.sample_rate = sample_rate
        self.seed = seed
        self.dropped = 0
        self._events: Deque[Dict[str, object]] = deque(maxlen=capacity)
        #: Per-pid logical clocks: a replica's events are totally ordered
        #: by ``seq`` even when wall timestamps collide or skew.
        self._seq: Dict[int, int] = {}
        self._ticks: Dict[str, int] = {}

    # -- sampling ----------------------------------------------------------------
    def sample_view(self, view: int) -> bool:
        """Deterministically decide whether events of ``view`` are traced.

        Hash-based on ``(view, seed)`` so sim and live — and every
        worker — agree on the sampled set.  At ``sample_rate=1.0`` this
        is always true.
        """
        if self.sample_rate >= 1.0:
            return True
        mixed = (view + 1) * _HASH_MULT ^ (self.seed + 1) * _HASH_MULT2
        return (mixed % 10000) < int(self.sample_rate * 10000)

    def sample_tick(self, key: str) -> bool:
        """Counter-based sampling for per-request event streams.

        Used where there is no view to hash (e.g. ``client_admit``):
        every ``1/sample_rate``-th call per key passes.
        """
        if self.sample_rate >= 1.0:
            return True
        tick = self._ticks.get(key, 0)
        self._ticks[key] = tick + 1
        period = max(1, int(round(1.0 / self.sample_rate)))
        return tick % period == 0

    # -- recording ---------------------------------------------------------------
    def emit(self, etype: str, pid: int, t: float, **fields: object) -> None:
        """Append one event.  ``t`` is the runtime's ``now`` (virtual
        seconds in sim, epoch-relative wall seconds live)."""
        seq = self._seq.get(pid, 0)
        self._seq[pid] = seq + 1
        if len(self._events) == self.capacity:
            self.dropped += 1
        event: Dict[str, object] = {"type": etype, "pid": pid, "t": round(t, 6), "seq": seq}
        if fields:
            event.update(fields)
        self._events.append(event)

    # -- reading -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Dict[str, object]]:
        return list(self._events)

    def snapshot(self) -> Dict[str, object]:
        """The JSON-safe form shipped over the worker summary channel."""
        return {
            "run_id": self.run_id,
            "capacity": self.capacity,
            "sample_rate": self.sample_rate,
            "dropped": self.dropped,
            "events": list(self._events),
        }


def merge_snapshots(snapshots: Iterable[Optional[Dict[str, object]]]) -> Dict[str, object]:
    """Fold per-node/per-worker tracer snapshots into one trace.

    Events are ordered by ``(t, pid, seq)`` — timestamp first so the
    merged stream reads chronologically, with the per-pid logical clock
    breaking ties deterministically.  ``dropped`` counts add; the
    merged capacity is the sum of the parts (it describes the combined
    buffer budget, not a new ring).
    """
    merged_events: List[Dict[str, object]] = []
    run_id = ""
    capacity = 0
    sample_rate = 1.0
    dropped = 0
    for snap in snapshots:
        if not snap:
            continue
        run_id = run_id or str(snap.get("run_id", ""))
        capacity += int(snap.get("capacity", 0))
        sample_rate = float(snap.get("sample_rate", sample_rate))
        dropped += int(snap.get("dropped", 0))
        merged_events.extend(snap.get("events", []))  # type: ignore[arg-type]
    merged_events.sort(key=_event_order)
    return {
        "run_id": run_id,
        "capacity": capacity,
        "sample_rate": sample_rate,
        "dropped": dropped,
        "events": merged_events,
    }


def _event_order(event: Dict[str, object]) -> Sequence[object]:
    return (
        float(event.get("t", 0.0)),
        int(event.get("pid", -1)),
        int(event.get("seq", 0)),
    )
