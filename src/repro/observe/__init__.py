"""Observability: consensus tracing, unified metrics, forensic reports.

- :mod:`repro.observe.trace` — bounded per-replica event tracer with a
  fixed consensus taxonomy, deterministic sampling, and mergeable
  snapshots that ride the worker summary channel;
- :mod:`repro.observe.metrics` — named counters/gauges/histograms with
  one snapshot-and-merge API (histograms are ``LatencyDigest``);
- :mod:`repro.observe.export` — ``repro.trace/1`` documents, JSONL,
  Chrome trace-event (Perfetto) export, and schema validation;
- :mod:`repro.observe.report` — per-block critical-path reconstruction
  and the markdown forensic report;
- :mod:`repro.observe.logging_setup` — the one stderr logging
  configuration (``REPRO_LOG_LEVEL``).
"""

from .export import TRACE_SCHEMA, to_chrome_trace, to_jsonl, trace_document, validate_trace
from .logging_setup import configure_logging
from .metrics import MetricsRegistry
from .metrics import merge_snapshots as merge_metrics_snapshots
from .report import critical_path, forensic_report
from .trace import EVENT_TYPES, Tracer, seeded_run_id
from .trace import merge_snapshots as merge_trace_snapshots

__all__ = [
    "EVENT_TYPES",
    "TRACE_SCHEMA",
    "MetricsRegistry",
    "Tracer",
    "configure_logging",
    "critical_path",
    "forensic_report",
    "merge_metrics_snapshots",
    "merge_trace_snapshots",
    "seeded_run_id",
    "to_chrome_trace",
    "to_jsonl",
    "trace_document",
    "validate_trace",
]
