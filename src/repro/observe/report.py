"""Per-block critical-path reconstruction and the forensic run report.

HotStuff-style responsiveness claims are only checkable against a
breakdown of *where* each block's commit latency went.  Given a merged
trace, :func:`critical_path` rebuilds the pipeline per block:

``propose → transit → verify → aggregate → commit``

- **transit**: proposal broadcast until the first share arrives back at
  the aggregation point (``propose`` → first ``share_recv``);
- **verify**: share arrival until the last crypto check completes
  (first ``share_recv`` → last ``share_verified``);
- **aggregate**: verification until the QC forms (… → ``qc_formed``);
- **commit**: QC formation until the chained commit fires.

:func:`forensic_report` renders the accountability view as markdown:
the suspicion timeline, every 2ND-CHANCE firing with the replica ids
whose shares were missing (this is what makes an omission cartel
visible by name), recoveries, reconnects, and sync traffic.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

__all__ = ["critical_path", "forensic_report"]

_SEGMENT_ORDER = ("transit", "verify", "aggregate", "commit")


def critical_path(events: Sequence[Mapping[str, object]]) -> List[Dict[str, object]]:
    """Reconstruct per-block pipeline segments from a merged trace.

    Returns one entry per block that has at least a ``propose`` and one
    later milestone, ordered by proposal time::

        {"block": ..., "view": ..., "start": t_propose, "total": seconds,
         "segments": [{"name", "start", "duration"}, ...]}

    Blocks whose intermediate events were sampled out still get the
    segments their surviving milestones allow (e.g. propose→commit
    collapses into a single ``commit`` segment).
    """
    blocks: Dict[str, Dict[str, object]] = {}
    for event in events:
        block = event.get("block")
        if not block:
            continue
        etype = event.get("type")
        t = float(event.get("t", 0.0))
        state = blocks.setdefault(
            str(block),
            {"view": event.get("view"), "propose": None, "first_share": None,
             "last_verified": None, "qc": None, "commit": None},
        )
        if state["view"] is None and event.get("view") is not None:
            state["view"] = event.get("view")
        if etype == "propose" and state["propose"] is None:
            state["propose"] = t
        elif etype == "share_recv":
            if state["first_share"] is None or t < state["first_share"]:  # type: ignore[operator]
                state["first_share"] = t
        elif etype == "share_verified":
            if state["last_verified"] is None or t > state["last_verified"]:  # type: ignore[operator]
                state["last_verified"] = t
        elif etype == "qc_formed" and state["qc"] is None:
            state["qc"] = t
        elif etype == "commit" and state["commit"] is None:
            state["commit"] = t

    paths: List[Dict[str, object]] = []
    for block, state in blocks.items():
        start = state["propose"]
        if start is None:
            continue
        milestones = [
            ("transit", state["first_share"]),
            ("verify", state["last_verified"]),
            ("aggregate", state["qc"]),
            ("commit", state["commit"]),
        ]
        segments: List[Dict[str, object]] = []
        cursor = float(start)  # type: ignore[arg-type]
        end = cursor
        for name, stamp in milestones:
            if stamp is None:
                continue
            stamp_f = float(stamp)  # type: ignore[arg-type]
            if stamp_f < cursor:
                # Out-of-order clocks across nodes: clamp rather than
                # emit negative durations Perfetto would reject.
                stamp_f = cursor
            segments.append({"name": name, "start": cursor, "duration": stamp_f - cursor})
            cursor = stamp_f
            end = stamp_f
        if not segments:
            continue
        paths.append(
            {
                "block": block,
                "view": state["view"],
                "start": float(start),  # type: ignore[arg-type]
                "total": end - float(start),  # type: ignore[arg-type]
                "segments": segments,
            }
        )
    paths.sort(key=lambda path: path["start"])  # type: ignore[arg-type,return-value]
    return paths


def _segment_means(paths: Sequence[Mapping[str, object]]) -> Dict[str, float]:
    sums: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for path in paths:
        for segment in path.get("segments", []):  # type: ignore[union-attr]
            name = str(segment["name"])
            sums[name] = sums.get(name, 0.0) + float(segment["duration"])
            counts[name] = counts.get(name, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}


def forensic_report(
    document: Mapping[str, object],
    *,
    paths: Optional[Sequence[Mapping[str, object]]] = None,
    max_rows: int = 20,
) -> str:
    """Render the markdown forensic report for a trace document."""
    events: Sequence[Mapping[str, object]] = document.get("events", [])  # type: ignore[assignment]
    if paths is None:
        paths = critical_path(events)

    by_type: Dict[str, List[Mapping[str, object]]] = {}
    for event in events:
        by_type.setdefault(str(event.get("type")), []).append(event)

    lines: List[str] = []
    lines.append(f"# Forensic report — `{document.get('run_id', '?')}`")
    lines.append("")
    runtime = document.get("runtime") or "?"
    lines.append(
        f"Runtime `{runtime}` · seed `{document.get('seed', '?')}` · "
        f"{len(events)} events ({document.get('dropped', 0)} dropped, "
        f"sample rate {document.get('sample_rate', 1.0)})"
    )
    lines.append("")

    # -- headline ---------------------------------------------------------------
    commits = by_type.get("commit", [])
    views = by_type.get("view_enter", [])
    unique_commits = {event.get("block") for event in commits}
    lines.append("## Run shape")
    lines.append("")
    lines.append(
        f"- committed blocks traced: **{len(unique_commits)}** "
        f"({len(commits)} commit events across replicas)"
    )
    lines.append(f"- view entries traced: **{len(views)}**")
    timeout_views = [v for v in views if v.get("reason") == "timeout"]
    lines.append(f"- view entries via timeout: **{len(timeout_views)}**")
    lines.append("")

    # -- critical path -----------------------------------------------------------
    lines.append("## Critical path (propose → transit → verify → aggregate → commit)")
    lines.append("")
    if paths:
        means = _segment_means(paths)
        mean_total = sum(float(p["total"]) for p in paths) / len(paths)
        lines.append(f"Blocks with a reconstructed path: **{len(paths)}**, "
                     f"mean end-to-end **{mean_total * 1000:.2f} ms**.")
        lines.append("")
        lines.append("| segment | mean (ms) |")
        lines.append("|---|---|")
        for name in _SEGMENT_ORDER:
            if name in means:
                lines.append(f"| {name} | {means[name] * 1000:.3f} |")
        lines.append("")
        lines.append("| block | view | total (ms) | " + " | ".join(_SEGMENT_ORDER) + " |")
        lines.append("|---|---|---|" + "---|" * len(_SEGMENT_ORDER))
        for path in paths[:max_rows]:
            durations = {str(s["name"]): float(s["duration"]) for s in path["segments"]}  # type: ignore[union-attr]
            cells = " | ".join(
                f"{durations[name] * 1000:.3f}" if name in durations else "–"
                for name in _SEGMENT_ORDER
            )
            lines.append(
                f"| `{path['block']}` | {path.get('view', '?')} | "
                f"{float(path['total']) * 1000:.3f} | {cells} |"
            )
        if len(paths) > max_rows:
            lines.append(f"| … {len(paths) - max_rows} more | | | " + " | ".join("" for _ in _SEGMENT_ORDER) + " |")
    else:
        lines.append("No block had enough traced milestones to rebuild a path.")
    lines.append("")

    # -- 2ND-CHANCE / omission visibility -----------------------------------------
    lines.append("## 2ND-CHANCE firings (omitted shares, by replica)")
    lines.append("")
    requests = [e for e in by_type.get("second_chance", []) if e.get("phase") == "request"]
    recoveries = [e for e in by_type.get("second_chance", []) if e.get("phase") == "recovered"]
    if requests:
        omitted: Dict[int, int] = {}
        for request in requests:
            for pid in request.get("missing", []):  # type: ignore[union-attr]
                omitted[int(pid)] = omitted.get(int(pid), 0) + 1
        suspects = ", ".join(
            f"replica {pid} ({count}×)"
            for pid, count in sorted(omitted.items(), key=lambda item: -item[1])
        )
        lines.append(
            f"**{len(requests)}** 2ND-CHANCE rounds fired; shares repeatedly "
            f"missing from: {suspects}."
        )
        lines.append("")
        lines.append("| t (s) | root pid | view | missing replicas |")
        lines.append("|---|---|---|---|")
        for request in requests[:max_rows]:
            missing = ", ".join(str(pid) for pid in request.get("missing", []))  # type: ignore[union-attr]
            lines.append(
                f"| {float(request.get('t', 0.0)):.3f} | {request.get('pid')} | "
                f"{request.get('view', '?')} | {missing} |"
            )
        if len(requests) > max_rows:
            lines.append(f"| … {len(requests) - max_rows} more | | | |")
    else:
        lines.append("No 2ND-CHANCE rounds were needed — no shares went missing.")
    lines.append("")
    recovered_total = sum(int(e.get("added", 0)) for e in recoveries)
    lines.append(
        f"Recoveries: **{len(recoveries)}** replies added **{recovered_total}** "
        "previously-omitted share(s) back into QCs."
    )
    lines.append("")

    # -- suspicion timeline --------------------------------------------------------
    lines.append("## Suspicion timeline")
    lines.append("")
    raised = by_type.get("suspicion_raised", [])
    cleared = by_type.get("suspicion_cleared", [])
    if raised or cleared:
        lines.append("| t (s) | observer | suspect | state |")
        lines.append("|---|---|---|---|")
        timeline = sorted(
            [(e, "raised") for e in raised] + [(e, "cleared") for e in cleared],
            key=lambda item: float(item[0].get("t", 0.0)),
        )
        for event, state in timeline[: max_rows * 2]:
            lines.append(
                f"| {float(event.get('t', 0.0)):.3f} | {event.get('pid')} | "
                f"{event.get('suspect', '?')} | {state} |"
            )
    else:
        lines.append("No replica was ever suspected.")
    lines.append("")

    # -- recovery traffic ------------------------------------------------------------
    reconnects = by_type.get("reconnect", [])
    syncs = by_type.get("sync", [])
    lines.append("## Recovery traffic")
    lines.append("")
    lines.append(f"- reconnect events: **{len(reconnects)}**")
    lines.append(f"- sync events: **{len(syncs)}** "
                 f"({sum(1 for s in syncs if s.get('kind') == 'request')} requests, "
                 f"{sum(1 for s in syncs if s.get('kind') == 'response')} responses)")
    lines.append("")
    return "\n".join(lines)
