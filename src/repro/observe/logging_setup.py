"""One-stop structured logging configuration for the ``repro`` tree.

Every module logs through ``logging.getLogger("repro.<module>")``;
this helper attaches a single stderr handler to the ``repro`` root
logger with a compact structured format and honours the
``REPRO_LOG_LEVEL`` environment knob (``DEBUG``/``INFO``/``WARNING``/
``ERROR``; default ``WARNING``).

Two hard rules it encodes:

- **stderr, never stdout** — ``--procs`` workers report their summary
  JSON on stdout; a stray log line there corrupts the run result.
- **idempotent** — calling it twice (parent process, then again inside
  a worker after fork/spawn) must not double handlers.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import IO, Optional

__all__ = ["configure_logging"]

_FORMAT = "%(asctime)s %(levelname)s %(name)s [pid=%(process)d] %(message)s"
_HANDLER_TAG = "_repro_observe_handler"


def configure_logging(
    level: Optional[str] = None,
    *,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Attach (once) a stderr handler to the ``repro`` logger tree.

    ``level`` overrides ``REPRO_LOG_LEVEL``; both default to WARNING so
    normal runs stay silent.  Returns the ``repro`` root logger.
    """
    name = (level or os.environ.get("REPRO_LOG_LEVEL") or "WARNING").upper()
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        resolved = logging.WARNING
    logger = logging.getLogger("repro")
    logger.setLevel(resolved)
    logger.propagate = False
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_TAG, False):
            handler.setLevel(resolved)
            if stream is not None:
                handler.setStream(stream)  # type: ignore[attr-defined]
            return logger
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setLevel(resolved)
    handler.setFormatter(logging.Formatter(_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    return logger
