"""Handel-style multi-level randomised aggregation (baseline).

Handel (Bégassat et al., 2019) aggregates signatures over ``log n``
levels: the committee is recursively split into halves, and at level ``l``
each process tries to obtain the aggregate of the half it does *not*
belong to by contacting a few peers from that half, contributing its own
best aggregate of all lower levels in return.  Aggregation is therefore
redundant (many processes hold overlapping aggregates), which — like
Gosig — protects individual votes probabilistically but invites
free-riding and is not inclusive.

The implementation follows Handel's structure in a simplified form
suitable for the discrete-event experiments:

* the level partition is derived from the per-view deterministic shuffle
  (Handel's verification-priority permutation);
* level ``l`` activates ``l * handel_level_delay`` seconds after a process
  delivers the proposal, and the process then sends its running aggregate
  to ``handel_peers_per_level`` peers of the opposite half;
* incoming aggregates are verified and merged when they add new signers;
* the collector finalises at a quorum (or all signers), like the other
  baselines.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from repro.aggregation.base import Aggregator, register_aggregator
from repro.aggregation.messages import ProposalMessage, SignatureMessage
from repro.consensus.block import Block
from repro.crypto.multisig import AggregateSignature, SignatureShare
from repro.tree.shuffle import deterministic_shuffle, view_seed

__all__ = ["HandelAggregator"]


@register_aggregator
class HandelAggregator(Aggregator):
    """Level-based randomised aggregation in the style of Handel."""

    name = "handel"

    # -- dissemination ---------------------------------------------------------
    def disseminate(self, block: Block) -> None:
        message = ProposalMessage(block)
        others = [pid for pid in range(self.config.committee_size) if pid != self.process_id]
        self.replica.multicast(others, message, size_bytes=message.size_bytes)
        self._on_proposal(block)

    # -- message handling --------------------------------------------------------
    def handle(self, sender: int, message: Any) -> bool:
        if isinstance(message, ProposalMessage):
            self._on_proposal(message.block)
            return True
        if isinstance(message, SignatureMessage):
            self._on_contribution(sender, message)
            return True
        return False

    # -- level structure ------------------------------------------------------------
    def num_levels(self) -> int:
        return max(1, math.ceil(math.log2(max(self.config.committee_size, 2))))

    def _ranking(self, block: Block) -> List[int]:
        """The per-view permutation the level partition is derived from."""
        seed = view_seed(self.config.seed, block.view, b"handel|" + block.qc.digest())
        return deterministic_shuffle(list(range(self.config.committee_size)), seed)

    def level_peers(self, block: Block, level: int) -> List[int]:
        """The peer group this process contacts at ``level`` (1-based).

        With the committee laid out in ranked order, the level-``l`` peers
        of a process are the other half of its size-``2^l`` bucket — the
        standard Handel binary partition.
        """
        if level < 1:
            raise ValueError("levels are 1-based")
        ranking = self._ranking(block)
        position = ranking.index(self.process_id)
        bucket = 1 << level
        start = (position // bucket) * bucket
        half = bucket // 2
        if position < start + half:
            peer_slice = ranking[start + half : start + bucket]
        else:
            peer_slice = ranking[start : start + half]
        return [pid for pid in peer_slice if pid != self.process_id]

    # -- proposal path ---------------------------------------------------------------
    def _on_proposal(self, block: Block) -> None:
        state = self._handel_state(block.block_id)
        if state["proposal_handled"]:
            return
        share = self.replica.process_proposal(block)
        if share is None:
            return
        state["proposal_handled"] = True
        state["own_share"] = share
        state["aggregate"] = self.scheme.aggregate([(share, 1)])
        self._drain_pending(block)
        # Activate the levels one after another.
        for level in range(1, self.num_levels() + 1):
            self.replica.set_timer(
                level * self.config.handel_level_delay, self._activate_level, block, level
            )
        if self._is_collector(block):
            self.replica.set_timer(
                self.config.aggregation_timer(height=2), self._collector_timeout, block
            )

    def _activate_level(self, block: Block, level: int) -> None:
        state = self._handel_state(block.block_id)
        if state["done"] or not state["proposal_handled"]:
            return
        peers = self.level_peers(block, level)
        if not peers:
            return
        targets = peers[: max(1, self.config.handel_peers_per_level)]
        message = SignatureMessage(
            block_id=block.block_id, view=block.view, signature=state["aggregate"]
        )
        self.replica.multicast(targets, message, size_bytes=message.size_bytes)

    # -- merging --------------------------------------------------------------------------
    def _on_contribution(self, sender: int, message: SignatureMessage) -> None:
        if self._is_done(message.block_id):
            return
        block = self.replica.known_block(message.block_id)
        state = self._handel_state(message.block_id)
        if block is None or not state["proposal_handled"]:
            state["pending"].append((sender, message))
            return
        incoming = message.signature
        current: AggregateSignature = state["aggregate"]
        if isinstance(incoming, SignatureShare):
            if incoming.signer in current.signers:
                return
            self.replica.consume_cpu(self.config.cpu_model.verify_share)
            if not self.committee.verify_share(incoming, block.signing_payload()):
                return
        elif isinstance(incoming, AggregateSignature):
            if not set(incoming.signers) - set(current.signers):
                return
            self.replica.consume_cpu(
                self.config.cpu_model.aggregate_verify_cost(len(incoming.signers))
            )
            if not self.committee.verify_aggregate(incoming, block.signing_payload()):
                return
        else:
            return
        self.replica.consume_cpu(self.config.cpu_model.aggregate_per_share)
        state["aggregate"] = self.scheme.aggregate([(current, 1), (incoming, 1)])
        if self._is_collector(block):
            self._collector_check(block)

    # -- collector --------------------------------------------------------------------------
    def _is_collector(self, block: Block) -> bool:
        return self.replica.collector_for(block) == self.process_id

    def _collector_check(self, block: Block) -> None:
        state = self._handel_state(block.block_id)
        if state["done"]:
            return
        aggregate: AggregateSignature = state["aggregate"]
        if len(aggregate.signers) >= self.config.committee_size:
            self._finalise(block, aggregate)
        elif (
            len(aggregate.signers) >= self.config.quorum_size
            and not self.config.wait_for_all_votes
        ):
            self._finalise(block, aggregate)

    def _collector_timeout(self, block: Block) -> None:
        state = self._handel_state(block.block_id)
        if state["done"] or state["aggregate"] is None:
            return
        if len(state["aggregate"].signers) >= self.config.quorum_size:
            self._finalise(block, state["aggregate"])

    # -- state -------------------------------------------------------------------------------
    def _handel_state(self, block_id: str) -> Dict[str, Any]:
        state = self._state.get(block_id)
        if state is None:
            state = {
                "proposal_handled": False,
                "own_share": None,
                "aggregate": None,
                "pending": [],
                "done": False,
            }
            self._state[block_id] = state
            self._prune()
        return state

    def _drain_pending(self, block: Block) -> None:
        state = self._handel_state(block.block_id)
        pending, state["pending"] = state["pending"], []
        for sender, message in pending:
            self._on_contribution(sender, message)
