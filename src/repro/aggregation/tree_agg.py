"""Two-level tree vote aggregation without fallback paths (Iniva-No2C).

This is the Kauri/ByzCoin-style baseline: the proposer pushes the block to
the tree root (the next leader) and the root's children; internal nodes
forward it to their leaves, aggregate their children's signatures and send
the aggregate up; the root finalises once it holds a quorum or its
aggregation timer fires.  There is no ACK and no 2ND-CHANCE, so the
failure of an internal node silently loses its whole subtree — exactly the
weakness Iniva's fallback paths remove (the Iniva aggregator in
:mod:`repro.core.iniva` subclasses this one).

The multiplicity encoding of Iniva's reward scheme is already applied here
(each aggregated child is included twice, plus one extra copy of the
parent's own signature per child) so that the reward layer can be used
with either variant.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.aggregation.base import Aggregator, register_aggregator
from repro.aggregation.messages import ProposalMessage, SignatureMessage
from repro.consensus.block import Block
from repro.crypto.multisig import AggregateSignature, SignatureShare
from repro.tree.overlay import AggregationTree

__all__ = ["TreeAggregator"]


@register_aggregator
class TreeAggregator(Aggregator):
    """Kauri-style tree aggregation; also the paper's Iniva-No2C variant."""

    name = "tree"

    #: Subclasses (Iniva) flip this to enable ACK / 2ND-CHANCE handling.
    uses_fallback_paths = False

    # -- dissemination ---------------------------------------------------------
    def disseminate(self, block: Block) -> None:
        state = self._collection(block)
        tree: AggregationTree = state["tree"]
        message = ProposalMessage(block)
        # The proposer sends the block to the root (the next leader) and the
        # root's children (Figure 1-A of the paper).
        targets = {tree.root, *tree.children(tree.root)}
        targets.discard(self.process_id)
        self.replica.multicast(sorted(targets), message, size_bytes=message.size_bytes)
        # The proposer also participates in its own tree role.
        self._on_proposal(block)

    # -- message handling --------------------------------------------------------
    def handle(self, sender: int, message: Any) -> bool:
        if isinstance(message, ProposalMessage):
            self._on_proposal(message.block)
            return True
        if isinstance(message, SignatureMessage):
            self._on_signature(sender, message)
            return True
        return False

    # -- proposal path --------------------------------------------------------------
    def _on_proposal(self, block: Block) -> None:
        state = self._collection(block)
        if state["proposal_handled"]:
            return
        share = self.replica.process_proposal(block)
        if share is None:
            return
        state["proposal_handled"] = True
        state["own_share"] = share
        tree: AggregationTree = state["tree"]
        pid = self.process_id
        if tree.is_root(pid):
            self._root_add_contribution(block, share, weight=1, source=pid)
            self._start_root_timer(block)
        elif tree.is_internal(pid):
            children = tree.children(pid)
            proposal = ProposalMessage(block)
            self.replica.multicast(children, proposal, size_bytes=proposal.size_bytes)
            self.replica.set_timer(
                self.config.aggregation_timer(height=1), self._internal_timeout, block
            )
            self._internal_check_complete(block)
        else:
            # Leaf (either under an internal node or directly under the root).
            parent = tree.parent(pid)
            vote = SignatureMessage(block_id=block.block_id, view=block.view, signature=share)
            self.replica.send(parent, vote, size_bytes=vote.size_bytes)
        self._drain_pending(block)

    # -- signatures travelling up the tree ----------------------------------------------
    def _on_signature(self, sender: int, message: SignatureMessage) -> None:
        if self._is_done(message.block_id):
            return
        block = self.replica.known_block(message.block_id)
        state = self._state.get(message.block_id)
        if block is None or state is None or not state["proposal_handled"]:
            state = self._collection_by_id(message.block_id)
            state["pending"].append((sender, message))
            return
        tree: AggregationTree = state["tree"]
        pid = self.process_id
        if tree.is_root(pid):
            self._root_on_signature(block, sender, message.signature)
        elif tree.is_internal(pid) and sender in tree.children(pid):
            self._internal_on_child_share(block, sender, message.signature)

    # -- internal-node behaviour -----------------------------------------------------------
    def _internal_on_child_share(self, block: Block, sender: int, signature: Any) -> None:
        if not isinstance(signature, SignatureShare) or signature.signer != sender:
            return
        state = self._collection(block)
        if state["sent_up"]:
            return
        self._trace_hot(
            "share_recv", block.view, block=block.block_id[:12], src=sender, role="internal"
        )
        if self.config.batch_verification:
            # Deferred ingest: hold the share and verify the whole set with
            # one batched check once every child reported (or the level
            # timer fires), instead of one verify per arrival.
            state["children_unverified"][sender] = signature
            children = state["tree"].children(self.process_id)
            have = len(state["children_shares"]) + len(state["children_unverified"])
            if have >= len(children):
                self._internal_flush(block)
            return
        self.replica.consume_cpu(self.config.cpu_model.verify_share)
        if not self.committee.verify_share(signature, block.signing_payload()):
            return
        state["children_shares"][sender] = signature
        self._internal_check_complete(block)

    def _internal_flush(self, block: Block, send_after: bool = False) -> None:
        """Batch-verify the held child shares, then continue aggregation."""
        state = self._collection(block)
        if state["sent_up"]:
            return
        if send_after:
            state["internal_deadline"] = True
        if state["verify_inflight"]:
            return
        pending, state["children_unverified"] = state["children_unverified"], {}
        if not pending:
            if state["internal_deadline"]:
                self._internal_send_up(block)
            return
        state["verify_inflight"] = True

        def on_result(valid: list) -> None:
            state["verify_inflight"] = False
            if state["sent_up"]:
                return
            for share in valid:
                state["children_shares"][share.signer] = share
            if state["internal_deadline"]:
                self._internal_send_up(block)
            else:
                self._internal_check_complete(block)

        self._verify_shares(list(pending.values()), block.signing_payload(), on_result)

    def _internal_check_complete(self, block: Block) -> None:
        state = self._collection(block)
        tree: AggregationTree = state["tree"]
        children = tree.children(self.process_id)
        if len(state["children_shares"]) >= len(children):
            self._internal_send_up(block)

    def _internal_timeout(self, block: Block) -> None:
        state = self._collection(block)
        if self.config.batch_verification and (
            state["children_unverified"] or state["verify_inflight"]
        ):
            self._internal_flush(block, send_after=True)
            return
        self._internal_send_up(block)

    def _internal_send_up(self, block: Block) -> None:
        state = self._collection(block)
        if state["sent_up"] or state["own_share"] is None:
            return
        state["sent_up"] = True
        tree: AggregationTree = state["tree"]
        children_shares = dict(state["children_shares"])
        if self.config.batch_verification and not children_shares:
            # Childless internal node (small committees leave some internal
            # positions without leaves): a one-signer aggregate would cost
            # the root a full pairing check, while the bare share rides the
            # root's *batched* direct-share verification.  The tallied
            # multiplicities — and therefore the QC — are identical, and
            # with no aggregated children there is nobody to ACK.
            vote = SignatureMessage(
                block_id=block.block_id, view=block.view, signature=state["own_share"]
            )
            self.replica.send(tree.root, vote, size_bytes=vote.size_bytes)
            return
        # Iniva's multiplicity encoding: each aggregated child twice, plus one
        # extra copy of the parent's own signature per aggregated child.
        contributions = [(state["own_share"], 1 + len(children_shares))]
        contributions.extend((share, 2) for share in children_shares.values())
        self.replica.consume_cpu(
            self.config.cpu_model.aggregate_per_share * (len(children_shares) + 1)
        )
        aggregate = self.scheme.aggregate(contributions)
        state["internal_aggregate"] = aggregate
        vote = SignatureMessage(block_id=block.block_id, view=block.view, signature=aggregate)
        self.replica.send(tree.root, vote, size_bytes=vote.size_bytes)
        self._after_internal_send(block, aggregate, sorted(children_shares))

    def _after_internal_send(
        self, block: Block, aggregate: AggregateSignature, aggregated_children: list
    ) -> None:
        """Hook for Iniva: send ACKs to the aggregated children."""

    # -- root behaviour ------------------------------------------------------------------------
    def _start_root_timer(self, block: Block) -> None:
        state = self._collection(block)
        if state["root_timer_started"]:
            return
        state["root_timer_started"] = True
        self.replica.set_timer(
            self.config.aggregation_timer(height=2), self._root_timeout, block
        )

    def _root_on_signature(self, block: Block, sender: int, signature: Any) -> None:
        state = self._collection(block)
        if state["done"]:
            return
        self._trace_hot(
            "share_recv",
            block.view,
            block=block.block_id[:12],
            src=sender,
            role="root",
            kind="aggregate" if isinstance(signature, AggregateSignature) else "share",
        )
        tree: AggregationTree = state["tree"]
        if isinstance(signature, AggregateSignature):
            if sender not in tree.internal_nodes:
                return
            if self.config.batch_verification:
                # Pen the aggregate with the direct shares: one mixed RLC
                # check covers the whole quorum instead of two pairings per
                # internal aggregate.
                state["root_unverified"][sender] = signature
                self._root_maybe_flush(block)
                return
            self.replica.consume_cpu(
                self.config.cpu_model.aggregate_verify_cost(len(signature.signers))
            )
            if not self.committee.verify_aggregate(signature, block.signing_payload()):
                return
            self._root_add_contribution(block, signature, weight=1, source=sender)
        elif isinstance(signature, SignatureShare):
            if signature.signer != sender or sender not in tree.children(tree.root):
                return
            if self.config.batch_verification:
                state["root_unverified"][sender] = signature
                self._root_maybe_flush(block)
                return
            self.replica.consume_cpu(self.config.cpu_model.verify_share)
            if not self.committee.verify_share(signature, block.signing_payload()):
                return
            self._root_add_contribution(block, signature, weight=1, source=sender)

    @staticmethod
    def _contribution_signers(contribution: Any) -> frozenset:
        if isinstance(contribution, AggregateSignature):
            return contribution.signers
        return frozenset({contribution.signer})

    def _root_maybe_flush(self, block: Block) -> None:
        """Batch-verify the root's held contributions at quorum reach."""
        state = self._collection(block)
        if state["done"] or state["root_verify_inflight"] or not state["root_unverified"]:
            return
        fresh: set = set()
        for contribution in state["root_unverified"].values():
            fresh |= self._contribution_signers(contribution)
        fresh -= state["included"]
        if not fresh:
            state["root_unverified"] = {}
            return
        if len(state["included"]) + len(fresh) >= self.config.quorum_size:
            self._root_flush(block)

    def _root_flush(self, block: Block) -> None:
        state = self._collection(block)
        if state["done"] or state["root_verify_inflight"]:
            return
        pending, state["root_unverified"] = state["root_unverified"], {}
        if not pending:
            if state["root_deadline"] and len(state["included"]) >= self.config.quorum_size:
                self._root_on_quorum(block)
            return
        state["root_verify_inflight"] = True

        def on_result(valid: list) -> None:
            state["root_verify_inflight"] = False
            if state["done"]:
                return
            for sender, contribution in valid:
                self._root_add_contribution(block, contribution, weight=1, source=sender)
                if state["done"]:
                    return
            if state["root_unverified"]:
                self._root_maybe_flush(block)
            if (
                state["root_deadline"]
                and not state["done"]
                and len(state["included"]) >= self.config.quorum_size
            ):
                self._root_on_quorum(block)

        self._verify_contributions(list(pending.items()), block.signing_payload(), on_result)

    def _root_add_contribution(self, block: Block, contribution: Any, weight: int, source: int) -> None:
        state = self._collection(block)
        if state["done"]:
            return
        signers = (
            contribution.signers
            if isinstance(contribution, AggregateSignature)
            else frozenset({contribution.signer})
        )
        if signers & state["included"]:
            # Indivisible aggregates cannot be decomposed, so overlapping
            # contributions are skipped rather than double-counted.
            return
        state["contributions"].append((contribution, weight))
        state["included"] |= signers
        state["sources"].add(source)
        self._trace_hot(
            "share_verified",
            block.view,
            block=block.block_id[:12],
            src=source,
            signers=len(signers),
            included=len(state["included"]),
        )
        self._root_check_progress(block)
        if not state["done"] and state["root_unverified"]:
            # This contribution may be what makes the held shares reach
            # quorum (e.g. an internal aggregate landing after a direct
            # child's share was penned) — re-evaluate the flush condition
            # instead of waiting for the next share arrival or the timer.
            self._root_maybe_flush(block)

    def _root_check_progress(self, block: Block) -> None:
        state = self._collection(block)
        if state["done"]:
            return
        included = len(state["included"])
        if included >= self.config.committee_size:
            self._root_finalise(block)
        elif included >= self.config.quorum_size:
            self._root_on_quorum(block)

    def _root_on_quorum(self, block: Block) -> None:
        """Quorum reached at the root.  The plain tree finalises immediately."""
        self._root_finalise(block)

    def _root_timeout(self, block: Block) -> None:
        state = self._collection(block)
        if state["done"]:
            return
        if self.config.batch_verification and (
            state["root_unverified"] or state["root_verify_inflight"]
        ):
            # Verify whatever is still held before judging quorum.
            state["root_deadline"] = True
            self._root_flush(block)
            return
        if len(state["included"]) >= self.config.quorum_size:
            self._root_on_quorum(block)
        # Below quorum there is nothing the aggregation layer can do; the
        # pacemaker's view timeout will eventually fail the view.

    def _root_finalise(self, block: Block) -> None:
        state = self._collection(block)
        if state["done"] or len(state["included"]) < self.config.quorum_size:
            return
        contributions = state["contributions"]
        self.replica.consume_cpu(self.config.cpu_model.aggregate_per_share * len(contributions))
        aggregate = self.scheme.aggregate(contributions)
        self._finalise(block, aggregate)

    # -- shared state helpers --------------------------------------------------------------------
    def _build_tree(self, block: Block) -> AggregationTree:
        """The aggregation tree used for ``block``.

        The default is the replica's per-view reshuffled tree; subclasses
        (e.g. the Kauri baseline) override this to use a stable tree with
        explicit reconfiguration.
        """
        return self.replica.build_tree(block)

    def _collection(self, block: Block) -> Dict[str, Any]:
        state = self._collection_by_id(block.block_id)
        if state["tree"] is None:
            state["tree"] = self._build_tree(block)
            state["block"] = block
        return state

    def _collection_by_id(self, block_id: str) -> Dict[str, Any]:
        state = self._state.get(block_id)
        if state is None:
            state = {
                "tree": None,
                "block": None,
                "own_share": None,
                "proposal_handled": False,
                "children_shares": {},
                "internal_aggregate": None,
                "sent_up": False,
                "contributions": [],
                "included": set(),
                "sources": set(),
                "pending": [],
                "root_timer_started": False,
                "done": False,
                # Batched-verification holding pens (batch_verification knob).
                "children_unverified": {},
                "verify_inflight": False,
                "internal_deadline": False,
                "root_unverified": {},
                "root_verify_inflight": False,
                "root_deadline": False,
                "parent_ack": None,
                "second_chance_sent": False,
                "second_chance_expired": False,
            }
            self._state[block_id] = state
            self._prune()
        return state

    def _drain_pending(self, block: Block) -> None:
        state = self._collection(block)
        pending, state["pending"] = state["pending"], []
        for sender, message in pending:
            self.handle(sender, message)
