"""Star-topology vote aggregation (the HotStuff baseline).

The proposer broadcasts the block to every replica; each replica validates
it, votes and sends its signature share directly to the collector (the
next leader).  The collector verifies each share and finalises the QC as
soon as it holds a quorum — which is precisely why the baseline's QCs
contain only a quorum of votes (Figure 4d) and why a malicious collector
can omit any vote it likes (0-omission probability ``m``, Table I).
"""

from __future__ import annotations

from typing import Any, Dict

from repro.aggregation.base import Aggregator, register_aggregator
from repro.aggregation.messages import ProposalMessage, SignatureMessage
from repro.consensus.block import Block
from repro.crypto.multisig import SignatureShare

__all__ = ["StarAggregator"]


@register_aggregator
class StarAggregator(Aggregator):
    """HotStuff-style direct vote collection at the next leader."""

    name = "star"

    # -- dissemination ---------------------------------------------------------
    def disseminate(self, block: Block) -> None:
        message = ProposalMessage(block)
        others = [pid for pid in range(self.config.committee_size) if pid != self.process_id]
        self.replica.multicast(others, message, size_bytes=message.size_bytes)
        # The proposer delivers its own proposal immediately.
        self._on_proposal(block)

    # -- message handling -------------------------------------------------------
    def handle(self, sender: int, message: Any) -> bool:
        if isinstance(message, ProposalMessage):
            self._on_proposal(message.block)
            return True
        if isinstance(message, SignatureMessage):
            self._on_vote(sender, message)
            return True
        return False

    def _on_proposal(self, block: Block) -> None:
        share = self.replica.process_proposal(block)
        collector = self.replica.collector_for(block)
        if share is not None:
            vote = SignatureMessage(block_id=block.block_id, view=block.view, signature=share)
            if collector == self.process_id:
                self._record_share(block, share)
            else:
                self.replica.send(collector, vote, size_bytes=vote.size_bytes)
        if collector == self.process_id:
            self._drain_pending(block)

    def _on_vote(self, sender: int, message: SignatureMessage) -> None:
        if self._is_done(message.block_id):
            return
        block = self.replica.known_block(message.block_id)
        if block is None:
            # The vote overtook the proposal; replay it once the block is known.
            state = self._collection(message.block_id)
            state["pending"].append((sender, message))
            return
        if self.replica.collector_for(block) != self.process_id:
            return
        share = message.signature
        if not isinstance(share, SignatureShare):
            return
        self._trace_hot(
            "share_recv", block.view, block=block.block_id[:12], src=sender, role="collector"
        )
        if self.config.batch_verification:
            # Deferred ingest: stash the share unverified and run one
            # batched check over the whole pending set once it can reach a
            # quorum (RLC verify_batch: ~2 pairings however many shares).
            state = self._collection(block.block_id)
            state["unverified"][share.signer] = share
            self._maybe_flush(block)
            return
        self.replica.consume_cpu(self.config.cpu_model.verify_share)
        if not self.committee.verify_share(share, block.signing_payload()):
            return
        self._record_share(block, share)

    # -- batched verification ----------------------------------------------------
    def _maybe_flush(self, block: Block) -> None:
        """Run the batched check once the pending set can complete a quorum."""
        state = self._collection(block.block_id)
        if state["done"] or state["verify_inflight"] or not state["unverified"]:
            return
        total = len(state["shares"]) + len(state["unverified"])
        if total >= self.config.committee_size:
            self._flush_unverified(block)
        elif total >= self.config.quorum_size and not self.config.wait_for_all_votes:
            self._flush_unverified(block)

    def _flush_unverified(self, block: Block, finalise_after: bool = False) -> None:
        state = self._collection(block.block_id)
        if state["done"]:
            return
        if finalise_after:
            state["finalise_after_flush"] = True
        if state["verify_inflight"]:
            return
        pending, state["unverified"] = state["unverified"], {}
        if not pending:
            if state["finalise_after_flush"]:
                state["finalise_after_flush"] = False
                self._finalise_now(block)
            return
        state["verify_inflight"] = True

        def on_result(valid: list) -> None:
            state["verify_inflight"] = False
            if state["done"]:
                return
            for share in valid:
                self._record_share(block, share)
                if state["done"]:
                    return
            if state["unverified"]:
                self._maybe_flush(block)
            if state["finalise_after_flush"] and not state["verify_inflight"]:
                state["finalise_after_flush"] = False
                self._finalise_now(block)

        self._verify_shares(list(pending.values()), block.signing_payload(), on_result)

    # -- collection state ----------------------------------------------------------
    def _collection(self, block_id: str) -> Dict[str, Any]:
        state = self._state.get(block_id)
        if state is None:
            state = {
                "shares": {},
                "pending": [],
                "done": False,
                "deadline_set": False,
                "unverified": {},
                "verify_inflight": False,
                "finalise_after_flush": False,
            }
            self._state[block_id] = state
            self._prune()
        return state

    def _drain_pending(self, block: Block) -> None:
        state = self._collection(block.block_id)
        pending, state["pending"] = state["pending"], []
        for sender, message in pending:
            self._on_vote(sender, message)

    def _record_share(self, block: Block, share: SignatureShare) -> None:
        state = self._collection(block.block_id)
        if state["done"]:
            return
        state["shares"][share.signer] = share
        self._trace_hot(
            "share_verified",
            block.view,
            block=block.block_id[:12],
            src=share.signer,
            signers=1,
            included=len(state["shares"]),
        )
        quorum = self.config.quorum_size
        if not state["deadline_set"] and self.config.wait_for_all_votes:
            state["deadline_set"] = True
            self.replica.set_timer(
                self.config.aggregation_timer(height=1), self._finalise_now, block
            )
        if len(state["shares"]) >= self.config.committee_size:
            self._finalise_now(block)
        elif len(state["shares"]) >= quorum and not self.config.wait_for_all_votes:
            self._finalise_now(block)

    def _finalise_now(self, block: Block) -> None:
        state = self._collection(block.block_id)
        if state["done"]:
            return
        if self.config.batch_verification and (state["unverified"] or state["verify_inflight"]):
            # A deadline (wait_for_all_votes ablation) arrived with shares
            # still unverified: batch-check them first, then finalise.
            self._flush_unverified(block, finalise_after=True)
            return
        if len(state["shares"]) < self.config.quorum_size:
            return
        shares = list(state["shares"].values())
        self.replica.consume_cpu(self.config.cpu_model.aggregate_per_share * len(shares))
        aggregate = self.scheme.aggregate([(share, 1) for share in shares])
        self._finalise(block, aggregate)
