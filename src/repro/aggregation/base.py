"""The abstract vote-aggregation strategy attached to each replica.

Definition 1 of the paper gives a vote aggregation scheme three
primitives: ``broadcast(B)`` invoked by the proposer, a ``deliver(B)``
upcall at every process (which emits a vote), and an
``aggregate(B, QC, md)`` upcall at the collector.  The replica supplies
``deliver`` (validation + voting rules) and consumes ``aggregate`` (QC
formation); concrete schemes implement the message flow in between.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, TYPE_CHECKING

from repro.consensus.block import Block
from repro.crypto.multisig import AggregateSignature

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.consensus.replica import HotStuffReplica

__all__ = ["Aggregator", "register_aggregator", "make_aggregator"]


class Aggregator(ABC):
    """Per-replica vote aggregation strategy.

    Concrete subclasses implement :meth:`disseminate` (invoked by the
    block's proposer) and :meth:`handle` (invoked for every aggregation
    message the replica receives).  They call back into the replica via

    * ``replica.process_proposal(block)`` — validate + vote, returning a
      signature share or ``None`` (the paper's ``deliver``/``vote``), and
    * ``replica.complete_aggregation(block, aggregate)`` — the paper's
      ``aggregate`` upcall at the collector.
    """

    #: Registry name; subclasses override.
    name = "abstract"

    def __init__(self, replica: "HotStuffReplica") -> None:
        self.replica = replica
        #: Per-block collection state, keyed by block id.
        self._state: Dict[str, Any] = {}

    # -- shorthand accessors -------------------------------------------------
    @property
    def config(self):
        return self.replica.config

    @property
    def committee(self):
        return self.replica.committee

    @property
    def scheme(self):
        return self.replica.committee.scheme

    @property
    def process_id(self) -> int:
        return self.replica.process_id

    # -- protocol hooks --------------------------------------------------------
    @abstractmethod
    def disseminate(self, block: Block) -> None:
        """Start dissemination and vote collection for ``block``.

        Called exactly once, at the proposer of ``block``.
        """

    @abstractmethod
    def handle(self, sender: int, message: Any) -> bool:
        """Process an aggregation-related message.

        Returns True if the message type belonged to this scheme (so the
        replica knows it was consumed).
        """

    # -- shared helpers ----------------------------------------------------------
    def _trace(self, etype: str, **fields: Any) -> None:
        """Emit an aggregation trace event (always, when tracing is on)."""
        tracer = self.replica.metrics.tracer
        if tracer is not None:
            tracer.emit(etype, self.process_id, self.replica.now, **fields)  # type: ignore[attr-defined]

    def _trace_hot(self, etype: str, view: int, **fields: Any) -> None:
        """Per-message trace emission, thinned by deterministic view sampling.

        Share arrivals fire once per vote per collection point — the one
        stream dense enough to threaten the overhead budget — so they go
        through ``sample_view``: at ``sample_rate < 1`` only a
        deterministic subset of views is traced, the *same* subset under
        sim and live.
        """
        tracer = self.replica.metrics.tracer
        if tracer is not None and tracer.sample_view(view):  # type: ignore[attr-defined]
            tracer.emit(etype, self.process_id, self.replica.now, view=view, **fields)  # type: ignore[attr-defined]

    def _verify_shares(self, shares, payload: bytes, on_result) -> None:
        """Verify ``shares`` as one batched check; deliver the valid subset.

        The hot-path alternative to per-share ``verify_share`` calls: one
        ``verify_batch`` covers every pending share (under ``bls`` that is
        the RLC check — ~2 pairings however many shares), and only if the
        batch fails does it fall back to per-share verification so the
        invalid shares are rejected individually.  With
        ``config.verification_offload`` the check runs through
        :meth:`~repro.runtime.base.Runtime.offload` (a worker pool under
        the live runtime, inline under sim) and ``on_result(valid_shares)``
        fires when it completes; otherwise everything happens synchronously
        before this returns.  Callbacks must therefore re-check collection
        state ("done", "sent_up", ...) — the world may have moved on.
        """
        shares = list(shares)
        self.replica.consume_cpu(self.config.cpu_model.batch_verify_cost(len(shares)))
        committee = self.committee

        def check() -> list:
            if committee.verify_batch(shares, payload):
                return shares
            return [share for share in shares if committee.verify_share(share, payload)]

        if self.config.verification_offload:
            self.replica.runtime.offload(check, on_result)
        else:
            on_result(check())

    def _verify_contributions(self, items, payload: bytes, on_result) -> None:
        """Batched variant of :meth:`_verify_shares` for mixed contributions.

        ``items`` is a list of ``(sender, contribution)`` pairs where each
        contribution is a share or an aggregate; ``on_result`` receives the
        valid subset (same pairs).  One RLC equation covers the whole bag —
        at the tree root that folds a quorum's direct shares *and* internal
        aggregates into ~2 pairings.  Offload and re-entrancy caveats are
        identical to :meth:`_verify_shares`.
        """
        items = list(items)
        self.replica.consume_cpu(self.config.cpu_model.batch_verify_cost(len(items)))
        committee = self.committee

        def check() -> list:
            if committee.verify_contributions([sig for _, sig in items], payload):
                return items
            return [
                (sender, sig)
                for sender, sig in items
                if committee.verify_contributions([sig], payload)
            ]

        if self.config.verification_offload:
            self.replica.runtime.offload(check, on_result)
        else:
            on_result(check())

    def _finalise(self, block: Block, aggregate: AggregateSignature) -> None:
        """Deliver the finished aggregate to the consensus layer once."""
        state = self._state.get(block.block_id)
        if state is not None and state.get("done"):
            return
        if state is not None:
            state["done"] = True
        # Every contribution in the aggregate was verified before being
        # folded in, so the sum is known valid: seed the backend's
        # verified-aggregate cache so the QC's own verification (here and,
        # with a shared scheme, at every co-hosted replica) is a lookup.
        self.committee.trust_aggregate(aggregate, block.signing_payload())
        self.replica.complete_aggregation(block, aggregate)

    def _is_done(self, block_id: str) -> bool:
        state = self._state.get(block_id)
        return bool(state and state.get("done"))

    def _prune(self, keep: int = 64) -> None:
        """Bound per-block state (old views are never revisited)."""
        if len(self._state) <= keep:
            return
        for key in list(self._state)[: len(self._state) - keep]:
            del self._state[key]


_AGGREGATOR_REGISTRY: Dict[str, type] = {}


def register_aggregator(cls: type) -> type:
    """Class decorator adding an aggregation scheme to the registry."""
    _AGGREGATOR_REGISTRY[cls.name] = cls
    return cls


def make_aggregator(name: str, replica: "HotStuffReplica") -> Aggregator:
    """Instantiate the aggregation scheme ``name`` for ``replica``.

    ``"star"``, ``"tree"`` (Iniva-No2C), ``"iniva"``, ``"gosig"``,
    ``"handel"`` and ``"kauri"`` are registered by importing their modules;
    unknown names raise ``KeyError``.
    """
    if name not in _AGGREGATOR_REGISTRY:
        # Aggregators register themselves on import; import lazily to avoid
        # circular imports between this module and the implementations.
        if name == "iniva":
            import repro.core.iniva  # noqa: F401  (side-effect registration)
        elif name == "star":
            import repro.aggregation.star  # noqa: F401
        elif name == "tree":
            import repro.aggregation.tree_agg  # noqa: F401
        elif name == "gosig":
            import repro.aggregation.gossip  # noqa: F401
        elif name == "handel":
            import repro.aggregation.handel  # noqa: F401
        elif name == "kauri":
            import repro.aggregation.kauri  # noqa: F401
    try:
        cls = _AGGREGATOR_REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_AGGREGATOR_REGISTRY))
        raise KeyError(f"unknown aggregation scheme {name!r}; known: {known}") from exc
    return cls(replica)
