"""Gosig-style randomised gossip vote aggregation (baseline).

Gosig (Li et al., SoCC 2020) replaces the aggregation tree with a
randomised overlay: every process repeatedly sends its current aggregate
to ``k`` peers drawn uniformly at random from the committee, and merges
every aggregate it receives into its own.  The collector (the next
leader in the LSO model) finalises the QC once it holds a quorum.

Two behaviours the paper's security analysis (Section VII) highlights are
modelled explicitly:

* **Free-riding** — a configurable fraction of processes skips the costly
  verify-and-merge step and only ever forwards its own signature.  The
  paper shows this sharply increases the success of targeted vote
  omission; the Monte-Carlo model in :mod:`repro.attacks.gosig_sim`
  quantifies that effect, while this aggregator lets the same behaviour
  run inside the discrete-event experiments.
* **Probabilistic inclusion** — even without faults the final certificate
  may miss correct processes (Gosig is not inclusive), which shows up in
  the QC-size metric.

The merge rule only folds in aggregates that contribute at least one new
signer, keeping multiplicities bounded while preserving the indivisible
aggregation semantics.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Union

from repro.aggregation.base import Aggregator, register_aggregator
from repro.aggregation.messages import ProposalMessage, SignatureMessage
from repro.consensus.block import Block
from repro.crypto.multisig import AggregateSignature, SignatureShare

__all__ = ["GosigAggregator"]


@register_aggregator
class GosigAggregator(Aggregator):
    """Randomised gossip aggregation with parameter ``k`` (``gossip_fanout``)."""

    name = "gosig"

    # -- dissemination ---------------------------------------------------------
    def disseminate(self, block: Block) -> None:
        message = ProposalMessage(block)
        others = [pid for pid in range(self.config.committee_size) if pid != self.process_id]
        self.replica.multicast(others, message, size_bytes=message.size_bytes)
        self._on_proposal(block)

    # -- message handling --------------------------------------------------------
    def handle(self, sender: int, message: Any) -> bool:
        if isinstance(message, ProposalMessage):
            self._on_proposal(message.block)
            return True
        if isinstance(message, SignatureMessage):
            self._on_gossip(sender, message)
            return True
        return False

    # -- behaviour classification --------------------------------------------------
    def is_free_rider(self, block: Block) -> bool:
        """Whether this process skips aggregation work for ``block``.

        Free-riders are a deterministic prefix of the committee so that
        experiments are reproducible; the collector never free-rides (it
        must aggregate to form a QC at all).
        """
        count = int(round(self.config.free_rider_fraction * self.config.committee_size))
        if self.process_id >= count:
            return False
        return self.replica.collector_for(block) != self.process_id

    # -- proposal path ---------------------------------------------------------------
    def _on_proposal(self, block: Block) -> None:
        state = self._gossip_state(block.block_id)
        if state["proposal_handled"]:
            return
        share = self.replica.process_proposal(block)
        if share is None:
            return
        state["proposal_handled"] = True
        state["own_share"] = share
        state["aggregate"] = self.scheme.aggregate([(share, 1)])
        state["rng"] = random.Random(
            (self.config.seed * 1_000_003 + self.process_id) * 1_000_003 + block.view
        )
        self._drain_pending(block)
        self._gossip_round(block)
        if self._is_collector(block):
            # The collector also arms a deadline: with message loss or many
            # free-riders the aggregate may never reach the full committee.
            self.replica.set_timer(
                self.config.aggregation_timer(height=2), self._collector_timeout, block
            )

    # -- gossip rounds --------------------------------------------------------------
    def _gossip_round(self, block: Block) -> None:
        state = self._gossip_state(block.block_id)
        if state["done"] or state["rounds_sent"] >= self.config.gossip_rounds:
            return
        state["rounds_sent"] += 1
        rng: random.Random = state["rng"]
        payload: Union[SignatureShare, AggregateSignature]
        if self.is_free_rider(block):
            payload = state["own_share"]
        else:
            payload = state["aggregate"]
        peers = self._pick_peers(rng)
        message = SignatureMessage(block_id=block.block_id, view=block.view, signature=payload)
        self.replica.multicast(peers, message, size_bytes=message.size_bytes)
        self.replica.set_timer(self.config.gossip_interval, self._gossip_round, block)

    def _pick_peers(self, rng: random.Random) -> List[int]:
        population = [pid for pid in range(self.config.committee_size) if pid != self.process_id]
        fanout = min(self.config.gossip_fanout, len(population))
        return rng.sample(population, fanout)

    # -- merging incoming aggregates ----------------------------------------------------
    def _on_gossip(self, sender: int, message: SignatureMessage) -> None:
        if self._is_done(message.block_id):
            return
        block = self.replica.known_block(message.block_id)
        state = self._gossip_state(message.block_id)
        if block is None or not state["proposal_handled"]:
            state["pending"].append((sender, message))
            return
        if self.is_free_rider(block):
            # Free-riders do not verify or merge other processes' work.
            return
        incoming = message.signature
        merged = self._merge(block, state, incoming)
        if merged and self._is_collector(block):
            self._collector_check(block)

    def _merge(self, block: Block, state: Dict[str, Any], incoming: Any) -> bool:
        """Fold ``incoming`` into the local aggregate if it adds new signers."""
        current: AggregateSignature = state["aggregate"]
        if isinstance(incoming, SignatureShare):
            new_signers = {incoming.signer} - set(current.signers)
            if not new_signers:
                return False
            self.replica.consume_cpu(self.config.cpu_model.verify_share)
            if not self.committee.verify_share(incoming, block.signing_payload()):
                return False
        elif isinstance(incoming, AggregateSignature):
            new_signers = set(incoming.signers) - set(current.signers)
            if not new_signers:
                return False
            self.replica.consume_cpu(
                self.config.cpu_model.aggregate_verify_cost(len(incoming.signers))
            )
            if not self.committee.verify_aggregate(incoming, block.signing_payload()):
                return False
        else:
            return False
        self.replica.consume_cpu(self.config.cpu_model.aggregate_per_share)
        state["aggregate"] = self.scheme.aggregate([(current, 1), (incoming, 1)])
        return True

    # -- collector --------------------------------------------------------------------------
    def _is_collector(self, block: Block) -> bool:
        return self.replica.collector_for(block) == self.process_id

    def _collector_check(self, block: Block) -> None:
        state = self._gossip_state(block.block_id)
        if state["done"]:
            return
        aggregate: AggregateSignature = state["aggregate"]
        if len(aggregate.signers) >= self.config.committee_size:
            self._finalise(block, aggregate)
        elif (
            len(aggregate.signers) >= self.config.quorum_size
            and not self.config.wait_for_all_votes
        ):
            self._finalise(block, aggregate)

    def _collector_timeout(self, block: Block) -> None:
        state = self._gossip_state(block.block_id)
        if state["done"]:
            return
        aggregate: AggregateSignature = state["aggregate"]
        if aggregate is not None and len(aggregate.signers) >= self.config.quorum_size:
            self._finalise(block, aggregate)

    # -- state ------------------------------------------------------------------------------
    def _gossip_state(self, block_id: str) -> Dict[str, Any]:
        state = self._state.get(block_id)
        if state is None:
            state = {
                "proposal_handled": False,
                "own_share": None,
                "aggregate": None,
                "rounds_sent": 0,
                "rng": None,
                "pending": [],
                "done": False,
            }
            self._state[block_id] = state
            self._prune()
        return state

    def _drain_pending(self, block: Block) -> None:
        state = self._gossip_state(block.block_id)
        pending, state["pending"] = state["pending"], []
        for sender, message in pending:
            self._on_gossip(sender, message)
