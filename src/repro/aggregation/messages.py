"""Protocol messages exchanged during dissemination and vote aggregation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.consensus.block import Block, QuorumCertificate
from repro.crypto.multisig import AggregateSignature, SignatureShare

__all__ = [
    "ProposalMessage",
    "SignatureMessage",
    "AckMessage",
    "SecondChanceMessage",
    "SecondChanceReply",
    "NewViewMessage",
]


@dataclass(frozen=True, slots=True)
class ProposalMessage:
    """Block dissemination (the ``PROPOSAL`` message of Algorithm 1)."""

    block: Block

    @property
    def size_bytes(self) -> int:
        return 256 + self.block.payload_bytes


@dataclass(frozen=True, slots=True)
class SignatureMessage:
    """A vote travelling up the aggregation topology.

    ``signature`` is either an individual share (from a leaf or a star
    replica) or an aggregate (from an internal tree node).
    """

    block_id: str
    view: int
    signature: Union[SignatureShare, AggregateSignature]

    @property
    def size_bytes(self) -> int:
        return 192


@dataclass(frozen=True, slots=True)
class AckMessage:
    """Acknowledgement from a parent to its children (Algorithm 1, line 28).

    Carries the parent's aggregate and acts as proof that the child's vote
    was included; children answer later 2ND-CHANCE messages with this
    aggregate instead of their individual signature.
    """

    block_id: str
    view: int
    aggregate: AggregateSignature

    @property
    def size_bytes(self) -> int:
        return 192


@dataclass(frozen=True, slots=True)
class SecondChanceMessage:
    """The root's fallback request to processes whose votes are missing.

    ``proof`` justifies the request: either the aggregate collected so far
    (missing the recipient) or, in the timeout case, the block timestamp
    serves as implicit proof (Section V-A of the paper).
    """

    block: Block
    proof: Optional[AggregateSignature] = None

    @property
    def size_bytes(self) -> int:
        return 256 + self.block.payload_bytes


@dataclass(frozen=True, slots=True)
class SecondChanceReply:
    """Reply to a 2ND-CHANCE: the parent's ack aggregate if available, else
    the replier's individual signature."""

    block_id: str
    view: int
    signature: Union[SignatureShare, AggregateSignature]

    @property
    def size_bytes(self) -> int:
        return 192


@dataclass(frozen=True, slots=True)
class NewViewMessage:
    """Pacemaker message sent to the next leader after a view timeout."""

    view: int
    highest_qc: QuorumCertificate

    @property
    def size_bytes(self) -> int:
        return 160
