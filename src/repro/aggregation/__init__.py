"""Vote aggregation schemes (Definition 1 of the paper).

A vote aggregation scheme disseminates a block to the committee and
collects the committee's votes into a quorum certificate at the collector
(the next leader in the LSO model).  This package contains the baselines
the paper compares against:

* :class:`~repro.aggregation.star.StarAggregator` — the HotStuff star
  topology: the proposer broadcasts and every replica votes directly to
  the collector, which finalises as soon as it holds a quorum.
* :class:`~repro.aggregation.tree_agg.TreeAggregator` — Kauri-style
  two-level tree aggregation *without* fallback paths; this is exactly the
  paper's "Iniva-No2C" variant.
* :class:`~repro.aggregation.kauri.KauriAggregator` — the stable-tree
  variant with failure-driven reconfiguration and star fallback, matching
  the behaviour the paper attributes to Kauri/ByzCoin.
* :class:`~repro.aggregation.gossip.GosigAggregator` — Gosig's randomised
  gossip aggregation with parameter ``k`` and optional free-riding.
* :class:`~repro.aggregation.handel.HandelAggregator` — Handel-style
  multi-level randomised aggregation.

Iniva itself (tree aggregation plus ACK/2ND-CHANCE fallback paths) extends
the tree aggregator and lives with the rest of the paper's contribution in
:mod:`repro.core.iniva`.
"""

from repro.aggregation.base import Aggregator, make_aggregator, register_aggregator
from repro.aggregation.messages import (
    AckMessage,
    NewViewMessage,
    ProposalMessage,
    SecondChanceMessage,
    SecondChanceReply,
    SignatureMessage,
)
from repro.aggregation.gossip import GosigAggregator
from repro.aggregation.handel import HandelAggregator
from repro.aggregation.kauri import KauriAggregator
from repro.aggregation.star import StarAggregator
from repro.aggregation.tree_agg import TreeAggregator

__all__ = [
    "AckMessage",
    "Aggregator",
    "GosigAggregator",
    "HandelAggregator",
    "KauriAggregator",
    "NewViewMessage",
    "ProposalMessage",
    "SecondChanceMessage",
    "SecondChanceReply",
    "SignatureMessage",
    "StarAggregator",
    "TreeAggregator",
    "make_aggregator",
    "register_aggregator",
]
