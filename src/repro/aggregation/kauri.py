"""Kauri-style tree aggregation with a stable tree and reconfiguration.

Kauri (Neiheiser et al., SOSP 2021) also aggregates votes over a tree of
height two, but differs from Iniva in two ways the paper calls out
(Sections II-B and IV-D):

* the tree is **stable** — it is not reshuffled every view, so an internal
  process keeps the same children until a failure forces a change, and a
  malicious leader can steer reconfiguration to sit above a chosen victim;
* on failures the protocol **reconfigures**: a new tree is derived, and
  after repeated failures it falls back to the star topology, giving up
  the load-distribution benefit.

This module reproduces that behaviour as a baseline.  The reconfiguration
epoch is derived from public block state — the number of failed views so
far, ``view - height`` — so every correct replica deterministically builds
the same tree without extra coordination.  After
``kauri_fallback_threshold`` reconfigurations the scheme degenerates to a
star (a tree with zero internal nodes).

Pipelining (Kauri's throughput optimisation) is intentionally not
modelled: the paper's comparison concerns vote inclusion and robustness,
both of which are unaffected by pipelining.
"""

from __future__ import annotations

from repro.aggregation.base import register_aggregator
from repro.aggregation.tree_agg import TreeAggregator
from repro.consensus.block import Block
from repro.tree.overlay import AggregationTree

__all__ = ["KauriAggregator"]


@register_aggregator
class KauriAggregator(TreeAggregator):
    """Stable-tree aggregation with failure-driven reconfiguration."""

    name = "kauri"

    def reconfiguration_epoch(self, block: Block) -> int:
        """How many times the tree has been reconfigured when ``block`` is proposed.

        Every failed view (the view number advancing without the height
        advancing) triggers one reconfiguration, exactly like Kauri
        deriving a new tree after a timeout.  The value only depends on
        the block, so all correct replicas agree on the epoch.
        """
        return max(0, block.view - block.height)

    def uses_star_fallback(self, block: Block) -> bool:
        """Whether the scheme has given up on trees for this block."""
        return self.reconfiguration_epoch(block) >= self.config.kauri_fallback_threshold

    def _build_tree(self, block: Block) -> AggregationTree:
        epoch = self.reconfiguration_epoch(block)
        num_internal = self.config.num_internal
        if self.uses_star_fallback(block):
            # Too many failures: fall back to the star topology (all
            # processes are direct children of the collector).
            num_internal = 0
        return AggregationTree.build(
            committee_size=self.config.committee_size,
            # A stable tree: the layout is keyed by the reconfiguration
            # epoch, not the view, so fault-free periods reuse one tree.
            view=epoch,
            seed=self.config.seed,
            num_internal=num_internal,
            root=self.replica.collector_for(block),
            context=b"kauri-stable-tree",
        )
