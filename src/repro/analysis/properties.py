"""Protocol property checkers (Definitions 2-4, Theorems 1-2, Corollary 1).

The paper states four properties of a vote aggregation scheme — Reliable
Dissemination, Fulfillment, Inclusiveness and (from HotStuff) safety — and
proves that Iniva provides them.  These checkers evaluate the same
properties over a *finished simulated deployment*, so integration tests
and experiments can assert them mechanically instead of eyeballing QC
sizes:

* :func:`check_no_forks` — safety: no two correct replicas commit
  different blocks at the same height.
* :func:`check_reliable_dissemination` — every committed block is known by
  every correct replica (Definition 2 restricted to committed views).
* :func:`check_fulfillment` — every certificate contains at least
  ``(1 - f) N`` signatures (Definition 3 / Corollary 1).
* :func:`check_inclusiveness` — certificates formed while proposer and
  collector were correct contain *every* correct process
  (Definition 4 / Theorem 2).

Each checker returns a :class:`PropertyReport` with the offending evidence
rather than a bare boolean, which makes test failures actionable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, TYPE_CHECKING

from repro.consensus.block import Block, QuorumCertificate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import Deployment

__all__ = [
    "PropertyReport",
    "check_no_forks",
    "check_reliable_dissemination",
    "check_fulfillment",
    "check_inclusiveness",
    "check_all_properties",
]


@dataclass
class PropertyReport:
    """Outcome of one property check.

    Attributes:
        name: The property that was checked.
        holds: True when no violation was found.
        violations: Human-readable descriptions of each violation.
        checked: How many items (blocks, certificates, views) were examined.
    """

    name: str
    holds: bool
    violations: List[str] = field(default_factory=list)
    checked: int = 0

    def __bool__(self) -> bool:
        return self.holds


def _correct_replicas(deployment: "Deployment"):
    return [replica for replica in deployment.replicas if not replica.crashed]


def _committed_blocks_by_height(replica) -> Dict[int, str]:
    heights: Dict[int, str] = {}
    for block_id in replica.committed_blocks:
        block = replica.blocks.get(block_id)
        if block is not None and not block.is_genesis:
            heights[block.height] = block.block_id
    return heights


def _known_certificates(deployment: "Deployment") -> Dict[str, QuorumCertificate]:
    """Every non-genesis QC any correct replica has seen, keyed by block id."""
    certificates: Dict[str, QuorumCertificate] = {}
    for replica in _correct_replicas(deployment):
        for block in replica.blocks.values():
            qc = block.qc
            if not qc.is_genesis:
                certificates.setdefault(qc.block_id, qc)
        if not replica.highest_qc.is_genesis:
            certificates.setdefault(replica.highest_qc.block_id, replica.highest_qc)
    return certificates


# ---------------------------------------------------------------------------
# Safety
# ---------------------------------------------------------------------------
def check_no_forks(deployment: "Deployment") -> PropertyReport:
    """No two correct replicas commit different blocks at the same height."""
    report = PropertyReport(name="no-forks", holds=True)
    canonical: Dict[int, str] = {}
    for replica in _correct_replicas(deployment):
        for height, block_id in _committed_blocks_by_height(replica).items():
            report.checked += 1
            existing = canonical.get(height)
            if existing is None:
                canonical[height] = block_id
            elif existing != block_id:
                report.holds = False
                report.violations.append(
                    f"height {height}: replica {replica.process_id} committed {block_id}, "
                    f"another replica committed {existing}"
                )
    return report


# ---------------------------------------------------------------------------
# Reliable dissemination
# ---------------------------------------------------------------------------
def check_reliable_dissemination(deployment: "Deployment") -> PropertyReport:
    """Every committed block is known by every correct replica."""
    report = PropertyReport(name="reliable-dissemination", holds=True)
    correct = _correct_replicas(deployment)
    committed_ids: Set[str] = set()
    for replica in correct:
        committed_ids |= {
            block_id
            for block_id in replica.committed_blocks
            if not replica.blocks[block_id].is_genesis
        }
    for block_id in committed_ids:
        report.checked += 1
        missing = [replica.process_id for replica in correct if block_id not in replica.blocks]
        if missing:
            report.holds = False
            report.violations.append(
                f"committed block {block_id} unknown at correct replicas {missing}"
            )
    return report


# ---------------------------------------------------------------------------
# Fulfillment
# ---------------------------------------------------------------------------
def check_fulfillment(
    deployment: "Deployment", fault_fraction: float = 1 / 3
) -> PropertyReport:
    """Every certificate carries at least ``(1 - f) N`` signatures."""
    report = PropertyReport(name="fulfillment", holds=True)
    n = deployment.config.committee_size
    threshold = int(math.ceil((1.0 - fault_fraction) * n - 1e-9))
    for block_id, qc in _known_certificates(deployment).items():
        report.checked += 1
        if qc.size < min(threshold, deployment.config.quorum_size):
            report.holds = False
            report.violations.append(
                f"certificate for {block_id} has {qc.size} signatures, requires {threshold}"
            )
    return report


# ---------------------------------------------------------------------------
# Inclusiveness
# ---------------------------------------------------------------------------
def check_inclusiveness(
    deployment: "Deployment",
    crashed: Optional[Iterable[int]] = None,
    minimum_inclusion: float = 1.0,
) -> PropertyReport:
    """Certificates formed under correct leaders contain every correct process.

    Definition 4 only constrains views whose proposer *and* collector are
    correct, so certificates collected by (or proposed by) crashed
    replicas are skipped.  ``minimum_inclusion`` relaxes the check to a
    fraction of the correct processes, which is useful for baselines that
    are not inclusive by design.
    """
    report = PropertyReport(name="inclusiveness", holds=True)
    crashed_set = set(crashed) if crashed is not None else {
        replica.process_id for replica in deployment.replicas if replica.crashed
    }
    correct_set = {
        replica.process_id for replica in deployment.replicas
    } - crashed_set

    blocks_by_id: Dict[str, Block] = {}
    for replica in _correct_replicas(deployment):
        blocks_by_id.update(replica.blocks)

    for block_id, qc in _known_certificates(deployment).items():
        block = blocks_by_id.get(block_id)
        if block is None or block.is_genesis:
            continue
        if block.proposer in crashed_set:
            continue
        if qc.collector is not None and qc.collector in crashed_set:
            continue
        report.checked += 1
        included_correct = set(qc.signers) & correct_set
        required = minimum_inclusion * len(correct_set)
        if len(included_correct) + 1e-9 < required:
            missing = sorted(correct_set - set(qc.signers))
            report.holds = False
            report.violations.append(
                f"certificate for {block_id} (view {qc.view}) includes "
                f"{len(included_correct)}/{len(correct_set)} correct processes; missing {missing}"
            )
    return report


def check_all_properties(
    deployment: "Deployment",
    fault_fraction: float = 1 / 3,
    minimum_inclusion: float = 1.0,
) -> Dict[str, PropertyReport]:
    """Run every checker and return the reports keyed by property name."""
    reports = [
        check_no_forks(deployment),
        check_reliable_dissemination(deployment),
        check_fulfillment(deployment, fault_fraction=fault_fraction),
        check_inclusiveness(deployment, minimum_inclusion=minimum_inclusion),
    ]
    return {report.name: report for report in reports}
