"""Table I: comparison of multi-signature aggregation schemes.

The table summarises, for each scheme, its 0-omission probability, whether
it is inclusive (Definition 4) and whether it is incentive compatible
(Definition 6).  The entries are produced programmatically from the
analysis modules so the benchmark harness can regenerate the table and the
tests can assert its contents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.omission_analysis import (
    gosig_zero_omission,
    iniva_zero_omission,
    randomized_tree_zero_omission,
    star_zero_omission,
)

__all__ = ["SchemeProperties", "table1", "format_table1"]


@dataclass(frozen=True)
class SchemeProperties:
    """One row of Table I.

    Attributes:
        name: Scheme name as it appears in the paper.
        zero_omission: Human-readable 0-omission probability (``m``, ``m²``,
            ``k``-dependent, ...).
        zero_omission_value: Numeric value for the configured attacker power
            (``None`` when only an empirical estimate makes sense and
            ``estimate_gosig`` was disabled).
        inclusive: Whether the scheme satisfies Inclusiveness.
        incentive_compatible: Whether honest aggregation is a dominant
            strategy under the scheme's rewards.
    """

    name: str
    zero_omission: str
    zero_omission_value: Optional[float]
    inclusive: bool
    incentive_compatible: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.name,
            "0-omission probability": self.zero_omission,
            "0-omission value": self.zero_omission_value,
            "inclusive": self.inclusive,
            "incentive compatible": self.incentive_compatible,
        }


def table1(
    attacker_power: float = 0.1,
    gossip_fanout: int = 2,
    estimate_gosig: bool = True,
    gosig_trials: int = 800,
    seed: int = 0,
) -> List[SchemeProperties]:
    """Regenerate Table I for a given attacker power ``m``."""
    gosig_value = (
        gosig_zero_omission(
            attacker_power, gossip_fanout=gossip_fanout, trials=gosig_trials, seed=seed
        )
        if estimate_gosig
        else None
    )
    return [
        SchemeProperties(
            name="Star protocol",
            zero_omission="m",
            zero_omission_value=star_zero_omission(attacker_power),
            inclusive=True,
            incentive_compatible=True,
        ),
        SchemeProperties(
            name="Randomized tree",
            zero_omission="m (every round in a static configuration)",
            zero_omission_value=randomized_tree_zero_omission(attacker_power),
            inclusive=False,
            incentive_compatible=True,
        ),
        SchemeProperties(
            name=f"Gosig (k={gossip_fanout})",
            zero_omission="k-dependent",
            zero_omission_value=gosig_value,
            inclusive=False,
            incentive_compatible=False,
        ),
        SchemeProperties(
            name="Iniva",
            zero_omission="m^2",
            zero_omission_value=iniva_zero_omission(attacker_power),
            inclusive=True,
            incentive_compatible=True,
        ),
    ]


def format_table1(rows: List[SchemeProperties]) -> str:
    """Render Table I as an aligned text table (used by the bench harness)."""
    header = f"{'Scheme':<18} {'0-omission':<40} {'Value':>8} {'Inclusive':>10} {'Incentive-compat.':>18}"
    lines = [header, "-" * len(header)]
    for row in rows:
        value = f"{row.zero_omission_value:.4f}" if row.zero_omission_value is not None else "n/a"
        lines.append(
            f"{row.name:<18} {row.zero_omission:<40} {value:>8} "
            f"{str(row.inclusive):>10} {str(row.incentive_compatible):>18}"
        )
    return "\n".join(lines)
