"""Closed-form 0-omission probabilities for the compared schemes.

These are the analytic entries behind Table I; the Monte-Carlo estimators
in :mod:`repro.attacks` cross-check the Iniva and Gosig values.
"""

from __future__ import annotations

from typing import Optional

from repro.attacks.gosig_sim import GosigConfig, GosigSimulator

__all__ = [
    "star_zero_omission",
    "randomized_tree_zero_omission",
    "iniva_zero_omission",
    "gosig_zero_omission",
]


def star_zero_omission(attacker_power: float) -> float:
    """Star protocol: the leader alone controls inclusion, so ``m``."""
    _check_power(attacker_power)
    return attacker_power


def randomized_tree_zero_omission(attacker_power: float, rounds_controlled: int = 1) -> float:
    """A static randomized tree whose configuration the leader controls.

    Once the attacker holds the leader it can reconfigure the tree so it
    also controls the victim's parent, and in a static configuration it can
    repeat the attack every round (Table I footnote a): the probability is
    ``m`` per round and approaches certainty over repeated rounds.
    """
    _check_power(attacker_power)
    per_round = attacker_power
    return 1.0 - (1.0 - per_round) ** max(rounds_controlled, 1)


def iniva_zero_omission(attacker_power: float) -> float:
    """Iniva: two independently assigned roles must be corrupted, so ``m²``."""
    _check_power(attacker_power)
    return attacker_power ** 2


def gosig_zero_omission(
    attacker_power: float,
    gossip_fanout: int = 2,
    free_riding_fraction: float = 0.0,
    trials: int = 1500,
    seed: int = 0,
    config: Optional[GosigConfig] = None,
) -> float:
    """Gosig's 0-omission probability is ``k``-dependent (Table I footnote b).

    There is no clean closed form, so the value is estimated with the
    round-based simulator from :mod:`repro.attacks.gosig_sim`.
    """
    _check_power(attacker_power)
    config = config or GosigConfig(
        gossip_fanout=gossip_fanout,
        attacker_power=attacker_power,
        free_riding_fraction=free_riding_fraction,
    )
    simulator = GosigSimulator(config, seed=seed)
    return simulator.omission_probability(trials=trials).probability


def _check_power(attacker_power: float) -> None:
    if not 0 <= attacker_power <= 1:
        raise ValueError("attacker power must lie in [0, 1]")
