"""Analytic security model: closed forms and the paper's Table I."""

from repro.analysis.table1 import SchemeProperties, table1, format_table1
from repro.analysis.omission_analysis import (
    gosig_zero_omission,
    iniva_zero_omission,
    randomized_tree_zero_omission,
    star_zero_omission,
)
from repro.analysis.properties import (
    PropertyReport,
    check_all_properties,
    check_fulfillment,
    check_inclusiveness,
    check_no_forks,
    check_reliable_dissemination,
)
from repro.analysis.closed_form import (
    attacker_loss_vote_denial,
    attacker_loss_vote_omission,
    branch_exclusion_cost,
    branch_size,
    fulfillment_threshold,
    gosig_coverage,
    gosig_inclusion_probability,
    iniva_c_omission,
    iniva_max_latency,
    victim_loss_vote_omission,
)

__all__ = [
    "PropertyReport",
    "SchemeProperties",
    "attacker_loss_vote_denial",
    "check_all_properties",
    "check_fulfillment",
    "check_inclusiveness",
    "check_no_forks",
    "check_reliable_dissemination",
    "attacker_loss_vote_omission",
    "branch_exclusion_cost",
    "branch_size",
    "format_table1",
    "fulfillment_threshold",
    "gosig_coverage",
    "gosig_inclusion_probability",
    "gosig_zero_omission",
    "iniva_c_omission",
    "iniva_max_latency",
    "iniva_zero_omission",
    "randomized_tree_zero_omission",
    "star_zero_omission",
    "table1",
    "victim_loss_vote_omission",
]
