"""Closed-form security and performance models.

Complements the Monte-Carlo machinery in :mod:`repro.attacks` with the
analytic expressions used throughout the paper's Sections V-VII:

* c-omission probabilities for Iniva as a function of collateral and tree
  shape (Theorem 4 and the branch-exclusion discussion);
* the attacker/victim reward losses of the Section VI strategy analysis
  (Equations 2-6), in expectation over the leader assignment;
* a fluid model of Gosig's gossip coverage, which explains why its
  inclusion (and hence its omission resistance) is ``k``-dependent;
* the latency bound (7Δ) and fulfillment threshold used by the
  inclusiveness proofs.

All functions are pure and cheap, so property tests can sweep them
against the simulators.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.rewards import RewardParams

__all__ = [
    "branch_size",
    "iniva_c_omission",
    "branch_exclusion_cost",
    "attacker_loss_vote_omission",
    "victim_loss_vote_omission",
    "attacker_loss_vote_denial",
    "gosig_coverage",
    "gosig_inclusion_probability",
    "iniva_max_latency",
    "fulfillment_threshold",
]


def _check_fraction(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1]")


# ---------------------------------------------------------------------------
# Tree shape and omission probabilities
# ---------------------------------------------------------------------------
def branch_size(committee_size: int, num_internal: int) -> int:
    """Number of processes in one branch: the aggregator plus its leaves.

    With ``n`` processes, one root and ``i`` internal aggregators, each
    aggregator serves about ``(n - 1 - i) / i`` leaves.
    """
    if committee_size < 2:
        raise ValueError("committee must have at least two processes")
    if num_internal <= 0:
        # Star-degenerate tree: the "branch" of a victim is just itself.
        return 1
    leaves = committee_size - 1 - num_internal
    return 1 + math.ceil(leaves / num_internal)


def iniva_c_omission(
    attacker_power: float,
    committee_size: int,
    num_internal: int,
    collateral: int = 0,
) -> float:
    """The analytic c-omission probability of Iniva (Section VII-A).

    With collateral below the size of a full branch the attacker must
    control two independently assigned roles (the collector plus either
    the victim's parent or the previous proposer), giving ``m²``.  Once the
    collateral budget covers a whole branch, controlling the collector
    alone suffices: the attacker drops the victim's entire subtree and the
    probability degrades to ``m``.
    """
    _check_fraction(attacker_power, "attacker power")
    if collateral < 0:
        raise ValueError("collateral cannot be negative")
    needed = branch_size(committee_size, num_internal) - 1  # non-target processes dropped
    if collateral >= needed:
        return attacker_power
    return attacker_power ** 2


# ---------------------------------------------------------------------------
# Reward-loss expressions (Section VI)
# ---------------------------------------------------------------------------
def branch_exclusion_cost(
    committee_size: int,
    num_internal: int,
    params: Optional[RewardParams] = None,
) -> float:
    """Expected reward the leader forfeits by excluding one whole branch.

    Dropping a branch of ``a + 1`` processes costs the leader
    ``e_l / f * b_l * R`` of its variational bonus (Equation 2 with
    ``e_l = (a + 1) / n``) plus the aggregation bonus it would have earned
    for that subtree.
    """
    params = params or RewardParams()
    excluded = branch_size(committee_size, num_internal)
    fraction = excluded / committee_size
    leader_loss = (fraction / params.fault_fraction) * params.leader_bonus * params.total_reward
    aggregation_loss = params.aggregation_bonus * params.total_reward / committee_size
    return leader_loss + aggregation_loss


def attacker_loss_vote_omission(
    attacker_power: float,
    omitted_fraction: float,
    params: Optional[RewardParams] = None,
) -> float:
    """Net expected loss of the leader-attacker omitting ``e_l`` votes.

    ``L - m * R_redistributed`` from the Section VI-A analysis: the leader
    forfeits ``e_l / f * b_l * R`` of its bonus and recovers a fraction
    ``m`` of everything that gets redistributed.
    """
    _check_fraction(attacker_power, "attacker power")
    _check_fraction(omitted_fraction, "omitted fraction")
    params = params or RewardParams()
    reward = params.total_reward
    loss = (omitted_fraction / params.fault_fraction) * params.leader_bonus * reward
    redistributed = loss + omitted_fraction * reward * (
        params.aggregation_bonus + params.voting_fraction
    )
    return loss - attacker_power * redistributed


def victim_loss_vote_omission(
    omitted_fraction: float, params: Optional[RewardParams] = None
) -> float:
    """Expected loss of the omitted processes (their voting reward)."""
    _check_fraction(omitted_fraction, "omitted fraction")
    params = params or RewardParams()
    return omitted_fraction * params.voting_fraction * params.total_reward


def attacker_loss_vote_denial(
    attacker_power: float,
    denied_fraction: float,
    params: Optional[RewardParams] = None,
) -> float:
    """Net expected loss of an attacker refusing to vote with ``e_v`` processes.

    Section VI-B: the attacker loses the voting reward of the denied votes
    and recovers ``m`` of the redistributed voting reward, leader bonus and
    aggregation bonus.
    """
    _check_fraction(attacker_power, "attacker power")
    _check_fraction(denied_fraction, "denied fraction")
    params = params or RewardParams()
    reward = params.total_reward
    loss = denied_fraction * params.voting_fraction * reward
    redistributed = loss + denied_fraction * reward * (
        params.leader_bonus / params.fault_fraction + params.aggregation_bonus
    )
    return loss - attacker_power * redistributed


# ---------------------------------------------------------------------------
# Gosig coverage model
# ---------------------------------------------------------------------------
def gosig_coverage(committee_size: int, gossip_fanout: int, rounds: int) -> float:
    """Fluid approximation of push-gossip coverage after ``rounds`` rounds.

    ``c_{r+1} = 1 - (1 - c_r) * (1 - c_r * k / (n - 1))^{n}`` is the usual
    mean-field recursion for push gossip where every informed process
    contacts ``k`` uniformly random peers per round.  The returned value is
    the expected fraction of processes holding a given signature.
    """
    if committee_size < 2:
        raise ValueError("committee must have at least two processes")
    if gossip_fanout < 1:
        raise ValueError("fanout must be at least one")
    if rounds < 0:
        raise ValueError("rounds cannot be negative")
    coverage = 1.0 / committee_size
    contact_probability = min(gossip_fanout / (committee_size - 1), 1.0)
    for _ in range(rounds):
        informed = coverage * committee_size
        miss = (1.0 - contact_probability) ** informed
        coverage = coverage + (1.0 - coverage) * (1.0 - miss)
        coverage = min(coverage, 1.0)
    return coverage


def gosig_inclusion_probability(
    committee_size: int,
    gossip_fanout: int,
    rounds: int,
    free_riding_fraction: float = 0.0,
) -> float:
    """Probability that a given correct vote reaches the collector.

    Free-riders forward only their own signature, so they do not help a
    foreign signature spread: the effective population carrying it shrinks
    accordingly, which is the mechanism behind the paper's observation
    that free-riding makes targeted omission easier.
    """
    _check_fraction(free_riding_fraction, "free-riding fraction")
    effective_fanout = max(1, round(gossip_fanout * (1.0 - free_riding_fraction)))
    return gosig_coverage(committee_size, effective_fanout, rounds)


# ---------------------------------------------------------------------------
# Latency / liveness bounds
# ---------------------------------------------------------------------------
def iniva_max_latency(delta: float) -> float:
    """The 7Δ worst-case round latency derived in Section V-C."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    return 7.0 * delta


def fulfillment_threshold(committee_size: int, fault_fraction: float = 1 / 3) -> int:
    """The ``(1 - f) N`` signature count required by Fulfillment (Definition 3)."""
    if committee_size <= 0:
        raise ValueError("committee size must be positive")
    _check_fraction(fault_fraction, "fault fraction")
    return int(math.ceil((1.0 - fault_fraction) * committee_size - 1e-9))
