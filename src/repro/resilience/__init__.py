"""repro.resilience — the self-healing layer of the live runtime.

The paper's claim is robustness of the *protocol* (Iniva's fault-tolerant
aggregation); this package makes the *harness* robust enough to measure
it: supervised per-peer connections that resend what a broken link never
delivered (:mod:`.session`), phi-accrual failure detection over
piggybacked heartbeats (:mod:`.detector`), a state-transfer catch-up
protocol for replicas rejoining after a crash (:mod:`.messages`, handled
in :class:`~repro.consensus.replica.HotStuffReplica` so it behaves
identically on the sim and live runtimes), and restart supervision for
``--procs`` worker subprocesses (:mod:`.supervisor`).

Knobs live in :class:`~repro.scenarios.spec.ResilienceSpec`; what
happened during a run is surfaced as ``RunResult.resilience``.
"""

from repro.resilience.detector import PhiAccrualDetector, Suspicion
from repro.resilience.messages import (
    Heartbeat,
    SessionAck,
    SessionEnvelope,
    SessionHello,
    SyncRequest,
    SyncResponse,
)
from repro.resilience.session import PeerSession
from repro.resilience.supervisor import (
    RestartPolicy,
    SupervisedWorker,
    WorkerSupervisor,
)

__all__ = [
    "Heartbeat",
    "PeerSession",
    "PhiAccrualDetector",
    "RestartPolicy",
    "SessionAck",
    "SessionEnvelope",
    "SessionHello",
    "SupervisedWorker",
    "Suspicion",
    "SyncRequest",
    "SyncResponse",
    "WorkerSupervisor",
]
