"""Wire messages of the resilience layer.

Two families live here:

* **Session control** (:class:`SessionHello`, :class:`SessionEnvelope`,
  :class:`SessionAck`, :class:`Heartbeat`) — spoken only by the live
  runtime's connection supervisor (:mod:`repro.resilience.session`).
  Envelopes carry sequence numbers so an established-then-broken TCP link
  can resend everything the peer never acknowledged; heartbeats feed the
  phi-accrual failure detector (:mod:`repro.resilience.detector`).
  These frames never reach the protocol core and are not counted in the
  per-replica transport schema.

* **State transfer** (:class:`SyncRequest`, :class:`SyncResponse`) —
  ordinary protocol messages handled by
  :class:`~repro.consensus.replica.HotStuffReplica`.  A replica restarted
  by ``Process.recover`` (or a cold-started worker replica) multicasts a
  :class:`SyncRequest` carrying its committed height; live peers answer
  with the committed-block suffix above that height plus their current
  view and highest QC, so the rejoiner commits the blocks it missed
  instead of waiting for the pacemaker to drag it forward.  They travel
  through the normal :class:`~repro.runtime.base.Runtime` send path, so
  catch-up behaves identically under the sim and live substrates (which
  is what lets the parity tests pin it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Tuple

if TYPE_CHECKING:  # annotation-only: keeps this leaf importable first
    from repro.consensus.block import Block, QuorumCertificate

__all__ = [
    "Heartbeat",
    "Routed",
    "SessionAck",
    "SessionEnvelope",
    "SessionHello",
    "SyncRequest",
    "SyncResponse",
]


# ---------------------------------------------------------------------------
# Session control frames (live transport only)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SessionHello:
    """First frame on every outbound connection: who is calling, and which
    incarnation of the session this connection belongs to (0 for the
    first connect, +1 per reconnect)."""

    pid: int
    incarnation: int = 0

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class SessionEnvelope:
    """A sequence-numbered frame carrying one flush of protocol messages.

    The sender keeps the envelope buffered until the peer's cumulative
    :class:`SessionAck` covers ``seq``; on reconnect every still-buffered
    envelope is resent, and the receiver deduplicates by sequence number.
    Members are ordinary wire values — an envelope inside an envelope is
    a codec error, like nested batches.
    """

    seq: int
    messages: Tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "messages", tuple(self.messages))
        if not self.messages:
            raise ValueError("a session envelope needs at least one message")
        if self.seq < 1:
            raise ValueError("envelope sequence numbers start at 1")

    def __len__(self) -> int:
        return len(self.messages)


@dataclass(frozen=True, slots=True)
class SessionAck:
    """Cumulative acknowledgement: every envelope with ``seq <= acked`` has
    been delivered.  Written back on the *inbound* connection (full
    duplex), so acks are never routed through an independently shaped or
    partitioned reverse link."""

    acked: int

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """Explicit liveness beacon, sent only when a link has been idle for a
    heartbeat interval — any envelope doubles as a heartbeat."""

    pid: int
    seq: int

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class Routed:
    """Route header for worker-multiplexed transport: one protocol message
    addressed ``src -> dst`` at *replica* granularity while travelling on
    a *worker*-pair connection.

    The scale-out fabric opens one supervised session per worker pair and
    multiplexes every hosted replica's traffic through it; the receiving
    worker demultiplexes by ``dst`` and hands ``message`` to the hosted
    replica as if it had its own connection.  Route headers are flat —
    a ``Routed`` inside a ``Routed`` is a codec error, like nested
    batches — and carry exactly one protocol message (envelopes already
    batch at the session layer).
    """

    src: int
    dst: int
    message: Any


# ---------------------------------------------------------------------------
# State-transfer protocol messages (both runtimes)
# ---------------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SyncRequest:
    """A recovering replica asking peers for the chain it missed."""

    sender: int
    from_height: int

    @property
    def size_bytes(self) -> int:
        return 24


@dataclass(frozen=True, slots=True)
class SyncResponse:
    """A live peer's catch-up payload: the committed-block suffix above the
    requester's height, plus the responder's pacemaker position."""

    sender: int
    view: int
    highest_qc: QuorumCertificate
    blocks: Tuple[Block, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "blocks", tuple(self.blocks))

    @property
    def size_bytes(self) -> int:
        return 192 + sum(256 + block.payload_bytes for block in self.blocks)
