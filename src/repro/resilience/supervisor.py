"""Supervision of ``--procs`` worker subprocesses.

The pre-resilience cluster spawned its workers and then blocked in a
serial ``communicate()`` per worker: a worker that died unexpectedly
(OOM kill, segfault, operator SIGKILL) either stalled the whole run
until the timeout or aborted it with ``RuntimeError`` — the one failure
mode a robustness paper's harness should not have.

:class:`WorkerSupervisor` replaces that with a poll loop over
:class:`SupervisedWorker` handles (each a ``Popen`` drained by a daemon
thread, so a chatty worker can never deadlock on a full stdout pipe):

* a worker exiting non-zero before the deadline is **restarted** per the
  :class:`RestartPolicy` — bounded attempts, linear backoff — and the
  restart is recorded on the supervision ``events`` timeline;
* a worker that exhausts its attempts has its replicas **salvaged**: the
  run completes degraded, with placeholder summaries for the lost pids
  instead of a hang or an exception;
* stragglers still alive at the deadline are killed and treated the
  same way.

The supervisor is deliberately ignorant of *what* it supervises — it
sees only a spawn callback ``(pids, attempt) -> SupervisedWorker`` — so
tests can drive it with fake subprocesses and the cluster can inject the
real worker command line, port map and start epoch through a closure.
"""

from __future__ import annotations

import logging
import subprocess
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = ["RestartPolicy", "SupervisedWorker", "WorkerSupervisor"]

logger = logging.getLogger("repro.resilience.supervisor")


@dataclass(frozen=True)
class RestartPolicy:
    """How hard the supervisor tries to bring a dead worker back.

    ``max_attempts`` counts *restarts* (0 disables restarting entirely);
    attempt ``k`` waits ``backoff * k`` seconds before respawning.
    """

    max_attempts: int = 2
    backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError("max_attempts must be >= 0")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0")


class SupervisedWorker:
    """One worker subprocess plus the thread draining its pipes.

    ``communicate()`` runs on a daemon thread from birth, so the worker
    can write megabytes of summaries without anyone deadlocking on the
    64KB pipe buffer; the supervisor polls :meth:`done` instead of
    blocking.
    """

    def __init__(self, pids: Sequence[int], proc: subprocess.Popen) -> None:
        self.pids = list(pids)
        self.proc = proc
        self.out: str = ""
        self.err: str = ""
        self._thread = threading.Thread(target=self._drain, daemon=True)
        self._thread.start()

    def _drain(self) -> None:
        out, err = self.proc.communicate()
        self.out = out or ""
        self.err = err or ""

    def done(self) -> bool:
        """Exited *and* fully drained (out/err are complete)."""
        return self.proc.poll() is not None and not self._thread.is_alive()

    @property
    def returncode(self) -> Optional[int]:
        return self.proc.poll()

    def kill(self) -> None:
        try:
            self.proc.kill()
        except OSError:  # already gone
            pass

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout)


class WorkerSupervisor:
    """Spawn, watch, restart and reap a fleet of worker subprocesses.

    Args:
        spawn: ``(pids, attempt) -> SupervisedWorker``.  ``attempt`` is 0
            for the initial launch and ``k`` for the ``k``-th restart, so
            the callback can rebase the start epoch and shrink the serve
            window for late joiners (and mark them for cold-start sync).
        policy: Restart budget and backoff.
        poll_interval: Seconds between liveness sweeps.
    """

    def __init__(
        self,
        spawn: Callable[[Sequence[int], int], SupervisedWorker],
        policy: Optional[RestartPolicy] = None,
        *,
        poll_interval: float = 0.05,
    ) -> None:
        self.spawn = spawn
        self.policy = policy or RestartPolicy()
        self.poll_interval = poll_interval
        self.events: List[Dict[str, Any]] = []
        self.restarts = 0
        self._active: Dict[int, Tuple[SupervisedWorker, int]] = {}
        self._lock = threading.Lock()

    def active_workers(self) -> List[SupervisedWorker]:
        """Live handles, for tests that want to kill one mid-run."""
        with self._lock:
            return [worker for worker, _ in self._active.values()]

    def run(
        self, assignments: Sequence[Sequence[int]], deadline: float
    ) -> Tuple[List[SupervisedWorker], List[List[int]]]:
        """Supervise one fleet to completion.

        Returns ``(succeeded, failed_pid_groups)``: handles whose final
        incarnation exited cleanly (their ``out`` holds the summary
        JSON), and the pid groups whose workers exhausted the restart
        budget or were still running at ``deadline`` — the caller
        salvages those into placeholder summaries.

        ``deadline`` is a ``time.monotonic()`` instant.
        """
        started = time.monotonic()
        with self._lock:
            self._active = {
                slot: (self.spawn(pids, 0), 0)
                for slot, pids in enumerate(assignments)
            }
        pending: Dict[int, Tuple[float, int, List[int]]] = {}  # slot -> (when, attempt, pids)
        succeeded: List[SupervisedWorker] = []
        failed: List[List[int]] = []

        while True:
            with self._lock:
                active_items = list(self._active.items())
            if not active_items and not pending:
                break
            now = time.monotonic()
            if now >= deadline:
                break
            for slot, (worker, attempt) in active_items:
                if not worker.done():
                    continue
                with self._lock:
                    self._active.pop(slot, None)
                if worker.returncode == 0:
                    succeeded.append(worker)
                    continue
                logger.warning(
                    "worker hosting pids %s died with returncode %s (attempt %d)",
                    worker.pids,
                    worker.returncode,
                    attempt,
                )
                self.events.append(
                    {
                        "kind": "worker-died",
                        "pids": worker.pids,
                        "returncode": worker.returncode,
                        "attempt": attempt,
                        "at": now - started,
                        "stderr": worker.err.strip()[-500:],
                    }
                )
                if attempt < self.policy.max_attempts:
                    wait = self.policy.backoff * (attempt + 1)
                    pending[slot] = (now + wait, attempt + 1, worker.pids)
                else:
                    failed.append(worker.pids)
            now = time.monotonic()
            for slot, (when, attempt, pids) in list(pending.items()):
                if now >= when:
                    del pending[slot]
                    replacement = self.spawn(pids, attempt)
                    with self._lock:
                        self._active[slot] = (replacement, attempt)
                    self.restarts += 1
                    logger.info(
                        "restarted worker hosting pids %s (attempt %d)",
                        list(pids),
                        attempt,
                    )
                    self.events.append(
                        {
                            "kind": "worker-restarted",
                            "pids": list(pids),
                            "attempt": attempt,
                            "at": now - started,
                        }
                    )
            time.sleep(self.poll_interval)

        # Deadline: kill stragglers and salvage whatever they reported.
        with self._lock:
            stragglers = list(self._active.values())
            self._active = {}
        for worker, attempt in stragglers:
            worker.kill()
            worker.join(timeout=5.0)
            if worker.returncode == 0:
                succeeded.append(worker)
            else:
                logger.warning(
                    "worker hosting pids %s killed at deadline (returncode %s)",
                    worker.pids,
                    worker.returncode,
                )
                self.events.append(
                    {
                        "kind": "worker-timeout",
                        "pids": worker.pids,
                        "returncode": worker.returncode,
                        "attempt": attempt,
                        "at": time.monotonic() - started,
                        "stderr": worker.err.strip()[-500:],
                    }
                )
                failed.append(worker.pids)
        for _, attempt, pids in pending.values():  # never respawned
            failed.append(list(pids))
        return succeeded, failed

    def summary(self) -> Dict[str, Any]:
        """JSON-safe supervision record for ``RunResult.resilience``."""
        return {
            "restarts": self.restarts,
            "events": list(self.events),
            "policy": {
                "max_attempts": self.policy.max_attempts,
                "backoff": self.policy.backoff,
            },
        }
