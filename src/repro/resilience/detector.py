"""Phi-accrual failure detection over heartbeat inter-arrival times.

The detector keeps, per peer, a sliding window of observed heartbeat
inter-arrival times and turns "how long since the last heartbeat" into a
*suspicion level* ``phi = -log10 P(interval > elapsed)`` under a normal
model of the window (Hayashibara et al., the detector Cassandra and Akka
ship).  Crossing ``threshold`` raises a suspicion, falling back below it
clears one; every raise/clear pair is recorded on a timeline so a run
can report exactly when each peer was considered down — which is how the
live runtime's ``RunResult.resilience`` section shows a crashed
replica's down window.

The detector is pure bookkeeping (no tasks, no clocks of its own): the
owner feeds it ``heartbeat(peer, now)`` on every inbound frame and polls
``evaluate(now)`` periodically.  That keeps it runtime-agnostic and
directly unit-testable with synthetic timelines.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Deque, Dict, List, Optional

__all__ = ["PhiAccrualDetector", "Suspicion"]


class Suspicion:
    """One contiguous interval during which a peer was suspected down."""

    __slots__ = ("peer", "raised_at", "cleared_at", "phi")

    def __init__(self, peer: int, raised_at: float, phi: float) -> None:
        self.peer = peer
        self.raised_at = raised_at
        self.cleared_at: Optional[float] = None
        self.phi = phi  # highest phi observed while raised

    @property
    def active(self) -> bool:
        return self.cleared_at is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "peer": self.peer,
            "raised_at": self.raised_at,
            "cleared_at": self.cleared_at,
            "phi": self.phi,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "active" if self.active else f"cleared_at={self.cleared_at:.3f}"
        return f"Suspicion(peer={self.peer}, raised_at={self.raised_at:.3f}, {state})"


class PhiAccrualDetector:
    """Suspicion levels and raise/clear timelines for a set of peers.

    Args:
        threshold: Phi level at which a peer becomes suspected.  8 means
            "the chance this silence is ordinary jitter is 1e-8".
        window: Inter-arrival samples kept per peer.
        min_std: Floor on the modelled standard deviation, so a perfectly
            regular heartbeat stream doesn't suspect on microscopic jitter.
        bootstrap_interval: Assumed mean interval before enough samples
            arrive (also the first sample's prior).
    """

    def __init__(
        self,
        threshold: float = 8.0,
        window: int = 32,
        min_std: float = 0.01,
        bootstrap_interval: float = 0.1,
    ) -> None:
        if threshold <= 0:
            raise ValueError("phi threshold must be positive")
        if window < 2:
            raise ValueError("detector window needs at least two samples")
        self.threshold = threshold
        self.window = window
        self.min_std = min_std
        self.bootstrap_interval = bootstrap_interval
        self._last_seen: Dict[int, float] = {}
        self._intervals: Dict[int, Deque[float]] = {}
        self._active: Dict[int, Suspicion] = {}
        self.timeline: List[Suspicion] = []

    # -- observations --------------------------------------------------------
    def heartbeat(self, peer: int, now: float) -> None:
        """Record any sign of life from ``peer`` at time ``now``."""
        last = self._last_seen.get(peer)
        if last is not None and now > last:
            self._intervals.setdefault(peer, deque(maxlen=self.window)).append(now - last)
        self._last_seen[peer] = now

    # -- suspicion -----------------------------------------------------------
    def phi(self, peer: int, now: float) -> float:
        """The current suspicion level of ``peer`` (0 = just heard from)."""
        last = self._last_seen.get(peer)
        if last is None:
            return 0.0  # never heard from: still booting, not yet suspect
        elapsed = now - last
        if elapsed <= 0:
            return 0.0
        samples = self._intervals.get(peer)
        if samples:
            mean = sum(samples) / len(samples)
            variance = sum((s - mean) ** 2 for s in samples) / len(samples)
            std = max(math.sqrt(variance), self.min_std, mean * 0.1)
        else:
            mean = self.bootstrap_interval
            std = max(self.min_std, mean * 0.5)
        # P(interval > elapsed) under N(mean, std), via the survival
        # function; clamp away from zero so phi stays finite.
        survival = 0.5 * math.erfc((elapsed - mean) / (std * math.sqrt(2.0)))
        return -math.log10(max(survival, 1e-300))

    def evaluate(self, now: float) -> List[Suspicion]:
        """Update every peer's raised/cleared state; returns transitions."""
        transitions: List[Suspicion] = []
        peers = set(self._last_seen) | set(self._active)
        for peer in sorted(peers):
            level = self.phi(peer, now)
            active = self._active.get(peer)
            if level >= self.threshold and active is None:
                suspicion = Suspicion(peer, raised_at=now, phi=level)
                self._active[peer] = suspicion
                self.timeline.append(suspicion)
                transitions.append(suspicion)
            elif active is not None:
                active.phi = max(active.phi, level)
                if level < self.threshold:
                    active.cleared_at = now
                    del self._active[peer]
                    transitions.append(active)
        return transitions

    def suspected(self, peer: int) -> bool:
        return peer in self._active

    def touch_all(self, now: float) -> None:
        """Refresh every peer's last-seen time without adding samples.

        Used after the owner itself recovers from a crash: while it was
        down it observed nothing, so the silence says nothing about its
        peers — restarting their clocks avoids a burst of stale
        suspicions the moment the replica comes back.
        """
        for peer in self._last_seen:
            self._last_seen[peer] = now

    def summary(self) -> List[Dict[str, Any]]:
        """The JSON-safe suspicion timeline (chronological)."""
        return [suspicion.to_dict() for suspicion in self.timeline]
