"""Supervised per-peer outbound sessions for the live runtime.

The pre-resilience transport opened one TCP connection per peer and gave
up on the first error: an established-then-broken link silently lost the
dequeued frame and every message after it.  :class:`PeerSession` replaces
that fire-and-forget writer with a small reliability layer:

* outbound protocol messages are sealed into sequence-numbered
  :class:`~repro.resilience.messages.SessionEnvelope` frames (batched up
  to ``max_batch`` per envelope, like the old opportunistic batch drain);
* envelopes stay in a bounded resend buffer until the peer's cumulative
  :class:`~repro.resilience.messages.SessionAck` — read back on the same
  TCP connection — covers their sequence number;
* a broken connection triggers reconnect with bounded, jittered
  exponential backoff, and every still-unacknowledged envelope is resent
  on the new connection (the receiver deduplicates by sequence number);
* when the resend buffer overflows, the *oldest* envelope is dropped and
  reported through ``on_drop`` so the node can count the loss in
  ``messages_dropped`` instead of hiding it.

Control frames (heartbeats) ride the same connection but are written
raw — never sequenced, buffered, or resent: a stale liveness beacon is
worthless.  The session is deliberately ignorant of the node: it talks
to the outside world only through the codec, an ``on_drop`` callback and
asyncio streams, which keeps it unit-testable against a plain
``asyncio.start_server`` echo peer.
"""

from __future__ import annotations

import asyncio
from collections import deque
from random import Random
from typing import Any, Callable, Deque, Dict, List, Optional

from repro.resilience.messages import SessionEnvelope, SessionHello
from repro.runtime.net import tune_writer

__all__ = ["PeerSession"]

_U32_LEN = 4


class PeerSession:
    """One supervised outbound link from ``owner`` to ``peer``.

    Args:
        owner: Replica id of the sending node (announced in the hello).
        peer: Replica id of the destination (for logs/stats only).
        host, port: Where the peer listens.
        codec: A :class:`~repro.runtime.codec.WireCodec` shared with the
            owning node.
        max_batch: Most messages sealed into one envelope.
        resend_buffer: Most unacknowledged envelopes kept for resend;
            overflow drops the oldest envelope via ``on_drop``.
        reconnect_base / reconnect_cap: Exponential backoff bounds
            (seconds) between connect attempts, with seeded jitter.
        on_drop: Called with the number of messages lost whenever an
            envelope falls out of the resend buffer.
        on_reconnect: Called (no arguments) each time the link comes
            back up after a break — i.e. on every successful connect
            except the first.  The fabric uses it to put ``reconnect``
            events into the consensus trace.
        read_limit: Stream reader buffer limit for the ack channel.
    """

    def __init__(
        self,
        owner: int,
        peer: int,
        host: str,
        port: int,
        codec: Any,
        *,
        max_batch: int = 64,
        resend_buffer: int = 512,
        reconnect_base: float = 0.01,
        reconnect_cap: float = 0.25,
        on_drop: Optional[Callable[[int], None]] = None,
        on_reconnect: Optional[Callable[[], None]] = None,
        read_limit: int = 2**16,
    ) -> None:
        self.owner = owner
        self.peer = peer
        self.host = host
        self.port = port
        self.codec = codec
        self.max_batch = max(1, max_batch)
        self.resend_buffer = max(1, resend_buffer)
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        self.on_drop = on_drop
        self.on_reconnect = on_reconnect
        self.read_limit = read_limit
        # Jitter is seeded per (owner, peer) so reconnect storms decohere
        # deterministically under a fixed spec seed.
        self._rng = Random((owner << 16) ^ port ^ (peer * 2654435761))

        self._pending: List[Any] = []  # messages not yet sealed
        self._unacked: Dict[int, SessionEnvelope] = {}  # seq -> envelope (ordered)
        self._control: Deque[Any] = deque(maxlen=4)  # raw frames (heartbeats)
        self._next_seq = 1
        self._acked = 0
        self._sent_up_to = 0  # highest seq ever written on any connection
        self._wakeup = asyncio.Event()
        self._stopped = False
        self._broken = False
        self._writer: Optional[asyncio.StreamWriter] = None
        self._task: Optional[asyncio.Task] = None
        self._ack_task: Optional[asyncio.Task] = None

        self.ready = asyncio.Event()  # set after the first successful hello
        self.connected = False
        self.connects = 0  # successful connections (first + reconnects)
        self.reconnects = 0  # successful connections after the first
        self.frames_resent = 0  # envelopes written more than once
        self.messages_dropped = 0  # messages lost to resend-buffer overflow
        self.last_payload_at = 0.0  # loop-time of the last envelope send()

    # -- public API ----------------------------------------------------------
    def start(self) -> None:
        """Spawn the supervising writer task (idempotent)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(self._run())

    def send(self, message: Any) -> None:
        """Queue one protocol message for sequenced, resendable delivery."""
        if self._stopped:
            return
        self._pending.append(message)
        self.last_payload_at = asyncio.get_running_loop().time()
        if len(self._pending) >= self.max_batch:
            self._seal()
        self._wakeup.set()

    def send_control(self, frame: Any) -> None:
        """Queue a control frame (heartbeat): raw, unsequenced, best-effort.

        Dropped on the floor while disconnected — a liveness beacon that
        arrives after reconnect says nothing about the silent interval.
        """
        if self._stopped or not self.connected:
            return
        self._control.append(frame)
        self._wakeup.set()

    @property
    def backlog(self) -> int:
        """Messages currently buffered (pending + unacknowledged)."""
        return len(self._pending) + sum(len(env) for env in self._unacked.values())

    async def wait_ready(self, timeout: float) -> bool:
        """Block until the first connection establishes, or ``timeout``."""
        try:
            await asyncio.wait_for(self.ready.wait(), timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def stop(self) -> None:
        """Stop reconnecting and tear the link down."""
        self._stopped = True
        self._wakeup.set()
        for task in (self._task, self._ack_task):
            if task is not None and not task.done():
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        self._close_writer()
        self._task = None

    # -- internals -----------------------------------------------------------
    def _seal(self) -> None:
        """Move pending messages into sequenced envelopes, enforcing the
        resend-buffer bound (drop-oldest, reported through ``on_drop``)."""
        while self._pending:
            chunk = self._pending[: self.max_batch]
            del self._pending[: self.max_batch]
            self._unacked[self._next_seq] = SessionEnvelope(self._next_seq, tuple(chunk))
            self._next_seq += 1
        while len(self._unacked) > self.resend_buffer:
            oldest = next(iter(self._unacked))
            lost = len(self._unacked.pop(oldest))
            self.messages_dropped += lost
            if self.on_drop is not None:
                self.on_drop(lost)

    def _close_writer(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
            self._writer = None
        self.connected = False

    def _backoff(self, attempt: int) -> float:
        base = min(self.reconnect_cap, self.reconnect_base * (2**attempt))
        return base * (0.5 + self._rng.random())  # jitter in [0.5x, 1.5x)

    async def _run(self) -> None:
        attempt = 0
        while not self._stopped:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port, limit=self.read_limit
                )
            except (ConnectionError, OSError):
                await asyncio.sleep(self._backoff(attempt))
                attempt += 1
                continue
            tune_writer(writer)  # TCP_NODELAY + sized buffers (see net.py)
            self._writer = writer
            self._broken = False
            try:
                writer.write(self.codec.frame(SessionHello(self.owner, self.connects)))
                await writer.drain()
            except (ConnectionError, OSError):
                self._close_writer()
                await asyncio.sleep(self._backoff(attempt))
                attempt += 1
                continue
            if self.connects > 0:
                self.reconnects += 1
                if self.on_reconnect is not None:
                    self.on_reconnect()
            self.connects += 1
            attempt = 0
            self.connected = True
            self.ready.set()
            self._ack_task = asyncio.get_running_loop().create_task(
                self._read_acks(reader)
            )
            try:
                await self._drain_loop(writer)
            except (ConnectionError, OSError):
                pass
            finally:
                if self._ack_task is not None:
                    self._ack_task.cancel()
                    try:
                        await self._ack_task
                    except (asyncio.CancelledError, Exception):
                        pass
                    self._ack_task = None
                self._close_writer()
            if not self._stopped:
                await asyncio.sleep(self._backoff(attempt))
                attempt += 1

    async def _drain_loop(self, writer: asyncio.StreamWriter) -> None:
        """Write control frames and (re)send envelopes until the link breaks.

        ``cursor`` tracks the highest sequence written *on this
        connection*; it starts at the acknowledged floor, so everything
        the peer never acked goes out again after a reconnect.

        Writes coalesce: every ready envelope above the cursor goes into
        the transport buffer back-to-back and the loop drains *once* —
        under a proposal burst the kernel sees one large write instead of
        one syscall-plus-drain round trip per envelope.  Each envelope is
        still its own wire frame (the receiver acks per sequence number),
        and the resend buffer bounds how much one coalesced flush can
        hold.
        """
        cursor = self._acked
        while not self._stopped and not self._broken:
            wrote = False
            while self._control:
                writer.write(self.codec.frame(self._control.popleft()))
                wrote = True
            if self._pending:
                self._seal()
            for seq in [s for s in self._unacked if s > cursor]:
                envelope = self._unacked[seq]
                writer.write(self.codec.frame(envelope))
                if seq <= self._sent_up_to:
                    self.frames_resent += 1
                else:
                    self._sent_up_to = seq
                cursor = seq
                wrote = True
            if wrote:
                await writer.drain()
            else:
                await self._wakeup.wait()
                self._wakeup.clear()

    async def _read_acks(self, reader: asyncio.StreamReader) -> None:
        """Consume cumulative acks written back on this connection."""
        from repro.resilience.messages import SessionAck  # local: avoid cycle noise

        try:
            while True:
                header = await reader.readexactly(_U32_LEN)
                size = int.from_bytes(header, "big")
                body = await reader.readexactly(size)
                message = self.codec.decode(body)
                if isinstance(message, SessionAck) and message.acked > self._acked:
                    self._acked = message.acked
                    for seq in [s for s in self._unacked if s <= self._acked]:
                        del self._unacked[seq]
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            # Waking the writer lets it notice the dead link even if it is
            # idle-parked on the wakeup event.
            self._broken = True
            self._wakeup.set()
