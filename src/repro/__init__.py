"""Reproduction of "Iniva: Inclusive and Incentive-Compatible Vote Aggregation".

Subpackages
-----------
``repro.core``
    The paper's contribution: the Iniva aggregation protocol, its reward
    scheme, the game-theoretic incentive analysis, the QC/reward audit
    path and the Rebop reputation election.
``repro.crypto``
    Indivisible multi-signature substrate (pure-Python BLS and a fast
    hash-based simulation backend) plus a VRF built on either backend.
``repro.tree``
    Deterministic shuffling and two-level aggregation trees.
``repro.membership``
    Dynamic committees: stake registry, stake-weighted selection, VRF
    sortition, epoch schedules and reward-to-stake feedback.
``repro.simnet``
    Discrete-event network simulator (processes, timers, latency models
    and topologies, fault injection, metrics, message tracing).
``repro.consensus``
    Chained HotStuff with Leader-Speak-Once rotation, pluggable vote
    aggregation and round-robin / Carousel / Rebop leader election.
``repro.aggregation``
    Baseline aggregation schemes: star (HotStuff), plain tree
    (Iniva-No2C), Kauri, Gosig and Handel.
``repro.attacks`` / ``repro.analysis``
    Targeted vote-omission attack simulators, the Gosig model, the
    analytic security results (Table I, closed forms) and protocol
    property checkers.
``repro.experiments`` / ``repro.cli``
    The evaluation harness reproducing every figure of the paper, artifact
    export and the ``python -m repro`` command-line interface.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
