"""Reproduction of "Iniva: Inclusive and Incentive-Compatible Vote Aggregation".

The front door is the :mod:`repro.api` facade — one spec-driven entry
point for everything the repository can run::

    from repro import ScenarioSpec, run, sweep

    result = run("partition-heal", quick=True)     # preset, file or spec
    print(result.summary())                        # unified RunResult
    print(result.to_json())                        # stable JSON schema

    runs = sweep("rack-baseline",                  # grid fan-out over
                 {"aggregation": ["star", "iniva"],  # worker processes
                  "faults.crashes": [0, 2, 4]})

``repro.api.figure("fig3c", quick=True)`` reproduces any paper
table/figure, and ``python -m repro`` exposes the same surface on the
command line.

Subpackages
-----------
``repro.api`` / ``repro.results``
    The facade (``run``/``sweep``/``figure``/``deploy``) and the unified
    :class:`RunResult` with its versioned JSON schema.
``repro.scenarios``
    Declarative :class:`ScenarioSpec` (committee, stake, topology,
    churn, faults, attack, workload) plus the compiler/engine and the
    built-in preset catalogue.
``repro.core``
    The paper's contribution: the Iniva aggregation protocol, its reward
    scheme, the game-theoretic incentive analysis, the QC/reward audit
    path and the Rebop reputation election.
``repro.crypto``
    Indivisible multi-signature substrate (pure-Python BLS and a fast
    hash-based simulation backend) plus a VRF built on either backend.
``repro.tree``
    Deterministic shuffling and two-level aggregation trees.
``repro.membership``
    Dynamic committees: stake registry, stake-weighted selection, VRF
    sortition, epoch schedules and reward-to-stake feedback.
``repro.simnet``
    Discrete-event network simulator (processes, timers, latency models
    and topologies, fault injection, metrics, message tracing).
``repro.consensus``
    Chained HotStuff with Leader-Speak-Once rotation, pluggable vote
    aggregation and round-robin / Carousel / Rebop leader election.
``repro.aggregation``
    Baseline aggregation schemes: star (HotStuff), plain tree
    (Iniva-No2C), Kauri, Gosig and Handel.
``repro.attacks`` / ``repro.analysis``
    Targeted vote-omission attack simulators, the Gosig model, the
    analytic security results (Table I, closed forms) and protocol
    property checkers.
``repro.experiments`` / ``repro.cli``
    The low-level deployment runner, the per-figure spec grids and the
    ``python -m repro`` command-line interface.
"""

from typing import TYPE_CHECKING

__version__ = "1.1.0"

# The curated public surface.  Imports resolve lazily (PEP 562) so that
# ``import repro`` stays cheap and the submodules' absolute imports never
# re-enter a partially initialised package.
_EXPORTS = {
    "RunResult": "repro.results",
    "ScenarioSpec": "repro.scenarios.spec",
    "deploy": "repro.api",
    "figure": "repro.api",
    "list_figures": "repro.api",
    "list_presets": "repro.api",
    "load_preset": "repro.scenarios.presets",
    "run": "repro.api",
    "sweep": "repro.api",
}

__all__ = ["__version__", *sorted(_EXPORTS)]

if TYPE_CHECKING:  # pragma: no cover - typing aid only
    from repro.api import (  # noqa: F401
        deploy,
        figure,
        list_figures,
        list_presets,
        run,
        sweep,
    )
    from repro.results import RunResult  # noqa: F401
    from repro.scenarios.presets import load_preset  # noqa: F401
    from repro.scenarios.spec import ScenarioSpec  # noqa: F401


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
