"""Configuration for consensus/aggregation experiment runs."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.simnet.process import CpuCostModel

__all__ = ["ConsensusConfig"]


@dataclass(frozen=True)
class ConsensusConfig:
    """All tunables of a simulated deployment.

    Matches the knobs the paper's evaluation varies: committee size, batch
    size, payload size, aggregation scheme, number of internal tree nodes,
    the aggregation/second-chance timers and the leader-election policy.

    Attributes:
        committee_size: Number of replicas ``n``.
        batch_size: Maximum client requests per block.
        payload_size: Per-request payload in bytes (64 B / 128 B in the
            paper's base evaluation).
        aggregation: One of ``"star"`` (HotStuff), ``"tree"``
            (Iniva-No2C / Kauri-style) or ``"iniva"``.
        num_internal: Number of internal aggregators in the tree; ``None``
            selects the balanced default (≈ sqrt(n)).
        delta: The assumed network delay bound Δ used to derive timers.
        aggregation_timeout: Override for the per-level aggregation timer;
            defaults to ``2 * delta * height`` per the paper's heuristic.
        second_chance_timeout: The δ timer before the collector finalises a
            QC after sending 2ND-CHANCE messages (5 ms / 10 ms in Fig. 4).
        view_timeout: Pacemaker timeout after which a view is abandoned.
        leader_policy: ``"round-robin"`` or ``"carousel"``.
        fault_fraction: The ``f`` used in the quorum rule ``(1 - f) n``.
        signature_scheme: ``"hashsig"`` (additive fast simulation, the
            default for sweeps), ``"hash"`` (dictionary-carrying fast
            simulation) or ``"bls"`` (real pairings, the correctness
            reference).
        seed: Seed for the shuffle/latency randomness.
        cpu_model: CPU cost model for signatures and message handling.
        wait_for_all_votes: If True the star collector waits (up to the
            aggregation timeout) for all votes instead of finalising at
            quorum — used for ablations.
    """

    committee_size: int = 21
    batch_size: int = 100
    payload_size: int = 64
    aggregation: str = "iniva"
    num_internal: Optional[int] = None
    delta: float = 0.0025
    aggregation_timeout: Optional[float] = None
    second_chance_timeout: float = 0.005
    view_timeout: float = 0.25
    leader_policy: str = "round-robin"
    fault_fraction: float = 1 / 3
    signature_scheme: str = "hashsig"
    seed: int = 1
    cpu_model: CpuCostModel = field(default_factory=CpuCostModel)
    wait_for_all_votes: bool = False
    # -- baseline aggregation scheme knobs (Gosig / Handel / Kauri) --------------
    gossip_fanout: int = 2
    gossip_interval: float = 0.002
    gossip_rounds: int = 6
    free_rider_fraction: float = 0.0
    handel_level_delay: float = 0.002
    handel_peers_per_level: int = 2
    kauri_fallback_threshold: int = 3
    # -- resilience knobs (see ResilienceSpec) -----------------------------------
    #: A replica recovering from a crash multicasts a SyncRequest and
    #: catches up from a peer's SyncResponse instead of waiting for the
    #: pacemaker to drag it forward.
    sync_on_recover: bool = True
    #: Most committed blocks one SyncResponse carries (the suffix stays
    #: contiguous from the requester's height; a still-behind requester
    #: simply asks again).
    max_sync_blocks: int = 64
    # -- hot-path pacing/verification knobs (all opt-in; defaults preserve the
    # -- paper-faithful timer-paced behaviour bit for bit) -----------------------
    #: Optimistic responsiveness (HotStuff PODC'19): proposals fire the
    #: moment a replica becomes leader — on QC arrival or view entry — with
    #: the Δ/2Δ propose delays dropped and view advance driven by QC
    #: arrival, so the pacemaker timers become a fallback rather than the
    #: pacer and chained views pipeline back to back.
    optimistic_responsiveness: bool = False
    #: Defer per-share verification at collection points (star collector,
    #: tree internal nodes) and verify the whole pending set with one
    #: batched check (RLC ``verify_batch``: ~2 pairings for k shares under
    #: bls) once enough shares arrived; a failed batch falls back to
    #: per-share verification so invalid shares are still rejected.
    batch_verification: bool = False
    #: Run those (batched) verification checks through the runtime's worker
    #: pool (``Runtime.offload``) instead of inline, so a live event loop
    #: never blocks on pairings.  The sim runtime always verifies inline to
    #: stay deterministic; this knob only changes live-runtime scheduling.
    verification_offload: bool = False
    #: Defer an under-full proposal for up to this many seconds after the
    #: leader first tried to propose the view, waiting for the mempool to
    #: fill a ``batch_size`` batch (an early full batch fires immediately).
    #: 0 proposes whatever is pending at once — the paper-faithful default.
    batch_deadline: float = 0.0

    #: All registered vote aggregation schemes accepted by ``aggregation``.
    SUPPORTED_AGGREGATIONS = frozenset({"star", "tree", "iniva", "gosig", "handel", "kauri"})

    #: All registered multi-signature backends accepted by ``signature_scheme``.
    SUPPORTED_SIGNATURES = frozenset({"hashsig", "hash", "bls"})

    def __post_init__(self) -> None:
        if self.committee_size < 4:
            raise ValueError("need at least four replicas for BFT consensus")
        if self.aggregation not in self.SUPPORTED_AGGREGATIONS:
            raise ValueError(f"unknown aggregation scheme {self.aggregation!r}")
        if self.signature_scheme not in self.SUPPORTED_SIGNATURES:
            raise ValueError(f"unknown signature scheme {self.signature_scheme!r}")
        if self.batch_size <= 0:
            raise ValueError("batch size must be positive")
        if self.payload_size < 0:
            raise ValueError("payload size cannot be negative")
        if self.gossip_fanout < 1:
            raise ValueError("gossip fanout must be at least one peer")
        if not 0.0 <= self.free_rider_fraction <= 1.0:
            raise ValueError("free-rider fraction must be in [0, 1]")
        if self.kauri_fallback_threshold < 1:
            raise ValueError("Kauri fallback threshold must be positive")
        if self.max_sync_blocks < 1:
            raise ValueError("max_sync_blocks must be positive")
        if self.batch_deadline < 0:
            raise ValueError("batch deadline cannot be negative")

    # -- derived quantities ---------------------------------------------------
    @property
    def quorum_size(self) -> int:
        """Distinct signers required for a valid QC: ``floor(2n/3) + 1``."""
        return (2 * self.committee_size) // 3 + 1

    @property
    def max_faulty(self) -> int:
        return self.committee_size - self.quorum_size

    def aggregation_timer(self, height: int) -> float:
        """The paper's heuristic: ``2 * Δ * height(p)`` for a node at ``height``."""
        if self.aggregation_timeout is not None:
            return self.aggregation_timeout * max(height, 1)
        return 2.0 * self.delta * max(height, 1)

    def with_(self, **overrides) -> "ConsensusConfig":
        """Return a copy with ``overrides`` applied (convenience for sweeps)."""
        return replace(self, **overrides)

    def describe(self) -> str:
        return (
            f"{self.aggregation} n={self.committee_size} batch={self.batch_size} "
            f"payload={self.payload_size}B leader={self.leader_policy} "
            f"delta2c={self.second_chance_timeout * 1000:.0f}ms"
        )
