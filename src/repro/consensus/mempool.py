"""Client request model: a shared mempool with latency accounting.

The paper's clients send requests to all replicas and wait for a quorum of
replies; throughput is measured at the replicas and latency at the
clients.  The simulator folds this into a single shared mempool object:
client processes submit timestamped requests, leaders batch them into
blocks, and the first commit of each block records per-request latency.

The live runtime adds **admission control** on top: open-loop clients
keep submitting no matter how far behind the cluster falls, so the pool
bounds its pending queue (``max_pending``) and each client's in-flight
requests (``client_window``), refusing the rest via :meth:`admit` instead
of growing without bound.  Refusals are counted, not silent — the
offered-load sweep plots them as the saturation signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.simnet.metrics import MetricsCollector

__all__ = ["ADMIT_STATES", "Request", "Mempool"]

#: Every verdict :meth:`Mempool.admit` can return.
ADMIT_STATES = ("admitted", "duplicate", "dropped", "deferred")


@dataclass(frozen=True)
class Request:
    """A single client request.

    Attributes:
        request_id: Globally unique identifier.
        submitted_at: Virtual time the client issued the request.
        size_bytes: Payload size in bytes.
        client_id: The issuing client (for per-client statistics).
    """

    request_id: int
    submitted_at: float
    size_bytes: int
    client_id: int = 0


class Mempool:
    """Pending client requests shared by all replicas.

    A real deployment would gossip requests among replicas; since that is
    orthogonal to vote aggregation, the simulation uses one logical pool,
    which is equivalent to every replica having seen every request.
    """

    def __init__(
        self,
        metrics: Optional[MetricsCollector] = None,
        track_reservations: bool = False,
        max_pending: int = 0,
        client_window: int = 0,
    ) -> None:
        self.metrics = metrics or MetricsCollector()
        self._pending: List[Request] = []
        self._in_flight: Dict[str, Tuple[Request, ...]] = {}
        self._requests: Dict[int, Request] = {}
        self._committed: Set[int] = set()
        self._committed_blocks: Set[str] = set()
        #: Block ids in first-commit order (the finalized chain prefix as
        #: this pool observed it) — what the cross-runtime equivalence
        #: tests compare between the sim and live runtimes.
        self.committed_order: List[str] = []
        self._next_id = 0
        # Replicated-pool mode (live runtime): every replica holds its own
        # copy of the client stream, so requests another leader already
        # batched must be *reserved* out of the local pending queue or two
        # leaders would propose overlapping payloads.  The simulator's
        # single shared pool never needs this (the leader's ``next_batch``
        # physically removes the requests), so it defaults off and the
        # shared-pool fast path is untouched.
        self._track_reservations = track_reservations
        self._reserved: Set[int] = set()
        # Admission control (live open-loop path; 0 disables a bound).
        self.max_pending = max_pending
        self.client_window = client_window
        self._client_inflight: Dict[int, int] = {}
        self.admission: Dict[str, int] = {
            "admitted": 0,
            "duplicate": 0,
            "dropped": 0,
            "deferred": 0,
            "peak_pending": 0,
        }
        #: Called with the newly committed requests on each first commit
        #: (the live node hooks client reply routing here).
        self.on_commit: Optional[Callable[[List[Request]], None]] = None
        self._rr_cursor = 0

    # -- client side -----------------------------------------------------------
    def submit(self, time: float, size_bytes: int, client_id: int = 0) -> Request:
        request = Request(
            request_id=self._next_id,
            submitted_at=time,
            size_bytes=size_bytes,
            client_id=client_id,
        )
        self._next_id += 1
        self._pending.append(request)
        self._requests[request.request_id] = request
        return request

    def submit_many(
        self, count: int, time: float, size_bytes: int, num_clients: int = 1
    ) -> int:
        """Bulk :meth:`submit`: ``count`` identical-size requests at ``time``.

        Requests are attributed round-robin to ``num_clients`` logical
        clients, matching what ``count`` sequential :meth:`submit` calls
        would produce — but built in one pass, which matters when a
        preloaded workload pushes 10^5 requests before a run starts.
        The round-robin cursor persists across calls, so two
        ``submit_many`` calls attribute exactly like one call of the
        combined count (it used to restart at client 0 every call,
        skewing per-client stats toward the low client ids).
        Returns the number of submitted requests.
        """
        if count <= 0:
            return 0
        clients = max(num_clients, 1)
        first = self._next_id
        cursor = self._rr_cursor
        batch = [
            Request(
                request_id=first + index,
                submitted_at=time,
                size_bytes=size_bytes,
                client_id=(cursor + index) % clients,
            )
            for index in range(count)
        ]
        self._next_id = first + count
        self._rr_cursor = (cursor + count) % clients
        self._pending.extend(batch)
        for request in batch:
            self._requests[request.request_id] = request
        return count

    def admit(
        self, request_id: int, client_id: int, size_bytes: int, now: float
    ) -> str:
        """Admission-controlled :meth:`submit` for externally-idded requests.

        The live open-loop path: the client computes ``request_id`` itself
        (so every replica that admits the broadcast copy agrees on it) and
        the pool decides one of :data:`ADMIT_STATES`:

        * ``admitted`` — enqueued; counts against the client's window.
        * ``duplicate`` — already known (possibly committed); not requeued.
        * ``deferred`` — the client already has ``client_window`` requests
          in flight; backpressure, the client should slow down.
        * ``dropped`` — the pending queue is at ``max_pending``; overload.
        """
        if request_id in self._requests:
            self.admission["duplicate"] += 1
            return "duplicate"
        if (
            self.client_window > 0
            and self._client_inflight.get(client_id, 0) >= self.client_window
        ):
            self.admission["deferred"] += 1
            return "deferred"
        if self.max_pending > 0 and len(self._pending) >= self.max_pending:
            self.admission["dropped"] += 1
            return "dropped"
        request = Request(
            request_id=request_id,
            submitted_at=now,
            size_bytes=size_bytes,
            client_id=client_id,
        )
        self._pending.append(request)
        self._requests[request_id] = request
        self._client_inflight[client_id] = self._client_inflight.get(client_id, 0) + 1
        self.admission["admitted"] += 1
        if len(self._pending) > self.admission["peak_pending"]:
            self.admission["peak_pending"] = len(self._pending)
        return "admitted"

    def admission_summary(self) -> Dict[str, int]:
        """JSON-safe admission counters plus the current queue depth."""
        summary = dict(self.admission)
        summary["pending"] = len(self._pending)
        return summary

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def submitted_count(self) -> int:
        return self._next_id

    @property
    def committed_count(self) -> int:
        return len(self._committed)

    def is_committed(self, request_id: int) -> bool:
        """Whether ``request_id`` already reached a first commit.

        Used by the live node to answer duplicate client retries
        immediately: a re-sent request whose original already committed
        gets its reply on the spot instead of silence.
        """
        return request_id in self._committed

    # -- leader side --------------------------------------------------------------
    def next_batch(self, max_size: int) -> Tuple[Request, ...]:
        """Remove and return up to ``max_size`` pending requests."""
        if not self._track_reservations:
            batch = tuple(self._pending[:max_size])
            del self._pending[: len(batch)]
            return batch
        batch: List[Request] = []
        taken = 0
        for taken, request in enumerate(self._pending, start=1):
            if request.request_id in self._reserved or request.request_id in self._committed:
                continue
            batch.append(request)
            if len(batch) >= max_size:
                break
        else:
            taken = len(self._pending)
        del self._pending[:taken]
        return tuple(batch)

    def observe_proposal(self, block_id: str, payload: Tuple[int, ...]) -> None:
        """Note that a (possibly remote) leader batched ``payload``.

        In replicated-pool mode the payload's request ids are reserved so
        this replica's own ``next_batch`` skips them; in shared-pool mode
        (the simulator) this is a no-op.
        """
        if not self._track_reservations:
            return
        self._reserved.update(payload)

    def track_block(self, block_id: str, batch: Tuple[Request, ...]) -> None:
        """Remember which requests a proposed block carries."""
        self._in_flight[block_id] = batch

    def requeue_block(self, block_id: str) -> None:
        """Return a failed block's requests to the pending queue."""
        batch = self._in_flight.pop(block_id, ())
        uncommitted = [r for r in batch if r.request_id not in self._committed]
        self._reserved.difference_update(r.request_id for r in uncommitted)
        self._pending = uncommitted + self._pending

    # -- commit notifications --------------------------------------------------------
    def mark_committed(self, block_id: str, payload: Tuple[int, ...], time: float) -> bool:
        """Record the first commit of ``block_id``.

        Returns True if this call was the first commit (latency and
        throughput are recorded exactly once per block).
        """
        if block_id in self._committed_blocks:
            return False
        self._committed_blocks.add(block_id)
        self.committed_order.append(block_id)
        batch = self._in_flight.pop(block_id, None)
        if batch is None:
            batch = tuple(
                self._requests[rid] for rid in payload if rid in self._requests
            )
        committed = self._committed
        newly_committed = [r for r in batch if r.request_id not in committed]
        committed.update(r.request_id for r in newly_committed)
        if self._client_inflight:
            inflight = self._client_inflight
            for request in newly_committed:
                held = inflight.get(request.client_id, 0)
                if held > 1:
                    inflight[request.client_id] = held - 1
                elif held:
                    del inflight[request.client_id]
        self.metrics.record_latencies(time, (time - r.submitted_at for r in newly_committed))
        self.metrics.record_commit(time, len(newly_committed))
        if self.on_commit is not None and newly_committed:
            self.on_commit(newly_committed)
        return True
