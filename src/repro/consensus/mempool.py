"""Client request model: a shared mempool with latency accounting.

The paper's clients send requests to all replicas and wait for a quorum of
replies; throughput is measured at the replicas and latency at the
clients.  The simulator folds this into a single shared mempool object:
client processes submit timestamped requests, leaders batch them into
blocks, and the first commit of each block records per-request latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.simnet.metrics import MetricsCollector

__all__ = ["Request", "Mempool"]


@dataclass(frozen=True)
class Request:
    """A single client request.

    Attributes:
        request_id: Globally unique identifier.
        submitted_at: Virtual time the client issued the request.
        size_bytes: Payload size in bytes.
        client_id: The issuing client (for per-client statistics).
    """

    request_id: int
    submitted_at: float
    size_bytes: int
    client_id: int = 0


class Mempool:
    """Pending client requests shared by all replicas.

    A real deployment would gossip requests among replicas; since that is
    orthogonal to vote aggregation, the simulation uses one logical pool,
    which is equivalent to every replica having seen every request.
    """

    def __init__(
        self,
        metrics: Optional[MetricsCollector] = None,
        track_reservations: bool = False,
    ) -> None:
        self.metrics = metrics or MetricsCollector()
        self._pending: List[Request] = []
        self._in_flight: Dict[str, Tuple[Request, ...]] = {}
        self._requests: Dict[int, Request] = {}
        self._committed: Set[int] = set()
        self._committed_blocks: Set[str] = set()
        #: Block ids in first-commit order (the finalized chain prefix as
        #: this pool observed it) — what the cross-runtime equivalence
        #: tests compare between the sim and live runtimes.
        self.committed_order: List[str] = []
        self._next_id = 0
        # Replicated-pool mode (live runtime): every replica holds its own
        # copy of the client stream, so requests another leader already
        # batched must be *reserved* out of the local pending queue or two
        # leaders would propose overlapping payloads.  The simulator's
        # single shared pool never needs this (the leader's ``next_batch``
        # physically removes the requests), so it defaults off and the
        # shared-pool fast path is untouched.
        self._track_reservations = track_reservations
        self._reserved: Set[int] = set()

    # -- client side -----------------------------------------------------------
    def submit(self, time: float, size_bytes: int, client_id: int = 0) -> Request:
        request = Request(
            request_id=self._next_id,
            submitted_at=time,
            size_bytes=size_bytes,
            client_id=client_id,
        )
        self._next_id += 1
        self._pending.append(request)
        self._requests[request.request_id] = request
        return request

    def submit_many(
        self, count: int, time: float, size_bytes: int, num_clients: int = 1
    ) -> int:
        """Bulk :meth:`submit`: ``count`` identical-size requests at ``time``.

        Requests are attributed round-robin to ``num_clients`` logical
        clients, matching what ``count`` sequential :meth:`submit` calls
        would produce — but built in one pass, which matters when a
        preloaded workload pushes 10^5 requests before a run starts.
        Returns the number of submitted requests.
        """
        if count <= 0:
            return 0
        clients = max(num_clients, 1)
        first = self._next_id
        batch = [
            Request(
                request_id=first + index,
                submitted_at=time,
                size_bytes=size_bytes,
                client_id=index % clients,
            )
            for index in range(count)
        ]
        self._next_id = first + count
        self._pending.extend(batch)
        for request in batch:
            self._requests[request.request_id] = request
        return count

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def submitted_count(self) -> int:
        return self._next_id

    @property
    def committed_count(self) -> int:
        return len(self._committed)

    # -- leader side --------------------------------------------------------------
    def next_batch(self, max_size: int) -> Tuple[Request, ...]:
        """Remove and return up to ``max_size`` pending requests."""
        if not self._track_reservations:
            batch = tuple(self._pending[:max_size])
            del self._pending[: len(batch)]
            return batch
        batch: List[Request] = []
        taken = 0
        for taken, request in enumerate(self._pending, start=1):
            if request.request_id in self._reserved or request.request_id in self._committed:
                continue
            batch.append(request)
            if len(batch) >= max_size:
                break
        else:
            taken = len(self._pending)
        del self._pending[:taken]
        return tuple(batch)

    def observe_proposal(self, block_id: str, payload: Tuple[int, ...]) -> None:
        """Note that a (possibly remote) leader batched ``payload``.

        In replicated-pool mode the payload's request ids are reserved so
        this replica's own ``next_batch`` skips them; in shared-pool mode
        (the simulator) this is a no-op.
        """
        if not self._track_reservations:
            return
        self._reserved.update(payload)

    def track_block(self, block_id: str, batch: Tuple[Request, ...]) -> None:
        """Remember which requests a proposed block carries."""
        self._in_flight[block_id] = batch

    def requeue_block(self, block_id: str) -> None:
        """Return a failed block's requests to the pending queue."""
        batch = self._in_flight.pop(block_id, ())
        uncommitted = [r for r in batch if r.request_id not in self._committed]
        self._reserved.difference_update(r.request_id for r in uncommitted)
        self._pending = uncommitted + self._pending

    # -- commit notifications --------------------------------------------------------
    def mark_committed(self, block_id: str, payload: Tuple[int, ...], time: float) -> bool:
        """Record the first commit of ``block_id``.

        Returns True if this call was the first commit (latency and
        throughput are recorded exactly once per block).
        """
        if block_id in self._committed_blocks:
            return False
        self._committed_blocks.add(block_id)
        self.committed_order.append(block_id)
        batch = self._in_flight.pop(block_id, None)
        if batch is None:
            batch = tuple(
                self._requests[rid] for rid in payload if rid in self._requests
            )
        committed = self._committed
        newly_committed = [r for r in batch if r.request_id not in committed]
        committed.update(r.request_id for r in newly_committed)
        self.metrics.record_latencies(time, (time - r.submitted_at for r in newly_committed))
        self.metrics.record_commit(time, len(newly_committed))
        return True
