"""The chained HotStuff replica integrated with pluggable vote aggregation.

The replica implements the consensus state machine the paper integrates
Iniva into: chained HotStuff driven in synchronous rounds with
Leader-Speak-Once rotation.  A new block is only proposed after the votes
for the previous block have been aggregated, so any latency added by the
aggregation scheme directly shows up in throughput — which is exactly how
the paper evaluates Iniva's overhead.

Responsibilities are split as follows:

* the replica owns the consensus rules (voting safety, the three-chain
  commit rule, the pacemaker and leader election) and the chain state;
* the attached :class:`~repro.aggregation.base.Aggregator` owns block
  dissemination and vote collection; it calls back into
  :meth:`HotStuffReplica.process_proposal` (deliver + vote) and
  :meth:`HotStuffReplica.complete_aggregation` (QC formation at the
  collector).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, TYPE_CHECKING

from repro.aggregation.messages import NewViewMessage
from repro.consensus.block import Block, GENESIS_ID, QuorumCertificate, genesis_block, genesis_qc
from repro.consensus.config import ConsensusConfig
from repro.consensus.leader import LeaderElection, RoundRobinElection
from repro.consensus.mempool import Mempool
from repro.crypto.keys import Committee
from repro.crypto.multisig import AggregateSignature, SignatureShare
from repro.resilience.messages import SyncRequest, SyncResponse
from repro.simnet.metrics import MetricsCollector
from repro.simnet.process import Process, Timer
from repro.tree.overlay import AggregationTree

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Runtime
    from repro.simnet.events import Simulator
    from repro.simnet.network import Network

__all__ = ["HotStuffReplica"]


class HotStuffReplica(Process):
    """One committee member running chained HotStuff with vote aggregation.

    The replica is sans-I/O: besides the committee/config/mempool wiring it
    only uses the :class:`~repro.runtime.base.Runtime` verbs inherited from
    :class:`Process`, so it runs identically under the simulator and the
    live asyncio cluster.  Pass either ``runtime=...`` or the classic
    ``(simulator, network)`` pair.
    """

    def __init__(
        self,
        process_id: int,
        simulator: "Optional[Simulator]" = None,
        network: "Optional[Network]" = None,
        committee: Optional[Committee] = None,
        config: Optional[ConsensusConfig] = None,
        mempool: Optional[Mempool] = None,
        election: Optional[LeaderElection] = None,
        metrics: Optional[MetricsCollector] = None,
        runtime: "Optional[Runtime]" = None,
    ) -> None:
        if committee is None or config is None or mempool is None:
            raise TypeError("HotStuffReplica requires committee, config and mempool")
        super().__init__(
            process_id, simulator, network, cpu_model=config.cpu_model, runtime=runtime
        )
        self.committee = committee
        self.config = config
        self.mempool = mempool
        self.election = election or RoundRobinElection(config.committee_size)
        self.metrics = metrics or mempool.metrics

        genesis = genesis_block()
        self.blocks: Dict[str, Block] = {GENESIS_ID: genesis}
        self.highest_qc: QuorumCertificate = genesis_qc()
        self.current_view = 1
        self.last_voted_view = 0
        self.locked_view = 0
        self.committed_height = 0
        self.committed_blocks: set[str] = set()
        self._votes: Dict[str, SignatureShare] = {}
        self._proposed_views: set[int] = set()
        self._propose_scheduled: set[int] = set()
        # First time propose() ran for a view, per view — the anchor the
        # batch_deadline deferral measures its waiting window from.
        self._propose_first_try: Dict[int, float] = {}
        self._view_timer: Optional[Timer] = None
        # Catch-up bookkeeping (the state-transfer half of the resilience
        # layer; see repro.resilience.messages).
        self.catchup_blocks = 0
        self.sync_requests_sent = 0
        self.sync_requests_served = 0
        self.first_commit_after_recovery: Optional[float] = None

        # Imported lazily to avoid a circular import: the aggregation schemes
        # depend on consensus.block, while this module needs their registry.
        from repro.aggregation.base import make_aggregator

        self.aggregator = make_aggregator(config.aggregation, self)

    def _trace(self, etype: str, **fields: Any) -> None:
        """Emit a consensus trace event when a tracer is attached.

        The traced-off cost is one attribute load and an ``is None``
        check; all emission sites below are per-view or per-block, never
        per-message, so milestone events are always recorded (sampling
        only thins the per-share stream in the aggregators).
        """
        tracer = self.metrics.tracer
        if tracer is not None:
            tracer.emit(etype, self.process_id, self.now, **fields)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Start-up and pacemaker
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the pacemaker and, if this replica leads view 1, propose."""
        self._reset_view_timer()
        if self.leader_of(self.current_view) == self.process_id:
            self._schedule_propose(self.current_view, delay=self._propose_delay(1))

    def recover(self) -> None:
        """Restart after a crash-stop: re-arm the pacemaker and catch up.

        The chain state survived the crash (restart-from-storage model);
        what was lost is every message sent while down.  Re-arming the
        view timer lets the pacemaker resynchronise eventually; with
        ``sync_on_recover`` the replica additionally asks its peers for
        the committed-block suffix it missed (see :meth:`request_sync`),
        so it rejoins at the chain head instead of waiting to be dragged
        forward view by view.
        """
        if not self.crashed:
            return
        super().recover()
        self.first_commit_after_recovery = None
        self._reset_view_timer()
        if self.config.sync_on_recover:
            self.request_sync()

    def leader_of(self, view: int) -> int:
        return self.election.leader(view, self.highest_qc)

    def collector_for(self, block: Block) -> int:
        """The next leader, who collects the votes for ``block`` (LSO model)."""
        return self.election.leader(block.view + 1, block.qc)

    def _reset_view_timer(self) -> None:
        if self._view_timer is not None:
            self._view_timer.cancel()
        view_at_arm = self.current_view
        self._view_timer = self.set_timer(self.config.view_timeout, self._on_view_timeout, view_at_arm)

    def _on_view_timeout(self, view: int) -> None:
        if self.crashed or view != self.current_view:
            return
        # The view made no progress: advance and tell the next leader.
        self.current_view += 1
        self._reset_view_timer()
        self._trace("view_enter", view=self.current_view, reason="timeout")
        next_leader = self.leader_of(self.current_view)
        message = NewViewMessage(view=self.current_view, highest_qc=self.highest_qc)
        if next_leader == self.process_id:
            self._schedule_propose(self.current_view, delay=self._propose_delay(2))
        else:
            self.send(next_leader, message, size_bytes=message.size_bytes)

    def _propose_delay(self, deltas: int) -> float:
        """Grace delay before a scheduled proposal fires.

        The paper-faithful pacing waits ``deltas * Δ`` (one Δ at start-up,
        two after a view change) so slower replicas enter the view first.
        Under ``optimistic_responsiveness`` proposals fire immediately:
        view entry is QC-driven, so there is nothing to wait out and the
        timers degrade to a fallback.
        """
        if self.config.optimistic_responsiveness:
            return 0.0
        return deltas * self.config.delta

    def _schedule_propose(self, view: int, delay: float) -> None:
        if view in self._propose_scheduled:
            return
        self._propose_scheduled.add(view)
        self.set_timer(delay, self.propose, view)

    # ------------------------------------------------------------------
    # Message dispatch
    # ------------------------------------------------------------------
    def on_message(self, sender: int, message: Any) -> None:
        self.consume_cpu(self.config.cpu_model.message_overhead)
        if self.aggregator.handle(sender, message):
            return
        if isinstance(message, NewViewMessage):
            self._on_new_view(sender, message)
        elif isinstance(message, SyncRequest):
            self._on_sync_request(sender, message)
        elif isinstance(message, SyncResponse):
            self._on_sync_response(sender, message)

    def _on_new_view(self, sender: int, message: NewViewMessage) -> None:
        self._update_highest_qc(message.highest_qc)
        if message.view > self.current_view:
            self.current_view = message.view
            self._reset_view_timer()
            self._trace("view_enter", view=self.current_view, reason="new_view")
        if (
            message.view == self.current_view
            and self.leader_of(self.current_view) == self.process_id
            and self.current_view not in self._proposed_views
        ):
            self._schedule_propose(self.current_view, delay=self._propose_delay(2))

    # ------------------------------------------------------------------
    # State-transfer catch-up (crash-restart rejoin)
    # ------------------------------------------------------------------
    def request_sync(self) -> None:
        """Ask every peer for the committed suffix above our height.

        Multicast rather than targeted: whichever live peer answers first
        wins, and duplicate responses are idempotent (committed blocks
        are deduplicated by id, QC/view updates are monotonic).
        """
        message = SyncRequest(sender=self.process_id, from_height=self.committed_height)
        peers = [p for p in range(self.config.committee_size) if p != self.process_id]
        self.sync_requests_sent += 1
        self._trace("sync", kind="request", from_height=self.committed_height)
        self.multicast(peers, message, size_bytes=message.size_bytes)

    def committed_suffix(self, from_height: int) -> list[Block]:
        """Committed blocks above ``from_height``, oldest first, capped at
        ``max_sync_blocks`` — keeping the suffix contiguous from the
        requester's height so it can apply every block it receives."""
        suffix = sorted(
            (
                block
                for block in self.blocks.values()
                if block.block_id in self.committed_blocks
                and block.height > from_height
            ),
            key=lambda block: block.height,
        )
        return suffix[: self.config.max_sync_blocks]

    def _on_sync_request(self, sender: int, message: SyncRequest) -> None:
        if sender == self.process_id:
            return
        blocks = self.committed_suffix(message.from_height)
        self.sync_requests_served += 1
        response = SyncResponse(
            sender=self.process_id,
            view=self.current_view,
            highest_qc=self.highest_qc,
            blocks=tuple(blocks),
        )
        # Always answer — even an empty suffix carries the responder's
        # view and highest QC, which re-seats the requester's pacemaker.
        self.consume_cpu(self.config.cpu_model.per_byte * response.size_bytes)
        self.send(sender, response, size_bytes=response.size_bytes)

    def _on_sync_response(self, sender: int, message: SyncResponse) -> None:
        self._trace("sync", kind="response", src=sender, blocks=len(message.blocks))
        for block in message.blocks:
            self.blocks.setdefault(block.block_id, block)
            if block.block_id in self.committed_blocks:
                continue
            self.committed_blocks.add(block.block_id)
            self.committed_height = max(self.committed_height, block.height)
            self.mempool.mark_committed(block.block_id, block.payload, self.now)
            self.catchup_blocks += 1
        self._update_highest_qc(message.highest_qc)
        if message.view > self.current_view:
            self.current_view = message.view
            self._reset_view_timer()

    # ------------------------------------------------------------------
    # Proposing
    # ------------------------------------------------------------------
    def propose(self, view: int) -> None:
        """Create and disseminate a block for ``view`` (leader only)."""
        if self.crashed or view != self.current_view or view in self._proposed_views:
            return
        parent = self.blocks.get(self.highest_qc.block_id)
        if parent is None:
            return
        if self._defer_for_batch(view):
            return
        batch = self.mempool.next_batch(self.config.batch_size)
        payload = tuple(request.request_id for request in batch)
        payload_bytes = sum(request.size_bytes for request in batch)
        block = Block(
            height=parent.height + 1,
            view=view,
            proposer=self.process_id,
            parent_id=parent.block_id,
            qc=self.highest_qc,
            payload=payload,
            payload_bytes=payload_bytes,
            timestamp=self.now,
        )
        self._proposed_views.add(view)
        self._propose_first_try.pop(view, None)
        self.blocks[block.block_id] = block
        self._trace(
            "propose",
            view=view,
            block=block.block_id[:12],
            height=block.height,
            txs=len(payload),
        )
        self.mempool.track_block(block.block_id, batch)
        self.consume_cpu(self.config.cpu_model.proposal_cost(payload_bytes))
        self.aggregator.disseminate(block)

    def _defer_for_batch(self, view: int) -> bool:
        """Hold an under-full proposal back, up to ``batch_deadline``.

        Proposal batching by size *or* deadline: the first propose() of a
        view with fewer than ``batch_size`` requests pending re-arms itself
        for the remaining deadline instead of shipping a small block;
        :meth:`maybe_propose_full_batch` fires it early the moment the pool
        fills.  Returns True when the proposal was deferred.
        """
        deadline = self.config.batch_deadline
        if deadline <= 0 or self.mempool.pending_count >= self.config.batch_size:
            self._propose_first_try.pop(view, None)
            return False
        first = self._propose_first_try.setdefault(view, self.now)
        remaining = deadline - (self.now - first)
        if remaining <= 0:
            self._propose_first_try.pop(view, None)
            return False
        self.set_timer(remaining, self.propose, view)
        return True

    def maybe_propose_full_batch(self) -> None:
        """Fire a deadline-deferred proposal early: the batch just filled.

        Called by the live node's admission path after enqueueing a client
        request.  A no-op unless this replica leads the current view, a
        proposal was scheduled and is still waiting on the deadline, and
        the pool now holds a full batch.
        """
        view = self.current_view
        if (
            self.config.batch_deadline <= 0
            or self.crashed
            or view in self._proposed_views
            or view not in self._propose_scheduled
            or self.mempool.pending_count < self.config.batch_size
            or self.leader_of(view) != self.process_id
        ):
            return
        self.propose(view)

    # ------------------------------------------------------------------
    # Deliver + vote (the aggregation scheme's upcall into consensus)
    # ------------------------------------------------------------------
    def process_proposal(self, block: Block) -> Optional[SignatureShare]:
        """Validate ``block`` and return this replica's vote (or ``None``).

        Implements the paper's ``deliver``/``vote`` upcall: the block's QC
        is verified, the HotStuff voting rules are applied, the local chain
        state is updated, and — at most once per block — a signature share
        is produced.
        """
        if self.crashed:
            return None
        block_id = block.block_id
        if block_id in self._votes:
            return self._votes[block_id]
        if not self._verify_block_qc(block):
            return None
        if block.view <= self.last_voted_view or block.qc.view < self.locked_view:
            return None

        self.blocks[block_id] = block
        # Replicated-pool runtimes reserve the batched requests out of the
        # local pending queue; a no-op for the simulator's shared pool.
        self.mempool.observe_proposal(block_id, block.payload)
        self._update_highest_qc(block.qc)
        self.last_voted_view = block.view
        if block.view > self.current_view:
            self.current_view = block.view
        self._reset_view_timer()

        self.consume_cpu(self.config.cpu_model.proposal_cost(block.payload_bytes))
        self.consume_cpu(self.config.cpu_model.sign)
        share = self.committee.sign(self.process_id, block.signing_payload())
        self._votes[block_id] = share
        return share

    def _verify_block_qc(self, block: Block) -> bool:
        qc = block.qc
        if qc.is_genesis:
            return block.parent_id == GENESIS_ID or block.parent_id == qc.block_id
        if qc.block_id != block.parent_id:
            return False
        if len(qc.signers) < self.config.quorum_size:
            return False
        self.consume_cpu(self.config.cpu_model.aggregate_verify_cost(len(qc.signers)))
        return self.committee.verify_aggregate(qc.aggregate, qc.signing_payload())

    # ------------------------------------------------------------------
    # QC handling, commit rule
    # ------------------------------------------------------------------
    def _update_highest_qc(self, qc: QuorumCertificate) -> None:
        if qc.view > self.highest_qc.view or self.highest_qc.is_genesis and not qc.is_genesis:
            self.highest_qc = qc
            self.election.observe_qc(qc)
            if self.config.optimistic_responsiveness and not qc.is_genesis:
                self._advance_on_qc(qc)
        self._try_commit(qc)

    def _advance_on_qc(self, qc: QuorumCertificate) -> None:
        """Optimistic responsiveness: pace the view on QC arrival.

        Seeing a QC for view ``v`` proves a quorum finished ``v`` — there
        is nothing left to wait out, so enter ``v + 1`` now instead of
        when the view timer (or the next proposal) says so, and if this
        replica leads ``v + 1`` propose immediately.  This is what
        pipelines chained views: the next proposal goes out while the
        previous block's aggregate is still propagating to the slower
        replicas, and the pacemaker timers only matter when a view
        actually stalls.
        """
        next_view = qc.view + 1
        if next_view > self.current_view:
            self.current_view = next_view
            self._reset_view_timer()
            self._trace("view_enter", view=next_view, reason="qc")
        if (
            next_view == self.current_view
            and self.leader_of(next_view) == self.process_id
            and next_view not in self._proposed_views
        ):
            self._schedule_propose(next_view, delay=0.0)

    def _try_commit(self, qc: QuorumCertificate) -> None:
        """The chained HotStuff two-chain lock / three-chain commit rule."""
        certified = self.blocks.get(qc.block_id)
        if certified is None or certified.is_genesis:
            return
        parent = self.blocks.get(certified.qc.block_id)
        if parent is None or parent.is_genesis:
            return
        if certified.view == parent.view + 1:
            self.locked_view = max(self.locked_view, parent.view)
        grandparent = self.blocks.get(parent.qc.block_id)
        if grandparent is None or grandparent.is_genesis:
            return
        if certified.view == parent.view + 1 and parent.view == grandparent.view + 1:
            self._commit_chain(grandparent)

    def _commit_chain(self, block: Block) -> None:
        """Commit ``block`` and all its uncommitted ancestors, oldest first."""
        chain = []
        cursor: Optional[Block] = block
        while cursor is not None and not cursor.is_genesis and cursor.block_id not in self.committed_blocks:
            chain.append(cursor)
            cursor = self.blocks.get(cursor.parent_id)
        for ancestor in reversed(chain):
            self.committed_blocks.add(ancestor.block_id)
            self.committed_height = max(self.committed_height, ancestor.height)
            self.mempool.mark_committed(ancestor.block_id, ancestor.payload, self.now)
            self._trace(
                "commit",
                view=ancestor.view,
                block=ancestor.block_id[:12],
                height=ancestor.height,
            )
        # Time-to-rejoin instrumentation: the first commit reached through
        # the *protocol* path after a recovery (catch-up applies in
        # _on_sync_response and deliberately does not count).
        if chain and self.recovered_at is not None and self.first_commit_after_recovery is None:
            self.first_commit_after_recovery = self.now

    # ------------------------------------------------------------------
    # Aggregation completion (the paper's ``aggregate`` upcall)
    # ------------------------------------------------------------------
    def complete_aggregation(self, block: Block, aggregate: AggregateSignature) -> None:
        """Form the QC for ``block`` at the collector and continue the chain."""
        if self.crashed:
            return
        qc = QuorumCertificate(
            block_id=block.block_id,
            view=block.view,
            height=block.height,
            aggregate=aggregate,
            collector=self.process_id,
        )
        self.metrics.record_qc_size(qc.size)
        self.metrics.record_view(block.view, True)
        self._trace(
            "qc_formed",
            view=block.view,
            block=block.block_id[:12],
            signers=qc.size,
        )
        self.blocks.setdefault(block.block_id, block)
        self._update_highest_qc(qc)
        next_view = block.view + 1
        if next_view >= self.current_view:
            self.current_view = next_view
            self._reset_view_timer()
            self._trace("view_enter", view=next_view, reason="aggregate")
            self.propose(next_view)

    # ------------------------------------------------------------------
    # Helpers used by the aggregation schemes
    # ------------------------------------------------------------------
    def known_block(self, block_id: str) -> Optional[Block]:
        return self.blocks.get(block_id)

    def build_tree(self, block: Block) -> AggregationTree:
        """The deterministic aggregation tree for ``block``'s view."""
        return AggregationTree.build(
            committee_size=self.config.committee_size,
            view=block.view,
            seed=self.config.seed,
            num_internal=self.config.num_internal,
            root=self.collector_for(block),
            context=block.qc.digest(),
        )
