"""Leader-election policies.

The experiments use round-robin rotation (the HotStuff default) and the
reputation-based Carousel policy, which inspects the signers of recent
quorum certificates to avoid electing crashed processes as leaders.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.consensus.block import QuorumCertificate

__all__ = ["LeaderElection", "RoundRobinElection", "CarouselElection"]


class LeaderElection(ABC):
    """Deterministic mapping from views to leaders.

    Implementations must be pure functions of public chain state so every
    correct process derives the same leader for a view.
    """

    def __init__(self, committee_size: int) -> None:
        if committee_size <= 0:
            raise ValueError("committee size must be positive")
        self.committee_size = committee_size

    @abstractmethod
    def leader(self, view: int, latest_qc: Optional[QuorumCertificate] = None) -> int:
        """Return the leader of ``view`` given the highest known QC."""

    def observe_qc(self, qc: QuorumCertificate) -> None:
        """Feed a newly learned QC to the policy (used by Carousel)."""


class RoundRobinElection(LeaderElection):
    """``leader(view) = view mod n`` — the paper's default policy."""

    def leader(self, view: int, latest_qc: Optional[QuorumCertificate] = None) -> int:
        return view % self.committee_size


class CarouselElection(LeaderElection):
    """Reputation-based leader rotation (Cohen et al., "Be aware of your leaders").

    The leader of a view is drawn from the *active* set — processes whose
    votes appear in recent quorum certificates — while excluding the most
    recent leaders to preserve chain quality.  Crashed processes stop
    appearing in QCs and therefore stop being elected, which is exactly the
    behaviour the paper's resiliency experiment exploits.
    """

    def __init__(self, committee_size: int, exclude_collector: bool = True) -> None:
        super().__init__(committee_size)
        self.exclude_collector = exclude_collector

    def leader(self, view: int, latest_qc: Optional[QuorumCertificate] = None) -> int:
        if latest_qc is None or latest_qc.is_genesis or not latest_qc.signers:
            # No reputation information yet: fall back to round-robin.
            return view % self.committee_size
        candidates = sorted(latest_qc.signers)
        if (
            self.exclude_collector
            and latest_qc.collector in candidates
            and len(candidates) > 1
        ):
            # Exclude the previous collector to preserve chain quality.
            candidates = [pid for pid in candidates if pid != latest_qc.collector]
        return candidates[view % len(candidates)]


def make_leader_election(policy: str, committee_size: int) -> LeaderElection:
    """Factory used by the experiment configuration.

    ``"round-robin"``, ``"carousel"`` and ``"rebop"`` (reputation-based,
    see :mod:`repro.core.reputation`) are supported.
    """
    if policy == "round-robin":
        return RoundRobinElection(committee_size)
    if policy == "carousel":
        return CarouselElection(committee_size)
    if policy == "rebop":
        # Imported lazily: repro.core.reputation depends on this module.
        from repro.core.reputation import RebopElection

        return RebopElection(committee_size)
    raise ValueError(f"unknown leader election policy: {policy!r}")
