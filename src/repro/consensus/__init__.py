"""Chained HotStuff consensus substrate.

The paper integrates Iniva into a HotStuff implementation and drives it in
synchronous rounds: a new block is only proposed after the votes for the
previous block have been aggregated, and leaders speak once (LSO) — the
leader changes every view and the *next* leader collects the votes for the
current block.

This package provides the blocks/quorum certificates, leader-election
policies (round-robin and Carousel), the replica state machine, the shared
mempool/client model and the configuration objects used by the experiment
harness in :mod:`repro.experiments`.
"""

from repro.consensus.block import Block, QuorumCertificate, genesis_block, genesis_qc
from repro.consensus.config import ConsensusConfig
from repro.consensus.leader import CarouselElection, LeaderElection, RoundRobinElection
from repro.consensus.mempool import Mempool, Request
from repro.consensus.replica import HotStuffReplica

__all__ = [
    "Block",
    "CarouselElection",
    "ConsensusConfig",
    "HotStuffReplica",
    "LeaderElection",
    "Mempool",
    "QuorumCertificate",
    "Request",
    "RoundRobinElection",
    "genesis_block",
    "genesis_qc",
]
