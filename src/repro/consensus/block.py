"""Blocks and quorum certificates.

A block extends the chain at a given height, carries the quorum
certificate (QC) of its parent and a batch of client requests.  The QC is
an aggregate signature over the parent block together with the signer
multiplicities; Iniva's reward scheme is computed purely from that
metadata, so the QC object is shared by every aggregation scheme.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Tuple

from repro.crypto.multisig import AggregateSignature

__all__ = ["Block", "QuorumCertificate", "genesis_block", "genesis_qc", "GENESIS_ID"]

GENESIS_ID = "genesis"


@dataclass(frozen=True)
class QuorumCertificate:
    """A certificate that a quorum voted for ``block_id`` in ``view``.

    Attributes:
        block_id: The certified block.
        view: The view in which the certified block was proposed.
        height: The certified block's height.
        aggregate: The aggregated vote signature (with multiplicities).
        collector: The process that assembled the certificate (the next
            leader in the LSO model); used by the reward scheme.
    """

    block_id: str
    view: int
    height: int
    aggregate: AggregateSignature
    collector: Optional[int] = None

    @property
    def signers(self) -> frozenset[int]:
        return self.aggregate.signers

    @property
    def size(self) -> int:
        """The number of distinct included signers (the paper's 'QC size')."""
        return len(self.aggregate.signers)

    @cached_property
    def _digest(self) -> bytes:
        material = f"{self.block_id}|{self.view}|{self.height}|{sorted(self.aggregate.multiplicities.items())}"
        return hashlib.sha256(material.encode()).digest()

    def digest(self) -> bytes:
        """A canonical digest used to seed the next view's tree shuffle."""
        return self._digest

    def signing_payload(self) -> bytes:
        """The message the certified block's voters signed (reconstructable
        from the certificate alone, which is what validators verify)."""
        return f"vote|{self.block_id}|{self.view}|{self.height}".encode()

    @property
    def is_genesis(self) -> bool:
        return self.block_id == GENESIS_ID


@dataclass(frozen=True)
class Block:
    """A block in the (simulated) chain.

    Attributes:
        height: Chain height; the genesis block has height 0.
        view: The view in which the block was proposed.
        proposer: Identity of the proposing process.
        parent_id: Identifier of the parent block.
        qc: Quorum certificate for the parent block.
        payload: Tuple of request identifiers batched into this block.
        payload_bytes: Total payload size in bytes (for cost modelling).
        timestamp: Virtual time at which the block was created.
    """

    height: int
    view: int
    proposer: int
    parent_id: str
    qc: QuorumCertificate
    payload: Tuple[int, ...] = field(default_factory=tuple)
    payload_bytes: int = 0
    timestamp: float = 0.0

    @cached_property
    def block_id(self) -> str:
        if self.height == 0 and self.parent_id == GENESIS_ID:
            return GENESIS_ID
        material = (
            f"{self.height}|{self.view}|{self.proposer}|{self.parent_id}|"
            f"{self.payload}|{self.payload_bytes}"
        )
        return hashlib.sha256(material.encode()).hexdigest()[:32]

    def signing_payload(self) -> bytes:
        """The message that committee members sign when voting for the block."""
        return f"vote|{self.block_id}|{self.view}|{self.height}".encode()

    @property
    def is_genesis(self) -> bool:
        return self.height == 0 and self.parent_id == GENESIS_ID


def genesis_qc() -> QuorumCertificate:
    """The self-certifying QC carried by the genesis block."""
    return QuorumCertificate(
        block_id=GENESIS_ID,
        view=0,
        height=0,
        aggregate=AggregateSignature(value=b"genesis", multiplicities={}),
        collector=None,
    )


def genesis_block() -> Block:
    """The common genesis block every replica starts from."""
    return Block(
        height=0,
        view=0,
        proposer=-1,
        parent_id=GENESIS_ID,
        qc=genesis_qc(),
        payload=(),
        payload_bytes=0,
        timestamp=0.0,
    )
