"""The scheduled fault driver executing a :class:`ChaosPlan` on one node.

One :class:`ChaosDriver` is attached to every live node.  It is
deliberately decentralised: because the plan is deterministic from the
spec seed, every node arms the *same* schedule against the shared cluster
epoch clock, so partitions cut both directions of a link without any
cross-node (or cross-worker-process) coordination — each sender
suppresses its own outbound half, exactly like the simulated network
blocks directed links.

The driver only needs the narrow node surface the live runtime already
provides: ``pid``, ``replica``, ``runtime`` (for ``now``/``set_timer``)
and the committee size; it never touches sockets itself.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.attacks.byzantine import corrupt_replica
from repro.chaos.plan import ChaosPlan
from repro.chaos.shaping import LinkShaper
from repro.simnet.failures import PartitionEvent

__all__ = ["ChaosDriver"]


class ChaosDriver:
    """Executes crashes, restarts, partitions and attacks for one node.

    Args:
        node: The owning live node (duck-typed: ``pid``, ``replica``,
            ``runtime`` and ``compiled.config.committee_size``).
        plan: The cluster-wide chaos plan (identical on every node).
    """

    def __init__(self, node, plan: ChaosPlan) -> None:
        self.node = node
        self.plan = plan
        self.shaper: Optional[LinkShaper] = None
        if plan.shapes_traffic:
            self.shaper = LinkShaper(
                pid=node.pid,
                latency_model=plan.latency_model,
                loss_probability=plan.loss_probability,
                bandwidth_bytes_per_sec=plan.bandwidth_bytes_per_sec,
                seed=plan.seed,
            )
        # Reference-counted suppression of this node's outbound links,
        # mirroring ``Network._blocked_links``: overlapping partitions
        # compose, healing one never unblocks a link another still holds.
        self._blocked_links: Dict[int, int] = {}
        if plan.attackers and node.pid in plan.attackers:
            corrupt_replica(node.replica, plan.victim)

    # -- shaping ---------------------------------------------------------------
    def blocked(self, dst: int) -> bool:
        """Whether the outbound link to ``dst`` is partition-suppressed."""
        return dst in self._blocked_links

    # -- scheduled faults --------------------------------------------------------
    def arm(self) -> None:
        """Arm every timer-driven fault; call once, at protocol start.

        Times in the plan are seconds since protocol start, which is what
        the runtime clock reports, so scheduling is a plain ``call_at``.
        """
        runtime = self.node.runtime
        now = runtime.now
        crash_at = self.plan.crashes.get(self.node.pid)
        if crash_at is not None:
            # Route through the node's fault hooks when it has them (the
            # live node resets failure-detector clocks on recovery); fall
            # back to the bare replica for stub nodes in tests.
            crash = getattr(self.node, "crash_replica", self.node.replica.crash)
            runtime.set_timer(max(crash_at - now, 0.0), crash)
            restart_at = self.plan.restarts.get(self.node.pid)
            if restart_at is not None:
                recover = getattr(self.node, "recover_replica", self.node.replica.recover)
                runtime.set_timer(max(restart_at - now, 0.0), recover)
        for event in self.plan.partitions:
            self._arm_partition(event, now)

    def _arm_partition(self, event: PartitionEvent, now: float) -> None:
        """Mirror of :meth:`FailureInjector.schedule_partition`, outbound-only."""
        blocked: Set[int] = set()
        runtime = self.node.runtime

        def apply() -> None:
            for dst in self._crossing_destinations(event):
                self._blocked_links[dst] = self._blocked_links.get(dst, 0) + 1
                blocked.add(dst)

        def heal() -> None:
            for dst in blocked:
                count = self._blocked_links.get(dst, 0)
                if count <= 1:
                    self._blocked_links.pop(dst, None)
                else:
                    self._blocked_links[dst] = count - 1
            blocked.clear()

        if event.heal_at is not None and event.heal_at <= now:
            return  # already healed before it could take effect
        if event.at <= now:
            apply()
        else:
            runtime.set_timer(event.at - now, apply)
        if event.heal_at is not None:
            runtime.set_timer(event.heal_at - now, heal)

    def _crossing_destinations(self, event: PartitionEvent) -> List[int]:
        """Peers this node loses while ``event`` is active (directed links).

        Uses the same :meth:`PartitionEvent.severs` predicate the sim's
        ``FailureInjector`` applies, so the substrates cannot drift.
        """
        group_of = event.group_map()
        src = self.node.pid
        return [
            dst
            for dst in range(self.node.compiled.config.committee_size)
            if event.severs(src, dst, group_of)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChaosDriver(pid={self.node.pid}, shaping={self.shaper is not None}, "
            f"faults={self.plan.has_scheduled_faults}, "
            f"attacker={self.node.pid in self.plan.attackers})"
        )
