"""Fault injection and traffic shaping for the live runtime.

The simulator has always been able to run the paper's adversarial and WAN
campaigns — partitions, stragglers, loss, Byzantine omission cartels —
because the :class:`~repro.simnet.network.Network` *is* the adversary.
The live asyncio cluster has no such luxury: localhost TCP is fast,
reliable and honest.  This package is the missing adversary for real
sockets, driven by the *same* :class:`~repro.scenarios.spec.ScenarioSpec`
fields the simulator consumes:

* :mod:`repro.chaos.plan` — :func:`compile_chaos_plan` distils a compiled
  scenario into a :class:`ChaosPlan`: the seeded, deterministic schedule
  of crashes/restarts, timed partitions, the Byzantine coalition and the
  link-shaping parameters (latency model, loss, bandwidth);
* :mod:`repro.chaos.shaping` — :class:`LinkShaper`, the per-node outbound
  pipeline that emulates the spec's topology on real links: latency
  sampled from the :mod:`repro.simnet.topology` models (including the
  WAN :class:`~repro.simnet.topology.RegionMatrixLatency`), probabilistic
  loss, and per-link FIFO bandwidth queuing;
* :mod:`repro.chaos.driver` — :class:`ChaosDriver`, the scheduled fault
  executor attached to each :class:`~repro.runtime.live.LiveNode`: it
  corrupts attacker replicas with the adversarial behaviours from
  :mod:`repro.attacks`, arms crash/restart timers and applies timed
  partitions as reference-counted link suppression mirroring
  :meth:`repro.simnet.failures.FailureInjector.schedule_partition`.

Everything is derived from ``(spec, seed)``, so a live chaos run is
reproducible in the same sense a simulated one is: the *schedule* is
identical on every run, while wall-clock jitter only perturbs where the
protocol happens to be when an event lands.
"""

from repro.chaos.driver import ChaosDriver
from repro.chaos.plan import ChaosPlan, compile_chaos_plan
from repro.chaos.shaping import LinkShaper

__all__ = ["ChaosDriver", "ChaosPlan", "LinkShaper", "compile_chaos_plan"]
