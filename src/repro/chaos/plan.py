"""The chaos plan: one scenario's faults and shaping, ready to execute.

:func:`compile_chaos_plan` distils a :class:`CompiledScenario` into the
flat, substrate-agnostic schedule a live fault driver needs: which
process crashes (and restarts) when, the timed partition events, the
Byzantine coalition and its victim, and the link-shaping parameters.
Everything is already resolved by :func:`repro.scenarios.engine.compile_scenario`
— the crash draw, the attacker draw and the timers all derive from the
spec seed — so the plan is deterministic: the same spec + seed yields the
same plan in every process of a cluster, which is what lets worker
subprocesses shape their own links without coordination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.scenarios.engine import CompiledScenario
from repro.simnet.failures import PartitionEvent
from repro.simnet.latency import LatencyModel

__all__ = ["ChaosPlan", "compile_chaos_plan"]


@dataclass(frozen=True)
class ChaosPlan:
    """Everything a fault driver must do to one cluster, by process id.

    Attributes:
        seed: The scenario seed (shaping RNGs derive per-node seeds from it).
        crashes: ``process id -> crash time`` (seconds since protocol start).
        restarts: ``process id -> restart time`` for crash-restart churn.
        partitions: Timed partition events, applied as reference-counted
            outbound link suppression at every sender.
        attackers: The Byzantine omission coalition (empty = no attack).
        victim: The process whose votes the coalition censors.
        loss_probability: Per-message drop probability on every link.
        latency_model: Propagation-delay model emulated on every link
            (``None`` leaves raw localhost latency).
        bandwidth_bytes_per_sec: Per-link FIFO capacity (``None`` = fat links).
    """

    seed: int
    crashes: Dict[int, float] = field(default_factory=dict)
    restarts: Dict[int, float] = field(default_factory=dict)
    partitions: Tuple[PartitionEvent, ...] = ()
    attackers: Tuple[int, ...] = ()
    victim: Optional[int] = None
    loss_probability: float = 0.0
    latency_model: Optional[LatencyModel] = None
    bandwidth_bytes_per_sec: Optional[float] = None

    @property
    def shapes_traffic(self) -> bool:
        """Whether any outbound message needs the shaping pipeline."""
        return (
            self.latency_model is not None
            or self.loss_probability > 0
            or self.bandwidth_bytes_per_sec is not None
        )

    @property
    def has_scheduled_faults(self) -> bool:
        """Whether any timer-driven fault (crash/restart/partition) exists."""
        return bool(self.crashes or self.restarts or self.partitions)

    @property
    def is_adversarial(self) -> bool:
        return bool(self.attackers)


def compile_chaos_plan(compiled: CompiledScenario) -> ChaosPlan:
    """The chaos plan of one compiled scenario (shared by every node)."""
    spec = compiled.spec
    crashes: Dict[int, float] = {}
    restarts: Dict[int, float] = {}
    if compiled.failure_plan is not None:
        crashes = dict(compiled.failure_plan.crashes)
        restarts = dict(compiled.failure_plan.restarts)
    return ChaosPlan(
        seed=spec.seed,
        crashes=crashes,
        restarts=restarts,
        partitions=tuple(spec.faults.partitions),
        attackers=tuple(compiled.attacker_ids),
        victim=spec.attack.victim if compiled.attacker_ids else None,
        loss_probability=compiled.loss_probability,
        latency_model=compiled.latency_model,
        bandwidth_bytes_per_sec=spec.topology.bandwidth_bytes_per_sec,
    )
