"""Per-link traffic shaping for live nodes.

A :class:`LinkShaper` reproduces, on one node's *outbound* traffic, the
three link properties the simulated network applies on every send —
probabilistic loss, model-sampled propagation latency and per-link FIFO
bandwidth queuing — in the same order the simulator applies them, from a
node-local seeded RNG.  The live runtime asks it one question per
message: *drop, or deliver after how long?*

The shaped delay is additive on top of the real localhost round trip
(tens of microseconds), which is negligible against the sub-millisecond
and WAN delays the scenario specs describe.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.simnet.latency import LatencyModel, LinkBandwidth

__all__ = ["LinkShaper", "shaper_seed"]


def shaper_seed(seed: int, pid: int) -> int:
    """The per-node shaping RNG seed: decorrelated across nodes and from
    the crash/attacker draws (which use the raw spec seed), stable across
    task and worker-subprocess deployments."""
    return (seed * 0x9E3779B1 + pid * 7919 + 0x5DEECE66D) & 0xFFFFFFFFFF


class LinkShaper:
    """Shapes one node's outbound messages to match a scenario topology.

    Args:
        pid: The owning process id (the ``src`` of every shaped link).
        latency_model: Propagation-delay model from the compiled scenario
            (``None`` adds no latency).
        loss_probability: Probability of dropping any individual message.
        bandwidth_bytes_per_sec: Per-link capacity with FIFO queuing
            (``None`` disables transmission delay).
        seed: Scenario seed; the node RNG derives via :func:`shaper_seed`.
    """

    def __init__(
        self,
        pid: int,
        latency_model: Optional[LatencyModel] = None,
        loss_probability: float = 0.0,
        bandwidth_bytes_per_sec: Optional[float] = None,
        seed: int = 0,
    ) -> None:
        if not 0 <= loss_probability < 1:
            raise ValueError("loss probability must be in [0, 1)")
        self.pid = pid
        self.latency_model = latency_model
        self.loss_probability = loss_probability
        self.bandwidth = (
            LinkBandwidth(bandwidth_bytes_per_sec) if bandwidth_bytes_per_sec else None
        )
        self.rng = random.Random(shaper_seed(seed, pid))

    def shape(self, dst: int, size_bytes: int, now: float) -> Optional[float]:
        """Decide one outbound message's fate on the link ``pid -> dst``.

        Returns ``None`` to drop the message (probabilistic loss), or the
        delay in seconds to hold it before the real send.  Mutates the
        per-link bandwidth queue, so calls must happen in send order.
        """
        if self.loss_probability and self.rng.random() < self.loss_probability:
            return None
        delay = 0.0
        if self.latency_model is not None:
            delay = self.latency_model.sample(self.rng, self.pid, dst)
        if self.bandwidth is not None:
            delay += self.bandwidth.transmission_delay(self.pid, dst, size_bytes, now)
        return delay

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LinkShaper(pid={self.pid}, loss={self.loss_probability}, "
            f"latency={type(self.latency_model).__name__ if self.latency_model else None})"
        )
