"""Dynamic committee membership: stake, selection and epochs.

The paper's analysis assumes a fixed committee but explicitly allows
dynamic committees whose membership is known a priori for every view.
This subpackage provides that substrate: a :class:`StakeRegistry` of
bonded validators, deterministic stake-weighted selection or VRF
sortition of per-epoch committees, and a :class:`MembershipManager` that
maps views to committees and feeds block rewards back into stake.
"""

from repro.membership.epochs import EpochSchedule, MembershipManager
from repro.membership.selection import (
    CommitteeDescriptor,
    SortitionSelector,
    StakeWeightedSelector,
)
from repro.membership.stake import StakeRegistry, Validator

__all__ = [
    "CommitteeDescriptor",
    "EpochSchedule",
    "MembershipManager",
    "SortitionSelector",
    "StakeRegistry",
    "StakeWeightedSelector",
    "Validator",
]
