"""Committee selection: stake-weighted sampling and VRF sortition.

The paper treats the committee-selection protocol as out of scope, but a
usable library needs one so that dynamic committees (which the paper
explicitly allows as long as the membership of a view is known a priori)
can be exercised end to end.  Two selectors are provided:

* :class:`StakeWeightedSelector` — samples a committee of fixed size
  without replacement, each draw weighted by bonded stake, from a seed
  derived from the chain state.  Deterministic and verifiable by everyone.
* :class:`SortitionSelector` — Algorand-style private sortition: every
  validator locally evaluates a VRF on the epoch seed and is selected if
  its output falls under a stake-proportional threshold.  Membership is
  revealed (and verified) by publishing the VRF proofs.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from repro.crypto.vrf import VRF, VRFOutput
from repro.membership.stake import StakeRegistry, Validator

__all__ = [
    "CommitteeDescriptor",
    "StakeWeightedSelector",
    "SortitionSelector",
]


@dataclass(frozen=True)
class CommitteeDescriptor:
    """The committee serving one epoch.

    Attributes:
        epoch: The epoch index the committee serves.
        members: Validator ids in committee order; the committee-internal
            process id of a member is its index in this tuple.
        seed: The randomness the selection was derived from.
    """

    epoch: int
    members: Tuple[int, ...]
    seed: int = 0

    @property
    def size(self) -> int:
        return len(self.members)

    def process_id_of(self, validator_id: int) -> int:
        """The committee-internal process id of ``validator_id``."""
        try:
            return self.members.index(validator_id)
        except ValueError as exc:
            raise KeyError(f"validator {validator_id} is not in epoch {self.epoch}") from exc

    def validator_of(self, process_id: int) -> int:
        return self.members[process_id]

    def __contains__(self, validator_id: int) -> bool:
        return validator_id in self.members

    def __len__(self) -> int:
        return self.size


def _epoch_seed(base_seed: int, epoch: int, context: bytes = b"") -> int:
    digest = hashlib.sha256()
    digest.update(b"iniva-committee-seed")
    digest.update(base_seed.to_bytes(16, "big", signed=True))
    digest.update(epoch.to_bytes(8, "big", signed=True))
    digest.update(context)
    return int.from_bytes(digest.digest()[:8], "big")


class StakeWeightedSelector:
    """Deterministic stake-weighted committee sampling without replacement."""

    def __init__(self, registry: StakeRegistry, committee_size: int, base_seed: int = 0) -> None:
        if committee_size <= 0:
            raise ValueError("committee size must be positive")
        self.registry = registry
        self.committee_size = committee_size
        self.base_seed = base_seed

    def select(self, epoch: int, context: bytes = b"") -> CommitteeDescriptor:
        """Draw the committee for ``epoch``.

        Every validator's chance of filling each seat is proportional to
        its bonded stake among the validators not yet selected.  If fewer
        active validators exist than seats, all of them are selected.
        """
        candidates = self.registry.active_validators()
        if not candidates:
            raise ValueError("no active validators to select from")
        seed = _epoch_seed(self.base_seed, epoch, context)
        rng = random.Random(seed)
        pool: List[Validator] = list(candidates)
        members: List[int] = []
        seats = min(self.committee_size, len(pool))
        for _ in range(seats):
            weights = [max(validator.stake, 0.0) for validator in pool]
            total = sum(weights)
            if total <= 0:
                # All remaining validators have zero stake: fall back to
                # uniform selection so the committee can still be filled.
                index = rng.randrange(len(pool))
            else:
                point = rng.random() * total
                cumulative = 0.0
                index = len(pool) - 1
                for position, weight in enumerate(weights):
                    cumulative += weight
                    if point < cumulative:
                        index = position
                        break
            members.append(pool.pop(index).validator_id)
        return CommitteeDescriptor(epoch=epoch, members=tuple(members), seed=seed)


@dataclass(frozen=True)
class SortitionTicket:
    """A validator's claim to a committee seat, verifiable by everyone."""

    validator_id: int
    output: VRFOutput
    priority: float


class SortitionSelector:
    """Algorand-style VRF sortition over the stake registry.

    Each validator evaluates the VRF on ``(epoch, context)``; it wins a
    seat when its output, normalised to ``[0, 1)``, is below
    ``expected_size * stake / total_stake`` — so the expected committee
    size is ``expected_size`` and seats are stake proportional.  Ties and
    ordering are broken by the VRF output itself.
    """

    def __init__(
        self,
        registry: StakeRegistry,
        vrf: VRF,
        secret_keys: Mapping[int, object],
        expected_size: int,
        base_seed: int = 0,
    ) -> None:
        if expected_size <= 0:
            raise ValueError("expected committee size must be positive")
        self.registry = registry
        self.vrf = vrf
        self.secret_keys = dict(secret_keys)
        self.expected_size = expected_size
        self.base_seed = base_seed

    def _alpha(self, epoch: int, context: bytes) -> bytes:
        return b"sortition|%d|%d|" % (self.base_seed, epoch) + context

    def ticket(self, validator_id: int, epoch: int, context: bytes = b"") -> Optional[SortitionTicket]:
        """Evaluate the local lottery for one validator (None = not selected)."""
        validator = self.registry.get(validator_id)
        if not validator.active or validator.stake <= 0:
            return None
        total = self.registry.total_stake()
        if total <= 0:
            return None
        secret = self.secret_keys[validator_id]
        output = self.vrf.evaluate(secret, self._alpha(epoch, context), signer=validator_id)
        threshold = self.expected_size * validator.stake / total
        priority = output.as_unit_float()
        if priority >= min(threshold, 1.0):
            return None
        return SortitionTicket(validator_id=validator_id, output=output, priority=priority)

    def verify_ticket(
        self, ticket: SortitionTicket, epoch: int, context: bytes = b""
    ) -> bool:
        """Re-check someone else's claim to a seat."""
        validator = self.registry.get(ticket.validator_id)
        public_key = validator.public_key
        if public_key is None:
            return False
        if not self.vrf.verify(public_key, self._alpha(epoch, context), ticket.output):
            return False
        total = self.registry.total_stake()
        threshold = self.expected_size * validator.stake / total if total > 0 else 0.0
        return ticket.output.as_unit_float() < min(threshold, 1.0)

    def select(self, epoch: int, context: bytes = b"") -> CommitteeDescriptor:
        """Run the lottery for every validator and assemble the committee."""
        tickets: List[SortitionTicket] = []
        for validator in self.registry.active_validators():
            if validator.validator_id not in self.secret_keys:
                continue
            ticket = self.ticket(validator.validator_id, epoch, context)
            if ticket is not None:
                tickets.append(ticket)
        tickets.sort(key=lambda ticket: (ticket.priority, ticket.validator_id))
        members = tuple(ticket.validator_id for ticket in tickets)
        return CommitteeDescriptor(
            epoch=epoch, members=members, seed=_epoch_seed(self.base_seed, epoch, context)
        )
