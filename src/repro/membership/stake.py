"""Stake registry for proof-of-stake committee selection.

The paper fixes the committee membership for the analysis (Section III)
but notes that Iniva also works with dynamic committees as long as the
membership of a view is known a priori.  This module provides the stake
substrate that the selection and epoch machinery build on: validators bond
stake, earn rewards, get slashed, and can be deactivated.  All mutation
paths keep the registry's accounting invariant (total stake equals the sum
of individual stakes) so property tests can pin it down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional

__all__ = ["Validator", "StakeRegistry"]


@dataclass
class Validator:
    """One staked participant eligible for committee selection.

    Attributes:
        validator_id: Globally unique integer identity.
        stake: Currently bonded stake (non-negative).
        public_key: Backend-specific public key material.
        active: Whether the validator is eligible for selection.
        rewards_earned: Cumulative rewards credited (informational).
        slashed: Cumulative stake removed by slashing (informational).
    """

    validator_id: int
    stake: float
    public_key: object = None
    active: bool = True
    rewards_earned: float = 0.0
    slashed: float = 0.0

    def __post_init__(self) -> None:
        if self.validator_id < 0:
            raise ValueError("validator id must be non-negative")
        if self.stake < 0:
            raise ValueError("stake must be non-negative")


class StakeRegistry:
    """The global registry of validators and their bonded stake."""

    def __init__(self) -> None:
        self._validators: Dict[int, Validator] = {}

    # -- membership ---------------------------------------------------------
    def register(
        self, validator_id: int, stake: float, public_key: object = None
    ) -> Validator:
        """Add a new validator with an initial bonded stake."""
        if validator_id in self._validators:
            raise ValueError(f"validator {validator_id} already registered")
        if stake < 0:
            raise ValueError("initial stake must be non-negative")
        validator = Validator(validator_id=validator_id, stake=float(stake), public_key=public_key)
        self._validators[validator_id] = validator
        return validator

    def deregister(self, validator_id: int) -> Validator:
        """Remove a validator entirely (e.g. after full unbonding)."""
        return self._validators.pop(validator_id)

    def __contains__(self, validator_id: int) -> bool:
        return validator_id in self._validators

    def __len__(self) -> int:
        return len(self._validators)

    def __iter__(self) -> Iterator[Validator]:
        return iter(self._validators.values())

    def get(self, validator_id: int) -> Validator:
        try:
            return self._validators[validator_id]
        except KeyError as exc:
            raise KeyError(f"unknown validator {validator_id}") from exc

    # -- stake changes ------------------------------------------------------------
    def bond(self, validator_id: int, amount: float) -> float:
        """Add ``amount`` of stake; returns the new bonded stake."""
        if amount < 0:
            raise ValueError("bond amount must be non-negative")
        validator = self.get(validator_id)
        validator.stake += amount
        return validator.stake

    def unbond(self, validator_id: int, amount: float) -> float:
        """Withdraw ``amount`` of stake; returns the new bonded stake."""
        validator = self.get(validator_id)
        if amount < 0 or amount > validator.stake + 1e-12:
            raise ValueError("cannot unbond more than the bonded stake")
        validator.stake = max(0.0, validator.stake - amount)
        return validator.stake

    def credit_reward(self, validator_id: int, amount: float, compound: bool = True) -> float:
        """Credit a block reward; with ``compound`` the reward is re-bonded."""
        if amount < 0:
            raise ValueError("reward must be non-negative")
        validator = self.get(validator_id)
        validator.rewards_earned += amount
        if compound:
            validator.stake += amount
        return validator.stake

    def slash(self, validator_id: int, fraction: float) -> float:
        """Slash a fraction of the bonded stake; returns the amount removed."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("slash fraction must be in [0, 1]")
        validator = self.get(validator_id)
        penalty = validator.stake * fraction
        validator.stake -= penalty
        validator.slashed += penalty
        return penalty

    def set_active(self, validator_id: int, active: bool) -> None:
        self.get(validator_id).active = active

    # -- queries --------------------------------------------------------------------
    def active_validators(self, minimum_stake: float = 0.0) -> List[Validator]:
        """Validators eligible for selection, ordered by identity."""
        return sorted(
            (v for v in self._validators.values() if v.active and v.stake >= minimum_stake),
            key=lambda validator: validator.validator_id,
        )

    def total_stake(self, active_only: bool = True) -> float:
        return sum(
            validator.stake
            for validator in self._validators.values()
            if validator.active or not active_only
        )

    def stake_of(self, validator_id: int) -> float:
        return self.get(validator_id).stake

    def stake_distribution(self) -> Mapping[int, float]:
        """``validator id -> stake`` for all registered validators."""
        return {vid: validator.stake for vid, validator in self._validators.items()}

    def apply_rewards(
        self, rewards: Mapping[int, float], id_map: Optional[Mapping[int, int]] = None
    ) -> float:
        """Credit a per-process reward distribution to the registry.

        Args:
            rewards: Mapping from committee process id to reward amount
                (e.g. :attr:`RewardDistribution.payouts`).
            id_map: Optional mapping from committee process id to validator
                id; defaults to the identity mapping.

        Returns:
            The total amount credited.
        """
        total = 0.0
        for process_id, amount in rewards.items():
            validator_id = id_map.get(process_id, process_id) if id_map else process_id
            if validator_id in self._validators and amount > 0:
                self.credit_reward(validator_id, amount)
                total += amount
        return total
