"""Epoch schedules and dynamic committee management.

Ties the stake registry and committee selection together: views are
grouped into fixed-length epochs, each epoch is served by one committee,
and the committee of the *next* epoch is always derivable from public
state — which satisfies the paper's requirement that committee members of
a view are known a priori (Section III).  Block rewards computed by
:mod:`repro.core.rewards` can be fed back into the registry, so repeated
vote omission visibly compounds into lower stake and a lower chance of
future selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Protocol

from repro.membership.selection import CommitteeDescriptor, StakeWeightedSelector
from repro.membership.stake import StakeRegistry

__all__ = ["EpochSchedule", "MembershipManager"]


@dataclass(frozen=True)
class EpochSchedule:
    """Maps view numbers to epoch indices.

    Attributes:
        views_per_epoch: Number of consecutive views served by one
            committee.
        first_view: The view number the first epoch starts at.
    """

    views_per_epoch: int = 100
    first_view: int = 1

    def __post_init__(self) -> None:
        if self.views_per_epoch <= 0:
            raise ValueError("views_per_epoch must be positive")

    def epoch_of(self, view: int) -> int:
        """The epoch serving ``view`` (views before ``first_view`` map to 0)."""
        if view < self.first_view:
            return 0
        return (view - self.first_view) // self.views_per_epoch

    def first_view_of(self, epoch: int) -> int:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        return self.first_view + epoch * self.views_per_epoch

    def last_view_of(self, epoch: int) -> int:
        return self.first_view_of(epoch + 1) - 1

    def is_epoch_boundary(self, view: int) -> bool:
        """True when ``view`` is the last view of its epoch."""
        return view == self.last_view_of(self.epoch_of(view))


class _Selector(Protocol):  # pragma: no cover - typing helper
    def select(self, epoch: int, context: bytes = b"") -> CommitteeDescriptor: ...


class MembershipManager:
    """Derives and caches the committee of every epoch.

    The manager is deterministic: two replicas constructing managers over
    equal registries and seeds derive identical committees for every
    epoch, which is what lets the whole network agree on membership
    without extra communication.
    """

    def __init__(
        self,
        registry: StakeRegistry,
        schedule: EpochSchedule,
        selector: Optional[_Selector] = None,
        committee_size: int = 21,
        base_seed: int = 0,
    ) -> None:
        self.registry = registry
        self.schedule = schedule
        self.selector = selector or StakeWeightedSelector(
            registry, committee_size=committee_size, base_seed=base_seed
        )
        self._committees: Dict[int, CommitteeDescriptor] = {}
        self._contexts: Dict[int, bytes] = {}

    # -- committee derivation -------------------------------------------------
    def set_epoch_context(self, epoch: int, context: bytes) -> None:
        """Pin extra entropy (e.g. the last QC digest of the previous epoch).

        Must be called before the epoch's committee is first derived;
        changing the context afterwards would let replicas diverge, so it
        is rejected once the committee is cached.
        """
        if epoch in self._committees:
            raise ValueError(f"committee for epoch {epoch} already derived")
        self._contexts[epoch] = context

    def committee_for_epoch(self, epoch: int) -> CommitteeDescriptor:
        if epoch < 0:
            raise ValueError("epoch must be non-negative")
        cached = self._committees.get(epoch)
        if cached is None:
            cached = self.selector.select(epoch, self._contexts.get(epoch, b""))
            self._committees[epoch] = cached
        return cached

    def committee_for_view(self, view: int) -> CommitteeDescriptor:
        return self.committee_for_epoch(self.schedule.epoch_of(view))

    def known_epochs(self) -> List[int]:
        return sorted(self._committees)

    # -- reward / punishment feedback --------------------------------------------
    def apply_block_rewards(self, view: int, payouts: Mapping[int, float]) -> float:
        """Credit a block's reward distribution back into the stake registry.

        ``payouts`` is keyed by committee process id (as produced by
        :class:`repro.core.rewards.RewardDistribution`); the epoch's
        descriptor translates them to validator ids.
        """
        descriptor = self.committee_for_view(view)
        id_map = {
            process_id: descriptor.validator_of(process_id)
            for process_id in range(descriptor.size)
        }
        return self.registry.apply_rewards(payouts, id_map=id_map)

    def selection_probability(self, validator_id: int) -> float:
        """The validator's share of active stake (its per-seat selection weight)."""
        total = self.registry.total_stake()
        if total <= 0:
            return 0.0
        validator = self.registry.get(validator_id)
        if not validator.active:
            return 0.0
        return validator.stake / total
