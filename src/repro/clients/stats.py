"""A mergeable log-bucketed latency digest.

Client-observed latency is recorded wherever the client runs — which,
in ``--procs`` mode, is several worker subprocesses whose only channel
back to the parent is a JSON document.  Raw samples are too big to ship
and percentiles do not merge, so each swarm shard keeps a
:class:`LatencyDigest`: a histogram over exponentially growing buckets
(5 % relative width).  Digests of any two shards merge by adding bucket
counts, and any percentile of the merged digest is accurate to the
bucket width — plenty below the millisecond scale the curves plot.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

__all__ = ["LatencyDigest"]

#: Lower edge of bucket 1; everything faster lands in bucket 0.
_MIN_LATENCY = 1e-5  # 10 µs
#: Per-bucket growth factor (≈5 % relative resolution).
_GROWTH = 1.05
_LOG_GROWTH = math.log(_GROWTH)


class LatencyDigest:
    """Log-bucketed latency histogram with exact count/sum/min/max.

    ``record`` is O(1); ``merge`` adds another digest's buckets;
    ``percentile`` walks the cumulative counts and returns the bucket's
    geometric midpoint.  Serialises to a compact JSON-safe dict.
    """

    __slots__ = ("_buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording -------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Add one latency sample (seconds)."""
        if seconds < 0:
            seconds = 0.0
        if seconds <= _MIN_LATENCY:
            index = 0
        else:
            index = 1 + int(math.log(seconds / _MIN_LATENCY) / _LOG_GROWTH)
        self._buckets[index] = self._buckets.get(index, 0) + 1
        self.count += 1
        self.total += seconds
        if self.min is None or seconds < self.min:
            self.min = seconds
        if self.max is None or seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyDigest") -> None:
        """Fold another digest's samples into this one."""
        for index, bucket_count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    # -- reading ---------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) in seconds, to bucket width."""
        if not self.count:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        # Ceil-index of the sorted samples, like LatencyStats.from_samples.
        target = max(1, math.ceil(q * self.count))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                if index == 0:
                    return min(self.max or _MIN_LATENCY, _MIN_LATENCY)
                midpoint = _MIN_LATENCY * _GROWTH ** (index - 0.5)
                # Exact extremes beat the bucket approximation at the edges.
                low = self.min if self.min is not None else 0.0
                high = self.max if self.max is not None else midpoint
                return min(max(midpoint, low), high)
        return self.max or 0.0  # pragma: no cover - seen always reaches count

    def summary_ms(self) -> Dict[str, float]:
        """The headline view in milliseconds (what result rows embed)."""
        return {
            "count": self.count,
            "mean_ms": round(self.mean * 1000, 3),
            "p50_ms": round(self.percentile(0.50) * 1000, 3),
            "p90_ms": round(self.percentile(0.90) * 1000, 3),
            "p99_ms": round(self.percentile(0.99) * 1000, 3),
            "max_ms": round((self.max or 0.0) * 1000, 3),
        }

    # -- serialisation ----------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (inverse of :meth:`from_dict`); buckets are kept
        as parallel index/count lists because JSON keys must be strings."""
        indices = sorted(self._buckets)
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "bucket_index": indices,
            "bucket_count": [self._buckets[i] for i in indices],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LatencyDigest":
        digest = cls()
        digest.count = int(data.get("count", 0))
        digest.total = float(data.get("total", 0.0))
        minimum = data.get("min")
        maximum = data.get("max")
        digest.min = None if minimum is None else float(minimum)
        digest.max = None if maximum is None else float(maximum)
        indices = data.get("bucket_index", [])
        counts = data.get("bucket_count", [])
        digest._buckets = {int(i): int(c) for i, c in zip(indices, counts)}
        return digest
