"""The open-loop client swarm driving a live cluster over TCP.

A :class:`ClientSwarm` hosts one *shard* of the logical client
population — clients ``shard_offset, shard_offset + shard_step, ...`` of
``num_clients`` — as asyncio tasks inside whatever process calls it: the
task-mode event loop runs the whole population (shard ``0 :: 1``), and
each ``--procs`` worker runs its own interleaved slice, so thousands of
clients spread across worker subprocesses without any coordination
beyond the shard arithmetic.

Each client draws gaps from its own seeded
:class:`~repro.clients.arrivals.ArrivalModel` (per-client rate =
aggregate rate / population) and *broadcasts* every request to all
replicas over one shared per-replica connection — the paper's client
model, and what makes the replicated mempools see identical request
streams.  Requests are fire-and-forget (open loop): the swarm never
waits for a reply before issuing the next request, so offered load stays
at the configured rate even when the cluster saturates.  Completion is
the *first* :class:`~repro.clients.messages.ClientReply` from any
replica; the send-to-first-reply time lands in a mergeable
:class:`~repro.clients.stats.LatencyDigest`.

Replica connections self-heal: a refused or broken connection backs off
and redials while the outbound queue keeps absorbing traffic (bounded —
overflow is counted, never silent), so a crash-restarted replica starts
seeing client traffic again the moment it is back.
"""

from __future__ import annotations

import asyncio
import logging
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.clients.arrivals import client_rng, make_arrival
from repro.clients.messages import ClientHello, ClientReject, ClientReply, ClientRequest
from repro.clients.stats import LatencyDigest
from repro.runtime.net import tune_writer

if TYPE_CHECKING:  # codec imports this package; resolve the cycle lazily
    from repro.runtime.codec import WireCodec

__all__ = ["ClientSwarm"]

logger = logging.getLogger("repro.clients.swarm")

#: Most frames buffered per replica link while disconnected or backlogged.
_MAX_OUTBOX = 4096

#: Most queued frames coalesced into one TCP write.
_WRITE_BATCH = 64

#: Reconnect backoff bounds for replica links, seconds.
_RECONNECT_BASE = 0.05
_RECONNECT_CAP = 0.5

#: Frame read limit (a reply/reject frame is tens of bytes).
_READ_LIMIT = 1 << 20


class _ReplicaLink:
    """One self-healing client connection to one replica."""

    def __init__(self, swarm: "ClientSwarm", pid: int, host: str, port: int) -> None:
        self.swarm = swarm
        self.pid = pid
        self.host = host
        self.port = port
        self.outbox: asyncio.Queue = asyncio.Queue(maxsize=_MAX_OUTBOX)
        self.dropped = 0  # outbox overflow, counted per link
        self.connects = 0
        self._task: Optional[asyncio.Task] = None
        self._stopping = False

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    def send(self, frame: bytes) -> None:
        """Queue one pre-framed request (drops on overflow, counted)."""
        try:
            self.outbox.put_nowait(frame)
        except asyncio.QueueFull:
            self.dropped += 1

    async def stop(self) -> None:
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass

    async def _run(self) -> None:
        backoff = _RECONNECT_BASE
        while not self._stopping:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port, limit=_READ_LIMIT
                )
                tune_writer(writer)  # TCP_NODELAY: requests must not sit in Nagle
            except OSError:
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, _RECONNECT_CAP)
                continue
            backoff = _RECONNECT_BASE
            self.connects += 1
            try:
                writer.write(self.swarm.hello_frame)
                await writer.drain()
                pump = asyncio.gather(self._read_loop(reader), self._write_loop(writer))
                try:
                    await pump
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    pump.cancel()
                    # Collect the survivor so its exception (if any) is seen.
                    try:
                        await pump
                    except (
                        asyncio.CancelledError,
                        asyncio.IncompleteReadError,
                        ConnectionError,
                        OSError,
                    ):
                        pass
            except (ConnectionError, OSError):
                pass
            finally:
                writer.close()

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        while True:
            header = await reader.readexactly(4)
            size = int.from_bytes(header, "big")
            if size > _READ_LIMIT:
                raise ConnectionError(f"oversized frame ({size} bytes)")
            self.swarm._on_frame(self.swarm.codec.decode(await reader.readexactly(size)))

    async def _write_loop(self, writer: asyncio.StreamWriter) -> None:
        while True:
            chunk: List[bytes] = [await self.outbox.get()]
            while len(chunk) < _WRITE_BATCH:
                try:
                    chunk.append(self.outbox.get_nowait())
                except asyncio.QueueEmpty:
                    break
            writer.write(b"".join(chunk))
            await writer.drain()


class ClientSwarm:
    """One shard of an open-loop client population (see module docstring).

    Args:
        addresses: Endpoint map of the cluster — key-agnostic, so it
            works unchanged whether entries are keyed by replica pid
            (legacy) or by worker id (the scale-out fabric's one listener
            per worker); every request is broadcast to all endpoints.
        rate: *Aggregate* request rate of the whole population; each
            client runs at ``rate / num_clients``.
        payload_size: Modeled payload bytes per request.
        num_clients: Size of the logical client population.
        arrival: Arrival model name (see ``ARRIVAL_MODELS``).
        seed: Workload seed; per-client RNGs derive from it.
        burst_factor / period: Shape knobs of the time-varying models.
        shard_offset / shard_step: This process hosts clients
            ``shard_offset :: shard_step`` of the population.
        incarnation: Restart generation of this shard (cold-started
            workers bump it so fresh request ids never collide).
        codec: Wire codec; a default (curve-less) codec suffices because
            client frames carry only ints and strings.
    """

    def __init__(
        self,
        addresses: Mapping[int, Tuple[str, int]],
        *,
        rate: float,
        payload_size: int = 64,
        num_clients: int = 4,
        arrival: str = "poisson",
        seed: int = 42,
        burst_factor: float = 4.0,
        period: float = 1.0,
        shard_offset: int = 0,
        shard_step: int = 1,
        incarnation: int = 0,
        codec: Optional[WireCodec] = None,
    ) -> None:
        from repro.runtime.codec import WireCodec

        if shard_step < 1 or not 0 <= shard_offset < max(shard_step, 1):
            raise ValueError("shard must satisfy 0 <= offset < step")
        self.codec = codec if codec is not None else WireCodec()
        self.addresses = dict(addresses)
        self.rate = rate
        self.payload_size = payload_size
        self.num_clients = max(num_clients, 1)
        self.arrival = arrival
        self.seed = seed
        self.burst_factor = burst_factor
        self.period = period
        self.shard_offset = shard_offset
        self.shard_step = shard_step
        self.incarnation = incarnation
        self.client_ids = list(range(self.num_clients))[shard_offset::shard_step]
        self.hello_frame = self.codec.frame(
            ClientHello(client_id=shard_offset, incarnation=incarnation)
        )
        # -- stats -----------------------------------------------------------
        self.issued = 0
        self.completed = 0
        self.reject_frames: Dict[str, int] = {}
        self.digest = LatencyDigest()
        self._pending: Dict[int, float] = {}  # request id -> send loop-time
        self._links: Dict[int, _ReplicaLink] = {}
        self._tasks: List[asyncio.Task] = []
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    # -- lifecycle ---------------------------------------------------------------
    async def start(self) -> None:
        """Dial every replica and start this shard's client tasks."""
        self._loop = asyncio.get_running_loop()
        for pid, (host, port) in self.addresses.items():
            link = _ReplicaLink(self, pid, host, port)
            self._links[pid] = link
            link.start()
        per_client_rate = self.rate / self.num_clients
        for client_id in self.client_ids:
            self._tasks.append(self._loop.create_task(self._client(client_id, per_client_rate)))

    async def stop(self) -> None:
        """Stop issuing, tear down links; stats remain readable."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception as exc:  # a client must never kill the harness
                logger.warning("client task raised %r", exc)
        self._tasks = []
        for link in self._links.values():
            await link.stop()

    # -- the open loop ------------------------------------------------------------
    async def _client(self, client_id: int, per_client_rate: float) -> None:
        rng = client_rng(self.seed, client_id)
        model = make_arrival(
            self.arrival,
            per_client_rate,
            burst_factor=self.burst_factor,
            period=self.period,
        )
        loop = self._loop
        assert loop is not None
        started = loop.time()
        seq = 0
        id_base = (self.incarnation << 48) | (client_id << 28)
        while True:
            gap = model.gap(rng, loop.time() - started)
            await asyncio.sleep(gap)
            seq += 1
            request_id = id_base | seq
            frame = self.codec.frame(
                ClientRequest(
                    request_id=request_id,
                    client_id=client_id,
                    payload_size=self.payload_size,
                )
            )
            self._pending[request_id] = loop.time()
            self.issued += 1
            for link in self._links.values():
                link.send(frame)

    # -- inbound ------------------------------------------------------------------
    def _on_frame(self, decoded: Any) -> None:
        from repro.runtime.codec import FrameBatch

        members = decoded.messages if isinstance(decoded, FrameBatch) else (decoded,)
        for message in members:
            if isinstance(message, ClientReply):
                sent_at = self._pending.pop(message.request_id, None)
                if sent_at is not None and self._loop is not None:
                    self.completed += 1
                    self.digest.record(self._loop.time() - sent_at)
            elif isinstance(message, ClientReject):
                self.reject_frames[message.reason] = (
                    self.reject_frames.get(message.reason, 0) + 1
                )

    # -- reporting ----------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-safe shard stats; shards merge via :func:`merge_summaries`."""
        return {
            "shard": [self.shard_offset, self.shard_step],
            "clients": len(self.client_ids),
            "incarnation": self.incarnation,
            "issued": self.issued,
            "completed": self.completed,
            "unresolved": len(self._pending),
            "rejected_frames": dict(self.reject_frames),
            "link_drops": sum(link.dropped for link in self._links.values()),
            "link_connects": sum(link.connects for link in self._links.values()),
            "latency": self.digest.to_dict(),
        }


def merge_summaries(shards: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-shard swarm summaries into one cluster-wide record.

    Counters add, reject reasons add per key, and the latency digests
    merge exactly (see :class:`LatencyDigest`); the merged record keeps
    the same schema as a single shard's summary, minus the shard key.
    """
    merged: Dict[str, Any] = {
        "shards": len(shards),
        "clients": 0,
        "issued": 0,
        "completed": 0,
        "unresolved": 0,
        "rejected_frames": {},
        "link_drops": 0,
        "link_connects": 0,
    }
    digest = LatencyDigest()
    for shard in shards:
        for key in ("clients", "issued", "completed", "unresolved", "link_drops", "link_connects"):
            merged[key] += int(shard.get(key, 0))
        for reason, count in dict(shard.get("rejected_frames", {})).items():
            merged["rejected_frames"][reason] = (
                merged["rejected_frames"].get(reason, 0) + int(count)
            )
        digest.merge(LatencyDigest.from_dict(shard.get("latency", {})))
    merged["latency"] = digest.to_dict()
    return merged
