"""Client-facing wire frames (wire version 5).

Four frames connect an open-loop client to a replica, all spoken over
the same length-prefixed, version-tagged codec as the protocol core:

* :class:`ClientHello` — first frame on a client connection, replacing
  the replica :class:`~repro.resilience.messages.SessionHello`; tells
  the node this connection carries client traffic (and which swarm
  shard / incarnation it belongs to).
* :class:`ClientRequest` — one request.  The payload travels as a
  *size*, not bytes: the protocol batches and commits request ids and
  models payload cost by ``size_bytes`` everywhere else (mempool,
  blocks, CPU model), so shipping real padding would only burn loopback
  bandwidth without changing anything measured.
* :class:`ClientReply` — sent by a replica when the request first
  commits locally.  Clients broadcast to every replica and time the
  *first* reply, the paper's client-observed commit latency.
* :class:`ClientReject` — the backpressure frame: admission control
  refused the request (bounded queue full, or the per-client fairness
  window exceeded).  Open-loop clients do not retry — the reject is
  counted, which is exactly what an overload curve should show.

These frames never reach the protocol core and stay out of the
per-replica transport counters, like the session control frames.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "REJECT_CLIENT_WINDOW",
    "REJECT_QUEUE_FULL",
    "ClientHello",
    "ClientReject",
    "ClientReply",
    "ClientRequest",
]

#: Admission refused because the bounded pending queue is full.
REJECT_QUEUE_FULL = "queue-full"

#: Admission deferred because this client exceeded its in-flight window.
REJECT_CLIENT_WINDOW = "client-window"


@dataclass(frozen=True, slots=True)
class ClientHello:
    """First frame on a client connection: identifies the swarm shard.

    ``client_id`` is the shard's lowest client id (purely informational;
    one connection multiplexes every client of the shard) and
    ``incarnation`` the shard's restart generation — a cold-started
    ``--procs`` worker reruns its shard at incarnation > 0 so its request
    ids can never collide with the ids its previous life already put
    into the replicated pools.
    """

    client_id: int
    incarnation: int = 0

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class ClientRequest:
    """One open-loop request.

    ``request_id`` is computed *client-side* —
    ``(incarnation << 48) | (client_id << 28) | seq`` — so every replica
    that admits the broadcast copy agrees on the id without coordination,
    which is what lets the replicated mempools deduplicate, reserve and
    commit it exactly like a preloaded request.
    """

    request_id: int
    client_id: int
    payload_size: int

    @property
    def size_bytes(self) -> int:
        return 24 + self.payload_size


@dataclass(frozen=True, slots=True)
class ClientReply:
    """A replica's commit notification for one request id."""

    request_id: int
    replica: int = 0

    @property
    def size_bytes(self) -> int:
        return 16


@dataclass(frozen=True, slots=True)
class ClientReject:
    """Admission control's backpressure signal (see the reason constants)."""

    request_id: int
    reason: str = REJECT_QUEUE_FULL

    @property
    def size_bytes(self) -> int:
        return 16 + len(self.reason)
