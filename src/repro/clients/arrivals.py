"""Seeded arrival models for open-loop client traffic.

An :class:`ArrivalModel` turns a :class:`random.Random` stream into
inter-arrival gaps.  The same models drive both substrates:

* the **sim workload scheduler** (:class:`~repro.experiments.workloads.
  ClientWorkload.attach`) builds one aggregate-rate model and walks it in
  a single pass, so the legacy Poisson schedule (``rng.expovariate(rate)``
  per arrival) is reproduced bit for bit — the figure goldens pin it;
* the **live swarm** (:mod:`repro.clients.swarm`) builds one per-client
  model at ``rate / num_clients`` with a per-client RNG derived by
  :func:`client_rng`, so client ``i`` emits the same request times no
  matter which worker process hosts it.

Determinism contract: every model consumes its RNG only inside
:meth:`ArrivalModel.gap`, a fixed number of draws per returned gap for
the poisson/uniform/diurnal models and a loop-until-hit for ``bursty``
(still a pure function of the RNG stream).  A fixed ``(seed, rate,
model, shape)`` tuple therefore always yields the same schedule.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = [
    "ARRIVAL_MODELS",
    "ArrivalModel",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "UniformArrivals",
    "client_rng",
    "make_arrival",
]

#: Every registered arrival model name accepted by :func:`make_arrival`
#: (and by ``WorkloadSpec.arrival``).
ARRIVAL_MODELS = ("poisson", "uniform", "bursty", "diurnal")

_TWO_PI = 2.0 * math.pi


def client_rng(seed: int, client_id: int) -> random.Random:
    """The per-client RNG: a stable mix of the workload seed and the
    client id, so client ``i``'s arrival stream is identical no matter
    how clients are sharded across worker processes."""
    return random.Random(((seed + 1) * 2654435761 + client_id * 40503) & 0xFFFFFFFFFFFF)


@dataclass(frozen=True)
class ArrivalModel:
    """Base class: an arrival process with mean rate ``rate`` req/s.

    Attributes:
        rate: Mean arrival rate (requests per second) this model emits —
            the aggregate rate for the sim scheduler, the per-client rate
            for the live swarm.
    """

    rate: float

    name = "abstract"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")

    def gap(self, rng: random.Random, elapsed: float) -> float:
        """Seconds from ``elapsed`` until the next arrival.

        ``elapsed`` is the time of the previous arrival (seconds since
        the process started); time-varying models key their phase off
        it.  Consumes ``rng`` deterministically.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalModel):
    """Memoryless arrivals: exponential gaps at the configured rate.

    One ``rng.expovariate(rate)`` draw per arrival — exactly the draw
    sequence the legacy ``jitter=True`` workload consumed, which keeps
    fixed-seed sim schedules (and the goldens built on them) unchanged.
    """

    name = "poisson"

    def gap(self, rng: random.Random, elapsed: float) -> float:
        return rng.expovariate(self.rate)


@dataclass(frozen=True)
class UniformArrivals(ArrivalModel):
    """Evenly spaced arrivals (the legacy ``jitter=False`` behaviour).

    Consumes no randomness: the gap is always ``1 / rate``.
    """

    name = "uniform"

    def gap(self, rng: random.Random, elapsed: float) -> float:
        return 1.0 / self.rate


@dataclass(frozen=True)
class BurstyArrivals(ArrivalModel):
    """On/off bursts: all traffic compressed into the head of each period.

    Every ``period`` seconds, the first ``period / burst_factor`` seconds
    are an "on" window running a Poisson process at ``rate *
    burst_factor``; the rest of the period is silent.  The long-run mean
    rate is exactly ``rate``, but instantaneous load spikes by
    ``burst_factor`` — the shape that exercises admission control and
    queue depth without raising offered load.

    Attributes:
        burst_factor: Peak-to-mean ratio (> 1); also the inverse duty
            cycle of the on window.
        period: Seconds per on/off cycle.
    """

    burst_factor: float = 4.0
    period: float = 1.0

    name = "bursty"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_factor <= 1.0:
            raise ValueError("burst factor must exceed 1")
        if self.period <= 0:
            raise ValueError("burst period must be positive")

    def gap(self, rng: random.Random, elapsed: float) -> float:
        on_len = self.period / self.burst_factor
        burst_rate = self.rate * self.burst_factor
        at = elapsed
        while True:
            phase = at % self.period
            if phase >= on_len:  # inside the silent tail: skip to next window
                at += self.period - phase
                phase = 0.0
            draw = rng.expovariate(burst_rate)
            if phase + draw < on_len:
                return (at + draw) - elapsed
            at += on_len - phase  # window exhausted without an arrival

    # The while loop advances ``at`` by at least the remaining window (or a
    # full period) per iteration, so it terminates after a geometric number
    # of redraws with success probability 1 - exp(-rate * period).


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalModel):
    """Sinusoidally modulated load: a compressed day/night cycle.

    The instantaneous rate is ``rate * (1 + amplitude * sin(2π t /
    period))``, floored at 1 % of the mean so the silent trough still
    makes progress.  Gaps are drawn exponentially at the instantaneous
    rate — an adiabatic approximation that is exact when ``period`` is
    long against the mean gap, which saturation sweeps satisfy.

    Attributes:
        amplitude: Peak deviation from the mean, in [0, 1).
        period: Seconds per full day/night cycle.
    """

    amplitude: float = 0.8
    period: float = 8.0

    name = "diurnal"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("diurnal amplitude must be in [0, 1)")
        if self.period <= 0:
            raise ValueError("diurnal period must be positive")

    def gap(self, rng: random.Random, elapsed: float) -> float:
        instantaneous = self.rate * (
            1.0 + self.amplitude * math.sin(_TWO_PI * elapsed / self.period)
        )
        return rng.expovariate(max(instantaneous, self.rate * 0.01))


def make_arrival(
    name: str,
    rate: float,
    *,
    burst_factor: float = 4.0,
    period: float = 1.0,
) -> ArrivalModel:
    """Build the named arrival model (see :data:`ARRIVAL_MODELS`).

    ``burst_factor`` applies to ``bursty`` (peak-to-mean ratio) and
    ``diurnal`` (mapped to the sine amplitude ``1 - 1/burst_factor`` so
    the same knob scales both shapes); ``period`` is the cycle length of
    either time-varying model and is ignored by ``poisson``/``uniform``.
    """
    if name == "poisson":
        return PoissonArrivals(rate)
    if name == "uniform":
        return UniformArrivals(rate)
    if name == "bursty":
        return BurstyArrivals(rate, burst_factor=burst_factor, period=period)
    if name == "diurnal":
        amplitude = max(0.0, min(1.0 - 1.0 / burst_factor, 0.99))
        return DiurnalArrivals(rate, amplitude=amplitude, period=period)
    raise ValueError(
        f"unknown arrival model {name!r} (expected one of {', '.join(ARRIVAL_MODELS)})"
    )
