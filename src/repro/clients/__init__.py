"""Open-loop client traffic for the live runtime.

The paper's evaluation (Fig. 2/3) frames throughput and latency against
*offered load*: clients submit requests at a configured aggregate rate
regardless of how fast the cluster commits them, and the interesting
curves are goodput and client-observed latency as that rate approaches
and passes the saturation point.  This package is the client side of
that story for the live runtime:

* :mod:`repro.clients.arrivals` — the seeded :class:`ArrivalModel`
  hierarchy (Poisson / uniform / bursty / diurnal) shared by the sim
  workload scheduler and the live swarm;
* :mod:`repro.clients.messages` — the client-facing wire frames
  (:class:`ClientHello`, :class:`ClientRequest`, :class:`ClientReply`,
  :class:`ClientReject`) framed by :mod:`repro.runtime.codec`;
* :mod:`repro.clients.stats` — a mergeable log-bucketed latency digest,
  so per-worker client latency survives the ``--procs`` JSON boundary
  and still yields cluster-wide percentiles;
* :mod:`repro.clients.swarm` — the :class:`ClientSwarm`: thousands of
  open-loop clients as asyncio tasks, shardable across worker
  processes, broadcasting requests to every replica over TCP and
  timing the first commit reply.

The server half (admission control, reply routing) lives in
:mod:`repro.consensus.mempool` and :mod:`repro.runtime.live`.
"""

from repro.clients.arrivals import (
    ARRIVAL_MODELS,
    ArrivalModel,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    UniformArrivals,
    client_rng,
    make_arrival,
)
from repro.clients.messages import (
    REJECT_CLIENT_WINDOW,
    REJECT_QUEUE_FULL,
    ClientHello,
    ClientReject,
    ClientReply,
    ClientRequest,
)
from repro.clients.stats import LatencyDigest
from repro.clients.swarm import ClientSwarm, merge_summaries

__all__ = [
    "ARRIVAL_MODELS",
    "ArrivalModel",
    "BurstyArrivals",
    "ClientHello",
    "ClientReject",
    "ClientReply",
    "ClientRequest",
    "ClientSwarm",
    "DiurnalArrivals",
    "LatencyDigest",
    "PoissonArrivals",
    "REJECT_CLIENT_WINDOW",
    "REJECT_QUEUE_FULL",
    "UniformArrivals",
    "client_rng",
    "make_arrival",
    "merge_summaries",
]
