"""Generic experiment runner: deploy, load, fail, run, measure.

This is the low-level deployment layer.  New code should normally go
through the :mod:`repro.api` facade (``run``/``sweep`` over
:class:`~repro.scenarios.spec.ScenarioSpec`), which compiles declarative
specs down to the functions in this module; :func:`build_deployment` and
:func:`run_experiment` remain supported entry points for callers that
need to wire a deployment by hand.

Sweeps over many configurations are embarrassingly parallel — every run
owns its own simulator, network and committee — so :func:`parallel_map`
fans independent jobs out over worker processes with
``concurrent.futures`` while preserving input order and per-run
determinism.  Set the ``REPRO_MAX_WORKERS`` environment variable (or the
``max_workers`` argument) to bound or disable the parallelism.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, TypeVar

from repro.consensus.config import ConsensusConfig
from repro.consensus.leader import make_leader_election
from repro.consensus.mempool import Mempool
from repro.consensus.replica import HotStuffReplica
from repro.crypto.keys import Committee
from repro.crypto.multisig import MultiSignatureScheme, get_scheme
from repro.crypto.params import TOY_PARAMS
from repro.experiments.workloads import ClientWorkload
from repro.simnet.events import Simulator
from repro.simnet.failures import FailureInjector, FailurePlan
from repro.simnet.latency import NormalLatency
from repro.simnet.metrics import LatencyStats, MetricsCollector
from repro.simnet.network import Network

__all__ = [
    "Deployment",
    "ExperimentResult",
    "SweepSpec",
    "build_deployment",
    "parallel_map",
    "run_experiment",
    "run_sweep",
]


@dataclass
class Deployment:
    """A fully wired simulated committee, ready to run."""

    config: ConsensusConfig
    simulator: Simulator
    network: Network
    committee: Committee
    mempool: Mempool
    metrics: MetricsCollector
    replicas: List[HotStuffReplica]

    def start(self) -> None:
        for replica in self.replicas:
            replica.start()

    def correct_replicas(self) -> List[HotStuffReplica]:
        return [replica for replica in self.replicas if not replica.crashed]


@dataclass(frozen=True)
class ExperimentResult:
    """Headline metrics of one experiment run.

    The fields mirror what the paper reports: throughput (ops/sec), client
    latency, failed-view percentage, average QC size (vote inclusion) and
    mean CPU utilisation, plus message counters for the overhead analysis.

    ``transport`` holds per-replica transport counters (messages/bytes
    sent, messages received) keyed by the process id as a string; the sim
    and live runtimes fill the same schema so their results diff cleanly.

    ``resilience`` carries the recovery telemetry of runs with faults:
    per-replica crash/recovery timestamps, catch-up sync stats and (live
    runtime) suspicion timelines, reconnect counts and worker supervision
    events.  Empty for fault-free runs and absent from old documents.

    ``clients`` carries the live runtime's client-layer telemetry:
    admission counters (admitted/duplicate/dropped/deferred, queue
    depths), the merged open-loop swarm summary and the client-observed
    goodput and latency percentiles the saturation sweep plots.  Empty
    for sim runs and absent from pre-client documents.

    ``observability`` carries the merged consensus trace and metrics
    registry of runs with ``observe.enabled`` (see :mod:`repro.observe`):
    ``{"run_id", "enabled", "trace": {...}, "metrics": {...}}``.  Empty
    when tracing is off and absent from pre-observability documents.
    """

    config_label: str
    duration: float
    throughput: float
    latency: LatencyStats
    failed_view_fraction: float
    total_views: int
    successful_views: int
    average_qc_size: float
    second_chance_inclusions: int
    cpu_utilisation_mean: float
    cpu_utilisation_max: float
    committed_operations: int
    committed_blocks: int
    message_counters: Dict[str, int] = field(default_factory=dict)
    transport: Dict[str, Dict[str, int]] = field(default_factory=dict)
    resilience: Dict[str, object] = field(default_factory=dict)
    clients: Dict[str, object] = field(default_factory=dict)
    observability: Dict[str, object] = field(default_factory=dict)

    def row(self) -> Dict[str, float]:
        """A flat representation used by the benchmark reporting."""
        return {
            "throughput_ops_per_sec": round(self.throughput, 1),
            "latency_mean_ms": round(self.latency.mean * 1000, 2),
            "latency_p90_ms": round(self.latency.p90 * 1000, 2),
            "failed_views_pct": round(self.failed_view_fraction * 100, 2),
            "avg_qc_size": round(self.average_qc_size, 2),
            "cpu_mean_pct": round(self.cpu_utilisation_mean * 100, 2),
            "cpu_max_pct": round(self.cpu_utilisation_max * 100, 2),
        }

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "config_label": self.config_label,
            "duration": self.duration,
            "throughput": self.throughput,
            "latency": self.latency.to_dict(),
            "failed_view_fraction": self.failed_view_fraction,
            "total_views": self.total_views,
            "successful_views": self.successful_views,
            "average_qc_size": self.average_qc_size,
            "second_chance_inclusions": self.second_chance_inclusions,
            "cpu_utilisation_mean": self.cpu_utilisation_mean,
            "cpu_utilisation_max": self.cpu_utilisation_max,
            "committed_operations": self.committed_operations,
            "committed_blocks": self.committed_blocks,
            "message_counters": dict(self.message_counters),
            "transport": {pid: dict(counts) for pid, counts in self.transport.items()},
            "resilience": dict(self.resilience),
            "clients": dict(self.clients),
            "observability": dict(self.observability),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentResult":
        payload = dict(data)
        payload["latency"] = LatencyStats.from_dict(payload["latency"])
        payload["message_counters"] = {
            str(key): int(value)
            for key, value in dict(payload.get("message_counters", {})).items()
        }
        payload["transport"] = {
            str(pid): {str(key): int(value) for key, value in dict(counts).items()}
            for pid, counts in dict(payload.get("transport", {})).items()
        }
        # Absent from pre-resilience / pre-client documents; default empty.
        payload["resilience"] = dict(payload.get("resilience", {}))
        payload["clients"] = dict(payload.get("clients", {}))
        payload["observability"] = dict(payload.get("observability", {}))
        return cls(**payload)


def _make_signature_scheme(config: ConsensusConfig) -> MultiSignatureScheme:
    if config.signature_scheme == "bls":
        # The toy curve keeps pairings fast enough for small integration runs.
        return get_scheme("bls", params=TOY_PARAMS)
    return get_scheme(config.signature_scheme)


def build_deployment(
    config: ConsensusConfig,
    warmup: float = 0.0,
    latency_model=None,
    loss_probability: float = 0.0,
    link_bandwidth=None,
) -> Deployment:
    """Instantiate simulator, network, keys and replicas for ``config``."""
    simulator = Simulator()
    network = Network(
        simulator,
        # The paper's cluster has sub-millisecond latency; Δ (config.delta)
        # is the protocol's synchrony assumption and includes processing
        # headroom, so the raw network latency is configured independently.
        latency_model=latency_model or NormalLatency(mean=0.0005, std=0.0001),
        seed=config.seed,
        loss_probability=loss_probability,
        link_bandwidth=link_bandwidth,
    )
    scheme = _make_signature_scheme(config)
    committee = Committee(scheme, config.committee_size, seed=config.seed)
    metrics = MetricsCollector(warmup=warmup)
    mempool = Mempool(metrics=metrics)
    election = make_leader_election(config.leader_policy, config.committee_size)
    replicas = [
        HotStuffReplica(
            process_id=pid,
            simulator=simulator,
            network=network,
            committee=committee,
            config=config,
            mempool=mempool,
            election=election,
            metrics=metrics,
        )
        for pid in range(config.committee_size)
    ]
    return Deployment(
        config=config,
        simulator=simulator,
        network=network,
        committee=committee,
        mempool=mempool,
        metrics=metrics,
        replicas=replicas,
    )


def run_experiment(
    config: ConsensusConfig,
    duration: float = 10.0,
    warmup: float = 1.0,
    workload: Optional[ClientWorkload] = None,
    failure_plan: Optional[FailurePlan] = None,
    latency_model=None,
    loss_probability: float = 0.0,
    label: Optional[str] = None,
) -> ExperimentResult:
    """Run one full experiment and summarise its metrics.

    Args:
        config: The deployment configuration (scheme, committee size, ...).
        duration: Virtual seconds to simulate (the paper runs 150 s; the
            benches use shorter windows since the simulator is deterministic).
        warmup: Virtual seconds excluded from rate/latency statistics.
        workload: Client workload; defaults to a load high enough to keep
            every block full at the configured batch size.
        failure_plan: Optional crash-fault schedule.
        latency_model: Override for the network latency distribution.
        loss_probability: Probability of dropping any individual message.
        label: Human-readable label for reporting.
    """
    deployment = build_deployment(
        config, warmup=warmup, latency_model=latency_model, loss_probability=loss_probability
    )
    if workload is None:
        # Default: enough load to fill batches at the expected block rate.
        workload = ClientWorkload(rate=config.batch_size * 120, payload_size=config.payload_size)
    workload.attach(deployment.simulator, deployment.mempool, duration)
    if failure_plan is not None:
        FailureInjector(deployment.simulator, deployment.network).apply(failure_plan)
    deployment.start()
    deployment.simulator.run(until=duration)
    return summarise(deployment, duration, label=label)


@dataclass(frozen=True)
class SweepSpec:
    """One experiment of a sweep, self-contained and picklable.

    Mirrors :func:`run_experiment`'s signature so sweeps can be described
    declaratively and shipped to worker processes.
    """

    config: ConsensusConfig
    duration: float = 10.0
    warmup: float = 1.0
    workload: Optional[ClientWorkload] = None
    failure_plan: Optional[FailurePlan] = None
    loss_probability: float = 0.0
    label: Optional[str] = None


def _run_sweep_spec(spec: SweepSpec) -> ExperimentResult:
    return run_experiment(
        spec.config,
        duration=spec.duration,
        warmup=spec.warmup,
        workload=spec.workload,
        failure_plan=spec.failure_plan,
        loss_probability=spec.loss_probability,
        label=spec.label,
    )


def default_sweep_workers() -> int:
    """Worker count for sweeps: ``REPRO_MAX_WORKERS`` or the CPU count."""
    env = os.environ.get("REPRO_MAX_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


_T = TypeVar("_T")
_R = TypeVar("_R")


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], max_workers: Optional[int] = None
) -> List[_R]:
    """Map ``fn`` over ``items`` through the shared worker-process pool.

    This is the one fan-out primitive every sweep in the repository uses:
    :func:`run_sweep`, :func:`repro.api.sweep` and the per-cell grids of
    the figure modules all go through it.  ``fn`` and the items must be
    picklable (module-level functions and plain data).  Results preserve
    input order regardless of which worker finishes first; with
    ``max_workers`` (or ``REPRO_MAX_WORKERS``) equal to one everything
    runs serially in-process, which is bit-identical to the parallel run.
    """
    item_list: Sequence[_T] = list(items)
    if max_workers is None:
        max_workers = default_sweep_workers()
    max_workers = max(1, min(max_workers, len(item_list)))
    if max_workers == 1 or len(item_list) <= 1:
        return [fn(item) for item in item_list]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(fn, item_list))


def run_sweep(
    specs: Iterable[SweepSpec], max_workers: Optional[int] = None
) -> List[ExperimentResult]:
    """Run many independent experiments, in parallel where possible.

    Results are returned in the order of ``specs`` regardless of which
    worker finished first, and each run is as deterministic as a serial
    :func:`run_experiment` call (every deployment owns its simulator and
    seeds).  With ``max_workers`` (or ``REPRO_MAX_WORKERS``) equal to one,
    everything runs serially in-process.
    """
    return parallel_map(_run_sweep_spec, specs, max_workers=max_workers)


def summarise(deployment: Deployment, duration: float, label: Optional[str] = None) -> ExperimentResult:
    """Collect the post-run metrics from a deployment."""
    metrics = deployment.metrics
    metrics.mark_window(0.0, duration)
    restarts_by_pid = {replica.process_id: replica.restarts for replica in deployment.replicas}
    correct = deployment.correct_replicas()
    max_view = max((replica.current_view for replica in correct), default=0)
    successful_views = metrics.total_views()  # record_view(True) per formed QC
    total_views = max(max_view - 1, successful_views)
    failed_fraction = 0.0
    if total_views > 0:
        failed_fraction = max(0.0, 1.0 - successful_views / total_views)
    cpu = [replica.cpu_utilisation(duration) for replica in deployment.replicas]
    latency = metrics.latency_stats()
    # Recovery telemetry, only for replicas that actually crashed or
    # restarted — fault-free runs keep an empty resilience record.
    per_replica = {}
    for replica in deployment.replicas:
        if replica.restarts == 0 and getattr(replica, "crashed_at", None) is None:
            continue
        recovered_at = replica.recovered_at
        first_commit = replica.first_commit_after_recovery
        time_to_rejoin = None
        if recovered_at is not None and first_commit is not None:
            time_to_rejoin = max(first_commit - recovered_at, 0.0)
        per_replica[str(replica.process_id)] = {
            "restarts": replica.restarts,
            "crashed_at": replica.crashed_at,
            "recovered_at": recovered_at,
            "first_commit_after_recovery": first_commit,
            "time_to_rejoin": time_to_rejoin,
            "catchup_blocks": replica.catchup_blocks,
            "sync_requests_sent": replica.sync_requests_sent,
            "sync_requests_served": replica.sync_requests_served,
        }
    resilience = {"per_replica": per_replica} if per_replica else {}
    return ExperimentResult(
        config_label=label or deployment.config.describe(),
        duration=duration,
        throughput=metrics.throughput(),
        latency=latency,
        failed_view_fraction=failed_fraction,
        total_views=total_views,
        successful_views=successful_views,
        average_qc_size=metrics.average_qc_size(),
        second_chance_inclusions=metrics.second_chance_inclusions(),
        cpu_utilisation_mean=sum(cpu) / len(cpu) if cpu else 0.0,
        cpu_utilisation_max=max(cpu) if cpu else 0.0,
        committed_operations=metrics.committed_operations(),
        committed_blocks=metrics.committed_blocks(),
        message_counters=deployment.network.counters(),
        # The network owns the framing-layer counters; restart counts live
        # on the processes (crash-restart churn) and are merged in here so
        # sim and live report the same per-replica transport schema.
        transport={
            str(pid): {**counts, "restarts": restarts_by_pid.get(pid, 0)}
            for pid, counts in deployment.network.per_replica_counters().items()
        },
        resilience=resilience,
    )
