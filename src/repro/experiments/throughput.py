"""Figure 3a: throughput versus latency under increasing client load.

The paper drives 21 replicas and 4 clients with 64 B and 128 B payloads
and batch sizes 100 and 800, comparing HotStuff (star), Iniva and
Iniva-No2C.  The simulated experiment sweeps the client request rate and
reports one (throughput, latency) point per load level, which is exactly
the curve the paper plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.consensus.config import ConsensusConfig
from repro.experiments.runner import run_experiment
from repro.experiments.workloads import ClientWorkload

__all__ = ["SCHEME_LABELS", "figure_3a", "default_loads"]

#: Mapping from the paper's protocol names to configuration values.
SCHEME_LABELS = {"HotStuff": "star", "Iniva-No2C": "tree", "Iniva": "iniva"}


def default_loads(batch_size: int) -> List[float]:
    """Client request rates (requests/second) swept for a batch size."""
    base = [5_000, 15_000, 30_000, 45_000]
    if batch_size >= 800:
        base.append(60_000)
    return [float(rate) for rate in base]


def figure_3a(
    committee_size: int = 21,
    payload_sizes: Sequence[int] = (64,),
    batch_sizes: Sequence[int] = (100,),
    schemes: Optional[Dict[str, str]] = None,
    loads: Optional[Iterable[float]] = None,
    duration: float = 4.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Run the throughput/latency sweep and return one row per data point.

    The defaults are a reduced version of the paper's grid (64 B payload,
    batch 100) so the benchmark completes in minutes; pass
    ``payload_sizes=(64, 128)`` and ``batch_sizes=(100, 800)`` for the full
    figure.
    """
    schemes = schemes or SCHEME_LABELS
    rows: List[Dict[str, object]] = []
    for label, aggregation in schemes.items():
        for payload in payload_sizes:
            for batch in batch_sizes:
                load_points = list(loads) if loads is not None else default_loads(batch)
                for rate in load_points:
                    config = ConsensusConfig(
                        committee_size=committee_size,
                        batch_size=batch,
                        payload_size=payload,
                        aggregation=aggregation,
                        seed=seed,
                    )
                    result = run_experiment(
                        config,
                        duration=duration,
                        warmup=warmup,
                        workload=ClientWorkload(rate=rate, payload_size=payload),
                        label=f"{label} {payload}b B={batch} load={rate:.0f}",
                    )
                    rows.append(
                        {
                            "scheme": label,
                            "payload_bytes": payload,
                            "batch_size": batch,
                            "offered_load_ops": rate,
                            "throughput_ops": round(result.throughput, 1),
                            "latency_ms": round(result.latency.mean * 1000, 2),
                            "latency_p90_ms": round(result.latency.p90 * 1000, 2),
                        }
                    )
    return rows
