"""Figure 3a: throughput versus latency under increasing client load.

The paper drives 21 replicas and 4 clients with 64 B and 128 B payloads
and batch sizes 100 and 800, comparing HotStuff (star), Iniva and
Iniva-No2C.  The figure is a declarative grid: one :class:`ScenarioSpec`
cell per (scheme, payload, batch, load) point, fanned out through
:func:`repro.api.sweep`, reporting one (throughput, latency) row per
load level — exactly the curve the paper plots.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.api import sweep
from repro.experiments.specs import testbed_base

__all__ = ["SCHEME_LABELS", "figure_3a", "default_loads"]

#: Mapping from the paper's protocol names to configuration values.
SCHEME_LABELS = {"HotStuff": "star", "Iniva-No2C": "tree", "Iniva": "iniva"}


def default_loads(batch_size: int) -> List[float]:
    """Client request rates (requests/second) swept for a batch size."""
    base = [5_000, 15_000, 30_000, 45_000]
    if batch_size >= 800:
        base.append(60_000)
    return [float(rate) for rate in base]


def figure_3a(
    committee_size: int = 21,
    payload_sizes: Sequence[int] = (64,),
    batch_sizes: Sequence[int] = (100,),
    schemes: Optional[Dict[str, str]] = None,
    loads: Optional[Iterable[float]] = None,
    duration: float = 4.0,
    warmup: float = 1.0,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Run the throughput/latency sweep and return one row per data point.

    The defaults are a reduced version of the paper's grid (64 B payload,
    batch 100) so the benchmark completes in minutes; pass
    ``payload_sizes=(64, 128)`` and ``batch_sizes=(100, 800)`` for the full
    figure.
    """
    schemes = schemes or SCHEME_LABELS
    base = testbed_base("fig3a", duration=duration, warmup=warmup, seed=seed)
    cells: List[Dict[str, object]] = []
    grid: List[Dict[str, object]] = []
    for label, aggregation in schemes.items():
        for payload in payload_sizes:
            for batch in batch_sizes:
                load_points = list(loads) if loads is not None else default_loads(batch)
                for rate in load_points:
                    grid.append(
                        {
                            "name": f"fig3a-{aggregation}-{payload}b-B{batch}-load{rate:.0f}",
                            "aggregation": aggregation,
                            "batch_size": batch,
                            "committee": {"size": committee_size},
                            "workload": {"rate": rate, "payload_size": payload},
                        }
                    )
                    cells.append(
                        {
                            "scheme": label,
                            "payload_bytes": payload,
                            "batch_size": batch,
                            "offered_load_ops": rate,
                        }
                    )
    results = sweep(base, grid, max_workers=max_workers)
    rows: List[Dict[str, object]] = []
    for cell, result in zip(cells, results):
        metrics = result.metrics
        rows.append(
            {
                **cell,
                "throughput_ops": round(metrics.throughput, 1),
                "latency_ms": round(metrics.latency.mean * 1000, 2),
                "latency_p90_ms": round(metrics.latency.p90 * 1000, 2),
            }
        )
    return rows
