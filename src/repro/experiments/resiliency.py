"""Figure 4: resiliency of Iniva under crash faults.

The paper crashes 0-4 of 21 replicas (randomly placed in the tree each
view), and reports throughput, latency, the percentage of failed views and
the average quorum-certificate size for two second-chance timers
(δ = 5 ms, δ = 10 ms) and for the Carousel leader-election policy.

The figure is a declarative grid: one :class:`ScenarioSpec` cell per
(variant, fault count), fanned out through :func:`repro.api.sweep`.  The
cells disable the scenario engine's leader protection and pin the crash
seed to ``seed + faults`` so the crash draw matches the paper harness's
historical behaviour exactly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api import sweep
from repro.consensus.config import ConsensusConfig
from repro.experiments.specs import testbed_base

__all__ = ["figure_4", "default_variants"]


def default_variants() -> List[Dict[str, object]]:
    """The three Iniva variants plotted in Figure 4."""
    return [
        {"label": "delta=5ms (Carousel)", "second_chance": 0.005, "leader_policy": "carousel"},
        {"label": "delta=5ms", "second_chance": 0.005, "leader_policy": "round-robin"},
        {"label": "delta=10ms", "second_chance": 0.010, "leader_policy": "round-robin"},
    ]


def figure_4(
    committee_size: int = 21,
    fault_counts: Sequence[int] = (0, 1, 2, 3, 4),
    variants: Optional[List[Dict[str, object]]] = None,
    batch_size: int = 100,
    payload_size: int = 64,
    load: float = 6_000.0,
    duration: float = 6.0,
    warmup: float = 1.0,
    view_timeout: float = 0.25,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Run the crash-fault sweep.  One row per (variant, fault count).

    The columns map onto the four panels of Figure 4: throughput (4a),
    latency (4b), failed views (4c) and average QC size (4d).  The row also
    records the quorum minimum and the maximum possible votes, the two
    reference lines of Figure 4d.
    """
    variants = variants if variants is not None else default_variants()
    base = testbed_base(
        "fig4", duration=duration, warmup=warmup, seed=seed,
        batch_size=batch_size, view_timeout=view_timeout,
    )
    quorum_minimum = ConsensusConfig(committee_size=committee_size).quorum_size
    cells: List[Dict[str, object]] = []
    grid: List[Dict[str, object]] = []
    for variant in variants:
        for faults in fault_counts:
            grid.append(
                {
                    "name": f"fig4-{variant['leader_policy']}-d{variant['second_chance']}-f{faults}",
                    "aggregation": "iniva",
                    "second_chance_timeout": float(variant["second_chance"]),
                    "leader_policy": str(variant["leader_policy"]),
                    "committee": {"size": committee_size},
                    "workload": {"rate": load, "payload_size": payload_size},
                    "faults": {
                        "crashes": faults,
                        "crash_seed": seed + faults,
                        "protect_leader": False,
                    },
                }
            )
            cells.append({"variant": variant["label"], "faulty_nodes": faults})
    results = sweep(base, grid, max_workers=max_workers)
    rows: List[Dict[str, object]] = []
    for cell, result in zip(cells, results):
        metrics = result.metrics
        faults = int(cell["faulty_nodes"])
        rows.append(
            {
                **cell,
                "throughput_ops": round(metrics.throughput, 1),
                "latency_ms": round(metrics.latency.mean * 1000, 2),
                "failed_views_pct": round(metrics.failed_view_fraction * 100, 2),
                "avg_qc_size": round(metrics.average_qc_size, 2),
                "quorum_minimum": quorum_minimum,
                "max_possible_votes": committee_size - faults,
                "second_chance_inclusions": metrics.second_chance_inclusions,
            }
        )
    return rows
