"""Figure 3c: throughput as the committee grows (20 to 140 replicas).

The paper keeps the tree height constant and increases its branching
factor with the configuration size, using batch size 100 and payloads of 0
and 64 bytes.  Throughput decreases gradually for both HotStuff and Iniva
as the committee grows.

The sweep builds one :class:`~repro.experiments.runner.SweepSpec` per
(scheme, payload, committee size) cell and hands the whole list to
:func:`~repro.experiments.runner.run_sweep`, which fans the independent
simulations out across worker processes.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.consensus.config import ConsensusConfig
from repro.experiments.runner import SweepSpec, run_sweep
from repro.experiments.workloads import ClientWorkload

__all__ = ["figure_3c", "default_replica_counts"]


def default_replica_counts() -> List[int]:
    """Committee sizes roughly matching the paper's 20-140 replica sweep."""
    return [21, 41, 61, 91, 131]


def figure_3c(
    replica_counts: Optional[Sequence[int]] = None,
    payload_sizes: Sequence[int] = (0, 64),
    batch_size: int = 100,
    schemes: Optional[Dict[str, str]] = None,
    load: float = 30_000.0,
    duration: float = 3.0,
    warmup: float = 0.5,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Throughput versus committee size.  One row per (scheme, payload, n)."""
    schemes = schemes or {"HotStuff": "star", "Iniva": "iniva"}
    counts = list(replica_counts) if replica_counts is not None else default_replica_counts()
    cells: List[Dict[str, object]] = []
    specs: List[SweepSpec] = []
    for label, aggregation in schemes.items():
        for payload in payload_sizes:
            for count in counts:
                config = ConsensusConfig(
                    committee_size=count,
                    batch_size=batch_size,
                    payload_size=payload,
                    aggregation=aggregation,
                    num_internal=max(2, round(math.sqrt(count - 1))),
                    seed=seed,
                )
                specs.append(
                    SweepSpec(
                        config=config,
                        duration=duration,
                        warmup=warmup,
                        workload=ClientWorkload(rate=load, payload_size=payload),
                        label=f"{label} {payload}b n={count}",
                    )
                )
                cells.append({"scheme": label, "payload_bytes": payload, "replicas": count})
    results = run_sweep(specs, max_workers=max_workers)
    rows: List[Dict[str, object]] = []
    for cell, result in zip(cells, results):
        rows.append(
            {
                **cell,
                "throughput_ops": round(result.throughput, 1),
                "latency_ms": round(result.latency.mean * 1000, 2),
                "cpu_mean_pct": round(result.cpu_utilisation_mean * 100, 2),
            }
        )
    return rows
