"""Figure 3c: throughput as the committee grows (20 to 140 replicas).

The paper keeps the tree height constant and increases its branching
factor with the configuration size, using batch size 100 and payloads of 0
and 64 bytes.  Throughput decreases gradually for both HotStuff and Iniva
as the committee grows.

The figure is a declarative grid: one :class:`ScenarioSpec` cell per
(scheme, payload, committee size), fanned out through
:func:`repro.api.sweep` across worker processes and post-processed into
the paper's rows.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.api import sweep
from repro.experiments.specs import testbed_base

__all__ = ["figure_3c", "default_replica_counts"]


def default_replica_counts() -> List[int]:
    """Committee sizes roughly matching the paper's 20-140 replica sweep."""
    return [21, 41, 61, 91, 131]


def figure_3c(
    replica_counts: Optional[Sequence[int]] = None,
    payload_sizes: Sequence[int] = (0, 64),
    batch_size: int = 100,
    schemes: Optional[Dict[str, str]] = None,
    load: float = 30_000.0,
    duration: float = 3.0,
    warmup: float = 0.5,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Throughput versus committee size.  One row per (scheme, payload, n)."""
    schemes = schemes or {"HotStuff": "star", "Iniva": "iniva"}
    counts = list(replica_counts) if replica_counts is not None else default_replica_counts()
    base = testbed_base("fig3c", duration=duration, warmup=warmup, seed=seed,
                        batch_size=batch_size)
    cells: List[Dict[str, object]] = []
    grid: List[Dict[str, object]] = []
    for label, aggregation in schemes.items():
        for payload in payload_sizes:
            for count in counts:
                grid.append(
                    {
                        "name": f"fig3c-{aggregation}-{payload}b-n{count}",
                        "aggregation": aggregation,
                        "num_internal": max(2, round(math.sqrt(count - 1))),
                        "committee": {"size": count},
                        "workload": {"rate": load, "payload_size": payload},
                    }
                )
                cells.append({"scheme": label, "payload_bytes": payload, "replicas": count})
    results = sweep(base, grid, max_workers=max_workers)
    rows: List[Dict[str, object]] = []
    for cell, result in zip(cells, results):
        metrics = result.metrics
        rows.append(
            {
                **cell,
                "throughput_ops": round(metrics.throughput, 1),
                "latency_ms": round(metrics.latency.mean * 1000, 2),
                "cpu_mean_pct": round(metrics.cpu_utilisation_mean * 100, 2),
            }
        )
    return rows
