"""Shared spec-grid building blocks for the figure modules.

Every performance figure (3a, 3b, 3c, 4) is now a declarative grid of
:class:`~repro.scenarios.spec.ScenarioSpec` cells over
:func:`repro.api.sweep`.  The cells share the paper's testbed baseline:
one rack behind a top-of-rack switch (normal latency, 0.5 ms mean, 20 %
jitter — the historical ``run_experiment`` default) and the protocol
timers of :class:`~repro.consensus.config.ConsensusConfig` (Δ = 2.5 ms,
δ = 5 ms, 250 ms pacemaker), pinned so the derived-timer logic of WAN
scenarios does not kick in.  The workload seed is pinned to the
:class:`~repro.experiments.workloads.ClientWorkload` default (42) so the
spec path reproduces the legacy per-figure harnesses bit for bit.
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec, TopologySpec, WorkloadSpec

__all__ = ["TESTBED_TOPOLOGY", "testbed_base"]

#: The paper's single-rack testbed: sub-millisecond normal latency.
TESTBED_TOPOLOGY = TopologySpec(kind="normal", intra_delay=0.0005, jitter=0.2)


def testbed_base(
    name: str,
    duration: float,
    warmup: float,
    seed: int,
    batch_size: int = 100,
    view_timeout: float = 0.25,
) -> ScenarioSpec:
    """The base spec a figure grid derives its cells from."""
    return ScenarioSpec(
        name=name,
        duration=duration,
        warmup=warmup,
        seed=seed,
        batch_size=batch_size,
        delta=0.0025,
        second_chance_timeout=0.005,
        view_timeout=view_timeout,
        topology=TESTBED_TOPOLOGY,
        workload=WorkloadSpec(seed=42),
    )
