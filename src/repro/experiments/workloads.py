"""Client workload generation.

The paper's clients send fixed-size requests to the replicas and wait for
a quorum of replies; batching happens at the replicas.  The simulator
models the clients as an open-loop arrival process feeding the shared
mempool: the aggregate request rate, per-request payload size and the
arrival model (see :mod:`repro.clients.arrivals`) are the knobs the
evaluation sweeps.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass
from typing import Optional

from repro.clients.arrivals import make_arrival
from repro.consensus.mempool import Mempool
from repro.simnet.events import Simulator

__all__ = ["ClientWorkload"]


@dataclass(frozen=True)
class ClientWorkload:
    """An open-loop client population.

    Attributes:
        rate: Aggregate request arrival rate (requests per second) across
            all clients.
        payload_size: Payload bytes per request (64 B / 128 B in the paper).
        num_clients: Number of logical clients the requests are attributed
            to (4 in the paper's base evaluation).
        arrival: Arrival model name — one of
            :data:`~repro.clients.arrivals.ARRIVAL_MODELS` (``"poisson"``,
            ``"uniform"``, ``"bursty"``, ``"diurnal"``).
        burst_factor: Peak-to-mean ratio of the time-varying models
            (ignored by ``poisson``/``uniform``).
        period: Cycle length of the time-varying models, seconds.
        jitter: Deprecated alias for the arrival model: ``True`` meant
            ``arrival="poisson"``, ``False`` meant ``arrival="uniform"``.
            Passing it explicitly warns and maps onto ``arrival``; it will
            be removed one release after the deprecation.
        seed: RNG seed for the arrival process.
    """

    rate: float
    payload_size: int = 64
    num_clients: int = 4
    jitter: Optional[bool] = None
    seed: int = 42
    arrival: str = "poisson"
    burst_factor: float = 4.0
    period: float = 1.0

    def __post_init__(self) -> None:
        if self.jitter is not None:
            warnings.warn(
                "ClientWorkload(jitter=...) is deprecated; pass "
                "arrival='poisson' (jitter=True) or arrival='uniform' "
                "(jitter=False) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(self, "arrival", "poisson" if self.jitter else "uniform")
            # Reset the sentinel so round-tripping the dataclass (replace,
            # asdict/reconstruct) does not warn a second time.
            object.__setattr__(self, "jitter", None)

    def attach(self, simulator: Simulator, mempool: Mempool, duration: float) -> int:
        """Schedule all request submissions for a run of ``duration`` seconds.

        Returns the number of scheduled requests.  Scheduling everything up
        front keeps the hot loop allocation-free and the run deterministic.

        Iteration order is part of the determinism contract: arrivals are
        generated in one pass, strictly in arrival-time order, from a
        single ``random.Random(seed)`` stream, and client ids are assigned
        round-robin by schedule index.  A fixed ``(seed, rate, arrival,
        shape)`` tuple therefore yields a bit-identical schedule on every
        run and platform — the figure goldens pin the ``poisson`` stream
        (one ``expovariate(rate)`` draw per arrival).
        """
        if self.rate <= 0:
            return 0
        model = make_arrival(
            self.arrival,
            self.rate,
            burst_factor=self.burst_factor,
            period=self.period,
        )
        rng = random.Random(self.seed)
        scheduled = 0
        time = 0.0
        while True:
            time += model.gap(rng, time)
            if time >= duration:
                break
            client_id = scheduled % max(self.num_clients, 1)
            simulator.schedule_at(
                time, self._submit, mempool, time, client_id
            )
            scheduled += 1
        return scheduled

    def preload_into(self, mempool: Mempool, duration: float) -> int:
        """Submit the whole run's request volume at time zero.

        Exactly ``int(rate * duration)`` requests are submitted with
        ``submitted_at=0.0``, independent of the arrival RNG, so every
        replica of a replicated-pool (live) deployment — and a sim run of
        the same spec — sees an identical request sequence.  Returns the
        number of submitted requests.
        """
        return mempool.submit_many(
            count=int(self.rate * duration),
            time=0.0,
            size_bytes=self.payload_size,
            num_clients=self.num_clients,
        )

    def _submit(self, mempool: Mempool, time: float, client_id: int) -> None:
        mempool.submit(time=time, size_bytes=self.payload_size, client_id=client_id)
