"""Client workload generation.

The paper's clients send fixed-size requests to the replicas and wait for
a quorum of replies; batching happens at the replicas.  The simulator
models the clients as an open-loop arrival process feeding the shared
mempool: the aggregate request rate and per-request payload size are the
two knobs the evaluation sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.consensus.mempool import Mempool
from repro.simnet.events import Simulator

__all__ = ["ClientWorkload"]


@dataclass(frozen=True)
class ClientWorkload:
    """An open-loop client population.

    Attributes:
        rate: Aggregate request arrival rate (requests per second) across
            all clients.
        payload_size: Payload bytes per request (64 B / 128 B in the paper).
        num_clients: Number of logical clients the requests are attributed
            to (4 in the paper's base evaluation).
        jitter: If True, arrivals follow a Poisson process; otherwise they
            are evenly spaced.
        seed: RNG seed for the Poisson arrival process.
    """

    rate: float
    payload_size: int = 64
    num_clients: int = 4
    jitter: bool = True
    seed: int = 42

    def attach(self, simulator: Simulator, mempool: Mempool, duration: float) -> int:
        """Schedule all request submissions for a run of ``duration`` seconds.

        Returns the number of scheduled requests.  Scheduling everything up
        front keeps the hot loop allocation-free and the run deterministic.
        """
        if self.rate <= 0:
            return 0
        rng = random.Random(self.seed)
        scheduled = 0
        time = 0.0
        mean_gap = 1.0 / self.rate
        while True:
            gap = rng.expovariate(self.rate) if self.jitter else mean_gap
            time += gap
            if time >= duration:
                break
            client_id = scheduled % max(self.num_clients, 1)
            simulator.schedule_at(
                time, self._submit, mempool, time, client_id
            )
            scheduled += 1
        return scheduled

    def preload_into(self, mempool: Mempool, duration: float) -> int:
        """Submit the whole run's request volume at time zero.

        Exactly ``int(rate * duration)`` requests are submitted with
        ``submitted_at=0.0``, independent of the arrival RNG, so every
        replica of a replicated-pool (live) deployment — and a sim run of
        the same spec — sees an identical request sequence.  Returns the
        number of submitted requests.
        """
        return mempool.submit_many(
            count=int(self.rate * duration),
            time=0.0,
            size_bytes=self.payload_size,
            num_clients=self.num_clients,
        )

    def _submit(self, mempool: Mempool, time: float, client_id: int) -> None:
        mempool.submit(time=time, size_bytes=self.payload_size, client_id=client_id)
