"""Export and terminal plotting of experiment results.

The benchmark harness prints aligned tables; this module adds the pieces a
downstream user needs to get figures out of the library:

* :func:`ascii_plot` — a dependency-free scatter/line plot for the terminal,
  enough to eyeball the shape of every figure in the paper.
* :class:`FigureArtifact` — bundles the rows of one figure/table with its
  metadata and writes them as CSV, JSON, Markdown and a plain-text table
  into an output directory, so the data can be re-plotted with any
  external tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.experiments.report import format_rows, rows_to_csv, rows_to_json, series

__all__ = ["ascii_plot", "FigureArtifact", "FIGURE_SCHEMA"]

#: Version tag of the figure JSON document (``--format json`` for figure
#: commands); bump on breaking change, mirroring ``repro.results.RESULT_SCHEMA``.
FIGURE_SCHEMA = "repro.figure/1"

_MARKERS = "ox+*#@%&"


def ascii_plot(
    named_series: Mapping[str, Sequence[Tuple[float, float]]],
    width: int = 70,
    height: int = 20,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more (x, y) series as a terminal scatter plot.

    Args:
        named_series: Mapping from series name to its (x, y) points, e.g.
            the output of :func:`repro.experiments.report.series`.
        width: Plot area width in characters.
        height: Plot area height in characters.
        title: Optional title line.
        x_label: Label printed under the x axis.
        y_label: Label printed above the y axis.

    Returns:
        The plot as a multi-line string (also suitable for writing to a
        ``.txt`` artifact).
    """
    points = [
        (float(x), float(y))
        for values in named_series.values()
        for x, y in values
        if x is not None and y is not None
    ]
    if not points or width < 10 or height < 4:
        return f"{title}\n(no data to plot)" if title else "(no data to plot)"

    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][column] = marker

    legend: List[str] = []
    for index, (name, values) in enumerate(named_series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"  {marker} {name}")
        for x, y in values:
            if x is None or y is None:
                continue
            place(float(x), float(y), marker)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (min {y_min:g}, max {y_max:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}")
    lines.append("legend:")
    lines.extend(legend)
    return "\n".join(lines)


@dataclass
class FigureArtifact:
    """The data behind one reproduced table or figure, ready to export.

    Attributes:
        name: Short identifier used for file names (e.g. ``"fig2a"``).
        title: Human-readable title (printed above tables and plots).
        rows: Uniform row dictionaries (one per data point).
        series_key: Optional column distinguishing the series of a plot.
        x: Optional column used as the plot's x axis.
        y: Optional column used as the plot's y axis.
    """

    name: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    series_key: Optional[str] = None
    x: Optional[str] = None
    y: Optional[str] = None

    # -- rendering ----------------------------------------------------------
    def to_table(self) -> str:
        return format_rows(self.rows, title=self.title)

    def to_markdown(self) -> str:
        """A GitHub-flavoured Markdown table of the rows."""
        if not self.rows:
            return f"### {self.title}\n\n(no data)\n"
        columns = list(self.rows[0].keys())
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(str(column) for column in columns) + " |")
        lines.append("|" + "|".join("---" for _ in columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(_cell(row.get(column)) for column in columns) + " |")
        lines.append("")
        return "\n".join(lines)

    def to_plot(self, width: int = 70, height: int = 18) -> str:
        """An ASCII plot, when the artifact declares plottable columns."""
        if not (self.series_key and self.x and self.y):
            return self.to_table()
        grouped = series(self.rows, key=self.series_key, x=self.x, y=self.y)
        return ascii_plot(
            {str(name): points for name, points in grouped.items()},
            width=width,
            height=height,
            title=self.title,
            x_label=self.x,
            y_label=self.y,
        )

    # -- stable JSON schema -----------------------------------------------------
    def to_document(self) -> Dict[str, object]:
        """The versioned JSON document (figure analogue of ``RunResult.to_dict``)."""
        return {
            "schema": FIGURE_SCHEMA,
            "name": self.name,
            "title": self.title,
            "series_key": self.series_key,
            "x": self.x,
            "y": self.y,
            "rows": [dict(row) for row in self.rows],
        }

    # -- persistence -----------------------------------------------------------
    def write(self, out_dir: Union[str, Path]) -> Dict[str, Path]:
        """Write CSV, JSON, Markdown, table and plot files; returns the paths."""
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {
            "csv": directory / f"{self.name}.csv",
            "json": directory / f"{self.name}.json",
            "md": directory / f"{self.name}.md",
            "txt": directory / f"{self.name}.txt",
        }
        rows_to_csv(self.rows, paths["csv"])
        rows_to_json(self.rows, paths["json"])
        paths["md"].write_text(self.to_markdown(), encoding="utf-8")
        text = self.to_table()
        if self.series_key and self.x and self.y:
            text += "\n\n" + self.to_plot()
        paths["txt"].write_text(text + "\n", encoding="utf-8")
        return paths


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
