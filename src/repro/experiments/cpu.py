"""Figure 3b: CPU usage of HotStuff versus Iniva.

The paper measures the percentage of CPU time used by a process for 64 B
and 128 B payloads at batch sizes 100 and 800, and finds that Iniva uses
roughly half the CPU of HotStuff because the tree distributes verification
work and the lower block rate leaves the processors idle for longer.  The
simulated equivalent reports the mean and maximum per-replica CPU
utilisation at saturation load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.consensus.config import ConsensusConfig
from repro.experiments.runner import run_experiment
from repro.experiments.workloads import ClientWorkload

__all__ = ["figure_3b"]


def figure_3b(
    committee_size: int = 21,
    payload_sizes: Sequence[int] = (64, 128),
    batch_sizes: Sequence[int] = (100,),
    schemes: Optional[Dict[str, str]] = None,
    saturation_load: float = 45_000.0,
    duration: float = 4.0,
    warmup: float = 1.0,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """CPU utilisation of each scheme at saturation.  One row per cell."""
    schemes = schemes or {"HotStuff": "star", "Iniva": "iniva"}
    rows: List[Dict[str, object]] = []
    for label, aggregation in schemes.items():
        for payload in payload_sizes:
            for batch in batch_sizes:
                config = ConsensusConfig(
                    committee_size=committee_size,
                    batch_size=batch,
                    payload_size=payload,
                    aggregation=aggregation,
                    seed=seed,
                )
                result = run_experiment(
                    config,
                    duration=duration,
                    warmup=warmup,
                    workload=ClientWorkload(rate=saturation_load, payload_size=payload),
                    label=f"{label} {payload}b B={batch}",
                )
                rows.append(
                    {
                        "scheme": label,
                        "payload_bytes": payload,
                        "batch_size": batch,
                        "cpu_mean_pct": round(result.cpu_utilisation_mean * 100, 2),
                        "cpu_max_pct": round(result.cpu_utilisation_max * 100, 2),
                        "throughput_ops": round(result.throughput, 1),
                    }
                )
    return rows
