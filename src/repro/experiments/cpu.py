"""Figure 3b: CPU usage of HotStuff versus Iniva.

The paper measures the percentage of CPU time used by a process for 64 B
and 128 B payloads at batch sizes 100 and 800, and finds that Iniva uses
roughly half the CPU of HotStuff because the tree distributes verification
work and the lower block rate leaves the processors idle for longer.  The
simulated equivalent is a declarative grid of :class:`ScenarioSpec` cells
over :func:`repro.api.sweep` reporting the mean and maximum per-replica
CPU utilisation at saturation load.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.api import sweep
from repro.experiments.specs import testbed_base

__all__ = ["figure_3b"]


def figure_3b(
    committee_size: int = 21,
    payload_sizes: Sequence[int] = (64, 128),
    batch_sizes: Sequence[int] = (100,),
    schemes: Optional[Dict[str, str]] = None,
    saturation_load: float = 45_000.0,
    duration: float = 4.0,
    warmup: float = 1.0,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """CPU utilisation of each scheme at saturation.  One row per cell."""
    schemes = schemes or {"HotStuff": "star", "Iniva": "iniva"}
    base = testbed_base("fig3b", duration=duration, warmup=warmup, seed=seed)
    cells: List[Dict[str, object]] = []
    grid: List[Dict[str, object]] = []
    for label, aggregation in schemes.items():
        for payload in payload_sizes:
            for batch in batch_sizes:
                grid.append(
                    {
                        "name": f"fig3b-{aggregation}-{payload}b-B{batch}",
                        "aggregation": aggregation,
                        "batch_size": batch,
                        "committee": {"size": committee_size},
                        "workload": {"rate": saturation_load, "payload_size": payload},
                    }
                )
                cells.append({"scheme": label, "payload_bytes": payload, "batch_size": batch})
    results = sweep(base, grid, max_workers=max_workers)
    rows: List[Dict[str, object]] = []
    for cell, result in zip(cells, results):
        metrics = result.metrics
        rows.append(
            {
                **cell,
                "cpu_mean_pct": round(metrics.cpu_utilisation_mean * 100, 2),
                "cpu_max_pct": round(metrics.cpu_utilisation_max * 100, 2),
                "throughput_ops": round(metrics.throughput, 1),
            }
        )
    return rows
