"""Experiment harness reproducing the paper's evaluation (Figures 3 and 4).

Every figure has a dedicated module that defines the paper's
configurations, runs them on the discrete-event simulator and returns the
same series the paper plots:

* :mod:`repro.experiments.throughput` — Figure 3a (throughput vs latency).
* :mod:`repro.experiments.cpu` — Figure 3b (CPU usage).
* :mod:`repro.experiments.scalability` — Figure 3c (throughput vs replicas).
* :mod:`repro.experiments.resiliency` — Figure 4 (throughput, latency,
  failed views and QC sizes under crash faults).

Since the ``repro.api`` redesign every figure module is a declarative
grid of :class:`~repro.scenarios.spec.ScenarioSpec` cells (see
:mod:`repro.experiments.specs`) fanned out through
:func:`repro.api.sweep`; the security figures grid their Monte-Carlo
cells over the same :func:`repro.experiments.runner.parallel_map` pool.

:mod:`repro.experiments.runner` provides the generic building blocks:
deploy a committee on the simulator, attach a client workload and fault
plan, run for a configured duration and collect metrics.
:mod:`repro.experiments.export` turns result rows into CSV/JSON/Markdown
artifacts and terminal plots; the same machinery backs the
``python -m repro`` command-line interface.
"""

from repro.experiments.runner import (
    ExperimentResult,
    SweepSpec,
    build_deployment,
    parallel_map,
    run_experiment,
    run_sweep,
)
from repro.experiments.workloads import ClientWorkload
from repro.experiments.report import format_rows, series
from repro.experiments.export import FigureArtifact, ascii_plot

__all__ = [
    "ClientWorkload",
    "ExperimentResult",
    "FigureArtifact",
    "SweepSpec",
    "ascii_plot",
    "build_deployment",
    "format_rows",
    "parallel_map",
    "run_experiment",
    "run_sweep",
    "series",
]
