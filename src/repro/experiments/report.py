"""Reporting helpers for the experiment and benchmark harness.

Provides aligned plain-text tables (what the benchmarks print), grouping
into per-series point lists (the paper's plot format) and CSV/JSON export
so figure data can be post-processed or plotted outside this repository.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["format_rows", "series", "rows_to_csv", "rows_to_json"]


def format_rows(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render a list of uniform dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(_fmt(row.get(column))) for row in rows))
        for column in columns
    }
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(column)).ljust(widths[column]) for column in columns))
    return "\n".join(lines)


def series(rows: Iterable[Dict[str, object]], key: str, x: str, y: str) -> Dict[object, List[tuple]]:
    """Group rows into named (x, y) series, mirroring the paper's plots."""
    grouped: Dict[object, List[tuple]] = {}
    for row in rows:
        grouped.setdefault(row[key], []).append((row[x], row[y]))
    for points in grouped.values():
        points.sort()
    return grouped


def rows_to_csv(
    rows: Sequence[Dict[str, object]], path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise figure rows as CSV; optionally also write them to ``path``."""
    buffer = io.StringIO()
    if rows:
        writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()), lineterminator="\n")
        writer.writeheader()
        writer.writerows(rows)
    text = buffer.getvalue()
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def rows_to_json(
    rows: Sequence[Dict[str, object]], path: Optional[Union[str, Path]] = None
) -> str:
    """Serialise figure rows as pretty-printed JSON; optionally write to ``path``."""
    text = json.dumps(list(rows), indent=2, sort_keys=False, default=str)
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:.1f}"
    return str(value)
