"""Figure 2: security simulations (targeted vote omission and reward loss).

These wrappers assemble the same series the paper plots in Figure 2 from
the attack simulators in :mod:`repro.attacks`.  Each figure is a
declarative grid of independent, fully seeded Monte-Carlo cells that fan
out over worker processes via
:func:`repro.experiments.runner.parallel_map` — one cell per (variant,
attacker power / collateral) point, so the figures parallelize exactly
like the deployment sweeps do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.attacks.gosig_sim import GosigConfig, GosigSimulator
from repro.attacks.omission import analytic_star_omission, omission_probability
from repro.attacks.reward_sim import RewardAttackSimulator
from repro.core.rewards import RewardParams
from repro.experiments.runner import parallel_map

__all__ = ["figure_2a", "figure_2b", "figure_2c", "figure_2d"]

#: The Gosig variants plotted in Figures 2a and 2b.
GOSIG_VARIANTS = [
    {"label": "Gosig k=2", "k": 2, "free_riding": 0.0, "greedy": False},
    {"label": "Gosig k=2, free-riding", "k": 2, "free_riding": 0.3, "greedy": False},
    {"label": "Gosig k=2, greedy", "k": 2, "free_riding": 0.0, "greedy": True},
    {"label": "Gosig k=3", "k": 3, "free_riding": 0.0, "greedy": False},
    {"label": "Gosig k=3, free-riding", "k": 3, "free_riding": 0.3, "greedy": False},
]


# ---------------------------------------------------------------------------
# Cell runners (module-level so the grids pickle to worker processes)
# ---------------------------------------------------------------------------
def _omission_cell(cell: Dict[str, object]) -> Dict[str, object]:
    """One (protocol, x-value) point of Figure 2a/2b."""
    kind = cell["kind"]
    x_key = str(cell["x_key"])
    row: Dict[str, object] = {"protocol": cell["label"], x_key: cell[x_key]}
    if kind == "gosig":
        config = GosigConfig(
            committee_size=int(cell["committee_size"]),
            gossip_fanout=int(cell["k"]),
            attacker_power=float(cell["attacker_power"]),
            free_riding_fraction=float(cell["free_riding"]),
            greedy_leader=bool(cell["greedy"]),
        )
        collateral = cell.get("collateral")  # None = Figure 2a's 0-collateral rule
        outcome = GosigSimulator(config, seed=int(cell["seed"])).omission_probability(
            trials=int(cell["trials"]),
            collateral=None if collateral is None else int(collateral),
        )
        row["omission_probability"] = round(outcome.probability, 4)
    elif kind == "star":
        row["omission_probability"] = round(
            analytic_star_omission(float(cell["attacker_power"])), 4
        )
    else:  # iniva
        outcome = omission_probability(
            float(cell["attacker_power"]),
            collateral=int(cell.get("collateral", 0)),
            committee_size=int(cell["committee_size"]),
            num_internal=int(cell["num_internal"]),
            trials=int(cell["trials"]),
            seed=int(cell["seed"]),
        )
        row["omission_probability"] = round(outcome.probability, 4)
    return row


def _reward_2c_cell(cell: Dict[str, object]) -> List[Dict[str, object]]:
    """All attack variants for one attacker power of Figure 2c.

    The whole power column is one cell because the simulator's adversary
    RNG advances across campaigns — splitting it further would change the
    sampled rounds (and therefore the published numbers).
    """
    params = RewardParams(**cell["params"])
    simulator = RewardAttackSimulator(
        committee_size=int(cell["committee_size"]),
        num_internal=int(cell["num_internal"]),
        attacker_power=float(cell["attacker_power"]),
        params=params,
        seed=int(cell["seed"]),
    )
    rows: List[Dict[str, object]] = []
    for attack_label, attack in cell["attacks"]:
        iniva = simulator.run_iniva(attack, trials=int(cell["trials"]))
        star = simulator.run_star(attack, trials=int(cell["trials"]))
        rows.append(
            {
                "attack": attack_label,
                "attacker_power": cell["attacker_power"],
                "victim_fraction_iniva": round(iniva.victim_fraction_of_fair_share, 4),
                "victim_fraction_star": round(star.victim_fraction_of_fair_share, 4),
                "attacker_fraction_iniva": round(iniva.attacker_fraction_of_fair_share, 4),
                "attacker_fraction_star": round(star.attacker_fraction_of_fair_share, 4),
            }
        )
    return rows


def _reward_2d_cell(cell: Dict[str, object]) -> Dict[str, object]:
    """One (configuration, attacker power) point of Figure 2d."""
    params = RewardParams(**cell["params"])
    simulator = RewardAttackSimulator(
        committee_size=int(cell["committee_size"]),
        num_internal=int(cell["num_internal"]),
        attacker_power=float(cell["attacker_power"]),
        params=params,
        seed=int(cell["seed"]),
    )
    if cell["star"]:
        result = simulator.run_star("vote-omission", trials=int(cell["trials"]))
    else:
        result = simulator.run_iniva(
            "vote-omission", trials=int(cell["trials"]), unlimited_collateral=True
        )
    return {
        "configuration": cell["label"],
        "attacker_power": cell["attacker_power"],
        "victim_lost_pct_of_R": round(result.victim_lost_reward * 100, 3),
        "attacker_lost_pct_of_R": round(result.attacker_lost_reward * 100, 3),
    }


# ---------------------------------------------------------------------------
# Figures
# ---------------------------------------------------------------------------
def figure_2a(
    attacker_powers: Sequence[float] = (0.05, 0.10, 0.15),
    gosig_trials: int = 600,
    iniva_trials: int = 8000,
    committee_size_iniva: int = 111,
    committee_size_gosig: int = 100,
    num_internal: int = 10,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Vote-omission probability with collateral 0 (Figure 2a).

    Returns one row per (protocol variant, attacker power).
    """
    cells: List[Dict[str, object]] = []
    for m in attacker_powers:
        for variant in GOSIG_VARIANTS:
            cells.append(
                {
                    "kind": "gosig",
                    "x_key": "attacker_power",
                    "label": variant["label"],
                    "attacker_power": m,
                    "k": variant["k"],
                    "free_riding": variant["free_riding"],
                    "greedy": variant["greedy"],
                    "committee_size": committee_size_gosig,
                    "trials": gosig_trials,
                    "seed": seed,
                }
            )
        cells.append(
            {
                "kind": "star",
                "x_key": "attacker_power",
                "label": "Star protocol (round robin)",
                "attacker_power": m,
            }
        )
        cells.append(
            {
                "kind": "iniva",
                "x_key": "attacker_power",
                "label": "Iniva",
                "attacker_power": m,
                "committee_size": committee_size_iniva,
                "num_internal": num_internal,
                "trials": iniva_trials,
                "seed": seed,
            }
        )
    return parallel_map(_omission_cell, cells, max_workers=max_workers)


def figure_2b(
    collaterals: Sequence[int] = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
    attacker_power: float = 0.05,
    gosig_trials: int = 500,
    iniva_trials: int = 6000,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Vote omission with larger collateral, m = 5 % (Figure 2b)."""
    gosig_variants = [v for v in GOSIG_VARIANTS if not v["greedy"]]
    cells: List[Dict[str, object]] = []
    for collateral in collaterals:
        for variant in gosig_variants:
            cells.append(
                {
                    "kind": "gosig",
                    "x_key": "collateral",
                    "label": variant["label"],
                    "collateral": collateral,
                    "attacker_power": attacker_power,
                    "k": variant["k"],
                    "free_riding": variant["free_riding"],
                    "greedy": False,
                    "committee_size": 100,
                    "trials": gosig_trials,
                    "seed": seed,
                }
            )
        cells.append(
            {
                "kind": "star",
                "x_key": "collateral",
                "label": "Star protocol (round robin)",
                "collateral": collateral,
                "attacker_power": attacker_power,
            }
        )
        cells.append(
            {
                "kind": "iniva",
                "x_key": "collateral",
                "label": "Iniva",
                "collateral": collateral,
                "attacker_power": attacker_power,
                "committee_size": 111,
                "num_internal": 10,
                "trials": iniva_trials,
                "seed": seed,
            }
        )
    return parallel_map(_omission_cell, cells, max_workers=max_workers)


def figure_2c(
    attacker_powers: Sequence[float] = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
    trials: int = 800,
    committee_size: int = 111,
    num_internal: int = 10,
    params: Optional[RewardParams] = None,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Reward lost by victim and attacker under collateral-0 attacks (Figure 2c)."""
    params = params or RewardParams(leader_bonus=0.15, aggregation_bonus=0.02)
    attacks = [("vote omission", "vote-omission"), ("no vote", "vote-denial"), ("all attacks", "all")]
    cells = [
        {
            "attacker_power": m,
            "committee_size": committee_size,
            "num_internal": num_internal,
            "trials": trials,
            "seed": seed,
            "attacks": attacks,
            "params": _reward_params_dict(params),
        }
        for m in attacker_powers
    ]
    grouped = parallel_map(_reward_2c_cell, cells, max_workers=max_workers)
    return [row for group in grouped for row in group]


def figure_2d(
    attacker_powers: Sequence[float] = (0.10, 0.30),
    trials: int = 800,
    params: Optional[RewardParams] = None,
    seed: int = 1,
    max_workers: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Reward lost under large-collateral vote omission (Figure 2d).

    Compares Iniva with 4 and 10 internal nodes against the star baseline.
    """
    params = params or RewardParams(leader_bonus=0.15, aggregation_bonus=0.02)
    configurations = [
        ("Iniva (fanout=4)", 109, 4, False),
        ("Iniva (fanout=10)", 111, 10, False),
        ("Star", 111, 10, True),
    ]
    cells = [
        {
            "label": label,
            "attacker_power": m,
            "committee_size": committee_size,
            "num_internal": num_internal,
            "star": star,
            "trials": trials,
            "seed": seed,
            "params": _reward_params_dict(params),
        }
        for m in attacker_powers
        for label, committee_size, num_internal, star in configurations
    ]
    return parallel_map(_reward_2d_cell, cells, max_workers=max_workers)


def _reward_params_dict(params: RewardParams) -> Dict[str, float]:
    """RewardParams as picklable plain kwargs for the cell grids."""
    from dataclasses import asdict, is_dataclass

    if is_dataclass(params):
        return asdict(params)
    return dict(params.__dict__)
