"""Figure 2: security simulations (targeted vote omission and reward loss).

These wrappers assemble the same series the paper plots in Figure 2 from
the attack simulators in :mod:`repro.attacks`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.attacks.gosig_sim import GosigConfig, GosigSimulator
from repro.attacks.omission import analytic_star_omission, omission_probability
from repro.attacks.reward_sim import RewardAttackSimulator
from repro.core.rewards import RewardParams

__all__ = ["figure_2a", "figure_2b", "figure_2c", "figure_2d"]

#: The Gosig variants plotted in Figures 2a and 2b.
GOSIG_VARIANTS = [
    {"label": "Gosig k=2", "k": 2, "free_riding": 0.0, "greedy": False},
    {"label": "Gosig k=2, free-riding", "k": 2, "free_riding": 0.3, "greedy": False},
    {"label": "Gosig k=2, greedy", "k": 2, "free_riding": 0.0, "greedy": True},
    {"label": "Gosig k=3", "k": 3, "free_riding": 0.0, "greedy": False},
    {"label": "Gosig k=3, free-riding", "k": 3, "free_riding": 0.3, "greedy": False},
]


def figure_2a(
    attacker_powers: Sequence[float] = (0.05, 0.10, 0.15),
    gosig_trials: int = 600,
    iniva_trials: int = 8000,
    committee_size_iniva: int = 111,
    committee_size_gosig: int = 100,
    num_internal: int = 10,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Vote-omission probability with collateral 0 (Figure 2a).

    Returns one row per (protocol variant, attacker power).
    """
    rows: List[Dict[str, object]] = []
    for m in attacker_powers:
        for variant in GOSIG_VARIANTS:
            config = GosigConfig(
                committee_size=committee_size_gosig,
                gossip_fanout=int(variant["k"]),
                attacker_power=m,
                free_riding_fraction=float(variant["free_riding"]),
                greedy_leader=bool(variant["greedy"]),
            )
            outcome = GosigSimulator(config, seed=seed).omission_probability(trials=gosig_trials)
            rows.append(
                {"protocol": variant["label"], "attacker_power": m, "omission_probability": round(outcome.probability, 4)}
            )
        rows.append(
            {
                "protocol": "Star protocol (round robin)",
                "attacker_power": m,
                "omission_probability": round(analytic_star_omission(m), 4),
            }
        )
        iniva = omission_probability(
            m,
            collateral=0,
            committee_size=committee_size_iniva,
            num_internal=num_internal,
            trials=iniva_trials,
            seed=seed,
        )
        rows.append(
            {"protocol": "Iniva", "attacker_power": m, "omission_probability": round(iniva.probability, 4)}
        )
    return rows


def figure_2b(
    collaterals: Sequence[int] = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
    attacker_power: float = 0.05,
    gosig_trials: int = 500,
    iniva_trials: int = 6000,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Vote omission with larger collateral, m = 5 % (Figure 2b)."""
    rows: List[Dict[str, object]] = []
    gosig_variants = [v for v in GOSIG_VARIANTS if not v["greedy"]]
    for collateral in collaterals:
        for variant in gosig_variants:
            config = GosigConfig(
                gossip_fanout=int(variant["k"]),
                attacker_power=attacker_power,
                free_riding_fraction=float(variant["free_riding"]),
            )
            outcome = GosigSimulator(config, seed=seed).omission_probability(
                trials=gosig_trials, collateral=collateral
            )
            rows.append(
                {"protocol": variant["label"], "collateral": collateral, "omission_probability": round(outcome.probability, 4)}
            )
        rows.append(
            {
                "protocol": "Star protocol (round robin)",
                "collateral": collateral,
                "omission_probability": round(analytic_star_omission(attacker_power), 4),
            }
        )
        iniva = omission_probability(
            attacker_power, collateral=collateral, trials=iniva_trials, seed=seed
        )
        rows.append(
            {"protocol": "Iniva", "collateral": collateral, "omission_probability": round(iniva.probability, 4)}
        )
    return rows


def figure_2c(
    attacker_powers: Sequence[float] = (0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
    trials: int = 800,
    committee_size: int = 111,
    num_internal: int = 10,
    params: Optional[RewardParams] = None,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Reward lost by victim and attacker under collateral-0 attacks (Figure 2c)."""
    params = params or RewardParams(leader_bonus=0.15, aggregation_bonus=0.02)
    attacks = [("vote omission", "vote-omission"), ("no vote", "vote-denial"), ("all attacks", "all")]
    rows: List[Dict[str, object]] = []
    for m in attacker_powers:
        simulator = RewardAttackSimulator(
            committee_size=committee_size,
            num_internal=num_internal,
            attacker_power=m,
            params=params,
            seed=seed,
        )
        for attack_label, attack in attacks:
            iniva = simulator.run_iniva(attack, trials=trials)
            star = simulator.run_star(attack, trials=trials)
            rows.append(
                {
                    "attack": attack_label,
                    "attacker_power": m,
                    "victim_fraction_iniva": round(iniva.victim_fraction_of_fair_share, 4),
                    "victim_fraction_star": round(star.victim_fraction_of_fair_share, 4),
                    "attacker_fraction_iniva": round(iniva.attacker_fraction_of_fair_share, 4),
                    "attacker_fraction_star": round(star.attacker_fraction_of_fair_share, 4),
                }
            )
    return rows


def figure_2d(
    attacker_powers: Sequence[float] = (0.10, 0.30),
    trials: int = 800,
    params: Optional[RewardParams] = None,
    seed: int = 1,
) -> List[Dict[str, object]]:
    """Reward lost under large-collateral vote omission (Figure 2d).

    Compares Iniva with 4 and 10 internal nodes against the star baseline.
    """
    params = params or RewardParams(leader_bonus=0.15, aggregation_bonus=0.02)
    configurations = [
        ("Iniva (fanout=4)", 109, 4),
        ("Iniva (fanout=10)", 111, 10),
        ("Star", 111, None),
    ]
    rows: List[Dict[str, object]] = []
    for m in attacker_powers:
        for label, committee_size, num_internal in configurations:
            simulator = RewardAttackSimulator(
                committee_size=committee_size,
                num_internal=num_internal or 10,
                attacker_power=m,
                params=params,
                seed=seed,
            )
            if num_internal is None:
                result = simulator.run_star("vote-omission", trials=trials)
            else:
                result = simulator.run_iniva(
                    "vote-omission", trials=trials, unlimited_collateral=True
                )
            rows.append(
                {
                    "configuration": label,
                    "attacker_power": m,
                    "victim_lost_pct_of_R": round(result.victim_lost_reward * 100, 3),
                    "attacker_lost_pct_of_R": round(result.attacker_lost_reward * 100, 3),
                }
            )
    return rows
