"""BLS multi-signatures over a supersingular curve (pure Python).

Implements the original Boneh-Lynn-Shacham signature scheme with the
symmetric Tate pairing from :mod:`repro.crypto.pairing`:

* secret key ``sk`` is a scalar modulo the subgroup order ``r``;
* public key is ``PK = sk * G``;
* a signature on message ``m`` is ``sigma = sk * H(m)`` where ``H`` hashes
  into the prime-order subgroup;
* verification checks ``e(sigma, G) == e(H(m), PK)``.

Aggregation of signatures on the *same* message is point addition; a share
included with multiplicity ``k`` is simply added ``k`` times, and the
aggregate verifies against the multiplicity-weighted sum of public keys.
This is exactly the multiplicity trick Iniva's reward scheme uses to prove
whether a vote travelled through tree aggregation or a 2ND-CHANCE path.

Indivisibility — the infeasibility of extracting an individual ``sigma_i``
from an aggregate — is the k-element aggregate extraction assumption shown
equivalent to Diffie-Hellman by Coron and Naccache (paper reference [33]).

Performance notes: message hashing is memoised module-wide in
:func:`repro.crypto.curve.hash_to_point`; pairing evaluations are memoised
per scheme instance (a replica re-verifying the share another replica
already checked pays a dict lookup, not two Miller loops); and
:meth:`BlsMultiSig.verify_batch` checks ``k`` shares on one message with a
random-linear-combination equation costing two pairings instead of ``2k``.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.crypto.curve import Point, generator, hash_to_point, multi_scalar_mult
from repro.crypto.field import Fp2
from repro.crypto.keys import KeyPair
from repro.crypto.multisig import (
    AggregateSignature,
    Contribution,
    MultiSignatureScheme,
    SignatureShare,
    _tally_multiplicities,
    normalize_contributions,
    register_scheme,
)
from repro.crypto.pairing import tate_check, tate_pairing
from repro.crypto.params import DEFAULT_PARAMS, CurveParams

__all__ = ["BlsMultiSig"]


@register_scheme
class BlsMultiSig(MultiSignatureScheme):
    """Pairing-based indivisible multi-signature backend."""

    name = "bls"

    #: Upper bound on memoised pairings; the cache is cleared when full.
    PAIRING_CACHE_MAX = 4096

    def __init__(self, params: Optional[CurveParams] = None) -> None:
        self.params = params or DEFAULT_PARAMS
        self._generator = generator(self.params)
        self._pairing_cache: Dict[Tuple[bytes, bytes], Fp2] = {}
        self._weighted_key_cache: Dict[Tuple[Tuple[bytes, int], ...], Point] = {}
        self._aggregate_cache: Dict[Tuple[bytes, Tuple[Tuple[bytes, int], ...], bytes], bool] = {}

    # -- key management ----------------------------------------------------
    def keygen(self, seed: int) -> KeyPair:
        material = hashlib.sha256(b"iniva-bls-sk" + seed.to_bytes(16, "big", signed=True)).digest()
        secret = (int.from_bytes(material, "big") % (self.params.r - 1)) + 1
        public = self._generator * secret
        return KeyPair(secret_key=secret, public_key=public)

    # -- signing -----------------------------------------------------------
    def _hash_message(self, message: bytes) -> Point:
        return hash_to_point(message, self.params)

    def _pairing(self, left: Point, right: Point) -> Fp2:
        """Memoised Tate pairing.

        Fixed argument pairs — ``e(sigma, G)`` for a share every replica
        verifies, ``e(H(m), PK)`` for a fixed message/signer pair — repeat
        constantly in committee simulations, so the full pairing is cached
        keyed on the two points' canonical encodings.
        """
        key = (left.to_bytes(), right.to_bytes())
        cached = self._pairing_cache.get(key)
        if cached is None:
            cached = tate_pairing(left, right)
            if len(self._pairing_cache) >= self.PAIRING_CACHE_MAX:
                self._pairing_cache.clear()
            self._pairing_cache[key] = cached
        return cached

    def sign(self, secret_key: int, message: bytes, signer: int) -> SignatureShare:
        point = self._hash_message(message) * secret_key
        return SignatureShare(signer=signer, value=point)

    def verify_share(self, share: SignatureShare, message: bytes, public_key: Point) -> bool:
        if not isinstance(share.value, Point) or share.value.is_infinity:
            return False
        if not share.value.is_on_curve():
            return False
        # Generator first: its Miller ladder is cached once, forever.
        lhs = self._pairing(self._generator, share.value)
        rhs = self._pairing(self._hash_message(message), public_key)
        return lhs == rhs

    def verify_batch(
        self,
        shares: Iterable[SignatureShare],
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        """Verify ``k`` shares on one message with ~2 pairings instead of 2k.

        Uses the standard random-linear-combination check: with
        coefficients ``c_i`` drawn (deterministically, Fiat-Shamir style)
        from the shares themselves,

            e(sum_i c_i * sigma_i, G) == e(H(m), sum_i c_i * PK_i)

        holds for honest shares by bilinearity, while a forged share
        passes only with probability ~1/r.  Returns ``True`` for an empty
        batch.
        """
        shares = list(shares)
        if not shares:
            return True
        if len(shares) == 1:
            share = shares[0]
            key = public_keys.get(share.signer)
            return key is not None and self.verify_share(share, message, key)
        transcript = hashlib.sha256(b"iniva-bls-batch" + message)
        values = []
        for share in shares:
            if share.signer not in public_keys:
                return False
            value = share.value
            if not isinstance(value, Point) or value.is_infinity or not value.is_on_curve():
                return False
            values.append(value)
            transcript.update(share.signer.to_bytes(8, "big", signed=True))
            transcript.update(value.to_bytes())
        keys = [public_keys[share.signer] for share in shares]
        return self._rlc_check(values, keys, transcript.digest(), message)

    def _weighted_key(
        self, aggregate: AggregateSignature, public_keys: Mapping[int, Any]
    ) -> Optional[Point]:
        """The multiplicity-weighted public-key sum for ``aggregate``.

        Memoised on the (key bytes, multiplicity) multiset — tree shapes
        repeat across blocks, so after warm-up this is a dict hit instead
        of per-signer scalar multiplications.  ``None`` marks malformed
        multiplicities (non-positive weight or unknown signer).
        """
        entries = []
        for signer, mult in sorted(aggregate.multiplicities.items()):
            key = public_keys.get(signer)
            if mult <= 0 or key is None:
                return None
            entries.append((key.to_bytes(), mult))
        weight_key = tuple(entries)
        weighted = self._weighted_key_cache.get(weight_key)
        if weighted is None:
            weighted = Point.infinity(self.params)
            for signer, mult in aggregate.multiplicities.items():
                weighted = weighted + public_keys[signer] * mult
            if len(self._weighted_key_cache) >= self.PAIRING_CACHE_MAX:
                self._weighted_key_cache.clear()
            self._weighted_key_cache[weight_key] = weighted
        return weighted

    def verify_contributions(
        self,
        parts: Iterable[Any],
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        """RLC-verify a mixed bag of shares and aggregates with ~2 pairings.

        The batched share check generalises: an aggregate ``A_i`` with
        weighted key ``apk_i`` satisfies ``e(A_i, G) == e(H(m), apk_i)``
        exactly like a share does with its signer key, so one
        random-linear-combination equation

            e(sum_i c_i * V_i, G) == e(H(m), sum_i c_i * K_i)

        covers the whole bag — the tree root validates a quorum's worth of
        direct shares *and* internal aggregates with two pairings total.
        """
        parts = list(parts)
        if not parts:
            return True
        if len(parts) == 1:
            part = parts[0]
            if isinstance(part, SignatureShare):
                key = public_keys.get(part.signer)
                return key is not None and self.verify_share(part, message, key)
            if isinstance(part, AggregateSignature):
                return self.verify_aggregate(part, message, public_keys)
            return False
        transcript = hashlib.sha256(b"iniva-bls-mixed" + message)
        values = []
        keys = []
        for part in parts:
            value = getattr(part, "value", None)
            if not isinstance(value, Point) or value.is_infinity or not value.is_on_curve():
                return False
            if isinstance(part, SignatureShare):
                key = public_keys.get(part.signer)
                if key is None:
                    return False
                transcript.update(b"s" + part.signer.to_bytes(8, "big", signed=True))
            elif isinstance(part, AggregateSignature):
                key = self._weighted_key(part, public_keys)
                if key is None:
                    return False
                transcript.update(b"a" + key.to_bytes())
            else:
                return False
            transcript.update(value.to_bytes())
            values.append(value)
            keys.append(key)
        return self._rlc_check(values, keys, transcript.digest(), message)

    def _rlc_check(self, values, keys, seed: bytes, message: bytes) -> bool:
        """The shared random-linear-combination equation (two pairings).

        Coefficients are 64-bit (small-exponent test): the forgery
        probability stays at ~2^-64 while the combination's scalar
        multiplications are ~2.5x cheaper than full 160-bit scalars, and
        both combinations run through :func:`multi_scalar_mult` so the
        doubling ladder is shared across the whole batch.
        """
        coeffs = [
            int.from_bytes(
                hashlib.sha256(seed + index.to_bytes(4, "big")).digest()[:8], "big"
            )
            + 1
            for index in range(len(values))
        ]
        combined_sig = multi_scalar_mult(list(zip(values, coeffs)), self.params)
        combined_key = multi_scalar_mult(list(zip(keys, coeffs)), self.params)
        # Generator and H(m) first: both Miller ladders are cache hits (the
        # generator's always, the message hash's within the block), and
        # tate_check reduces the quotient once instead of both sides.
        return tate_check(
            self._generator, combined_sig, self._hash_message(message), combined_key
        )

    # -- aggregation -------------------------------------------------------
    def aggregate(self, parts: Iterable[Contribution]) -> AggregateSignature:
        parts = normalize_contributions(parts)
        multiplicities = _tally_multiplicities(parts)
        total = Point.infinity(self.params)
        for part, weight in parts:
            value = part.value
            if not isinstance(value, Point):
                raise TypeError("BLS aggregation requires curve-point signature values")
            # weight == 1 is the overwhelmingly common case (a 2ND-CHANCE
            # double-count is the exception): plain addition, no scalar mult.
            total = total + (value if weight == 1 else value * weight)
        return AggregateSignature(value=total, multiplicities=multiplicities)

    def _aggregate_key(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> Optional[Tuple[bytes, Tuple[Tuple[bytes, int], ...], bytes]]:
        """Canonical memo key for one aggregate verification, or ``None``
        when the multiplicities are malformed (non-positive or unknown
        signer) and verification must fail outright."""
        entries = []
        for signer, mult in sorted(aggregate.multiplicities.items()):
            key = public_keys.get(signer)
            if mult <= 0 or key is None:
                return None
            entries.append((key.to_bytes(), mult))
        return (aggregate.value.to_bytes(), tuple(entries), message)

    def trust_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> None:
        """Seed the verified-aggregate memo with a collector-built value.

        The collector verified every contribution before folding it in, so
        by bilinearity the sum verifies; recording that here means the
        QC's first :meth:`verify_aggregate` is a dict hit instead of two
        fresh pairings.
        """
        if not isinstance(aggregate.value, Point) or not aggregate.multiplicities:
            return
        cache_key = self._aggregate_key(aggregate, message, public_keys)
        if cache_key is None:
            return
        if len(self._aggregate_cache) >= self.PAIRING_CACHE_MAX:
            self._aggregate_cache.clear()
        self._aggregate_cache[cache_key] = True

    def verify_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        if not isinstance(aggregate.value, Point):
            return False
        if not aggregate.multiplicities:
            return aggregate.value.is_infinity
        # Verified-result memo: the hot path re-verifies the same aggregate
        # many times (every replica checks the QC embedded in a proposal,
        # the tree root checks each internal aggregate it forwards, ...).
        # A verification is a pure function of (value, weighted keys,
        # message), so the result can be served from a dict after the first
        # full check — the standard verified-signature cache of production
        # consensus implementations.  Keys are canonical byte encodings, so
        # the memo stays sound even if one scheme instance serves several
        # committees.
        cache_key = self._aggregate_key(aggregate, message, public_keys)
        if cache_key is None:
            return False
        weight_key = cache_key[1]
        cached = self._aggregate_cache.get(cache_key)
        if cached is not None:
            return cached
        # The multiplicity-weighted key sum only depends on the (key,
        # multiplicity) multiset, which repeats across blocks (the tree
        # shapes are few), so the scalar multiplications are memoised
        # separately from the pairings.
        weighted_key = self._weighted_key_cache.get(weight_key)
        if weighted_key is None:
            weighted_key = Point.infinity(self.params)
            for signer, mult in aggregate.multiplicities.items():
                weighted_key = weighted_key + public_keys[signer] * mult
            if len(self._weighted_key_cache) >= self.PAIRING_CACHE_MAX:
                self._weighted_key_cache.clear()
            self._weighted_key_cache[weight_key] = weighted_key
        lhs = self._pairing(self._generator, aggregate.value)
        rhs = self._pairing(self._hash_message(message), weighted_key)
        result = lhs == rhs
        if len(self._aggregate_cache) >= self.PAIRING_CACHE_MAX:
            self._aggregate_cache.clear()
        self._aggregate_cache[cache_key] = result
        return result
