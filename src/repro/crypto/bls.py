"""BLS multi-signatures over a supersingular curve (pure Python).

Implements the original Boneh-Lynn-Shacham signature scheme with the
symmetric Tate pairing from :mod:`repro.crypto.pairing`:

* secret key ``sk`` is a scalar modulo the subgroup order ``r``;
* public key is ``PK = sk * G``;
* a signature on message ``m`` is ``sigma = sk * H(m)`` where ``H`` hashes
  into the prime-order subgroup;
* verification checks ``e(sigma, G) == e(H(m), PK)``.

Aggregation of signatures on the *same* message is point addition; a share
included with multiplicity ``k`` is simply added ``k`` times, and the
aggregate verifies against the multiplicity-weighted sum of public keys.
This is exactly the multiplicity trick Iniva's reward scheme uses to prove
whether a vote travelled through tree aggregation or a 2ND-CHANCE path.

Indivisibility — the infeasibility of extracting an individual ``sigma_i``
from an aggregate — is the k-element aggregate extraction assumption shown
equivalent to Diffie-Hellman by Coron and Naccache (paper reference [33]).

Performance notes: message hashing is memoised module-wide in
:func:`repro.crypto.curve.hash_to_point`; pairing evaluations are memoised
per scheme instance (a replica re-verifying the share another replica
already checked pays a dict lookup, not two Miller loops); and
:meth:`BlsMultiSig.verify_batch` checks ``k`` shares on one message with a
random-linear-combination equation costing two pairings instead of ``2k``.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.crypto.curve import Point, generator, hash_to_point
from repro.crypto.field import Fp2
from repro.crypto.keys import KeyPair
from repro.crypto.multisig import (
    AggregateSignature,
    Contribution,
    MultiSignatureScheme,
    SignatureShare,
    _tally_multiplicities,
    normalize_contributions,
    register_scheme,
)
from repro.crypto.pairing import tate_pairing
from repro.crypto.params import DEFAULT_PARAMS, CurveParams

__all__ = ["BlsMultiSig"]


@register_scheme
class BlsMultiSig(MultiSignatureScheme):
    """Pairing-based indivisible multi-signature backend."""

    name = "bls"

    #: Upper bound on memoised pairings; the cache is cleared when full.
    PAIRING_CACHE_MAX = 4096

    def __init__(self, params: Optional[CurveParams] = None) -> None:
        self.params = params or DEFAULT_PARAMS
        self._generator = generator(self.params)
        self._pairing_cache: Dict[Tuple[bytes, bytes], Fp2] = {}

    # -- key management ----------------------------------------------------
    def keygen(self, seed: int) -> KeyPair:
        material = hashlib.sha256(b"iniva-bls-sk" + seed.to_bytes(16, "big", signed=True)).digest()
        secret = (int.from_bytes(material, "big") % (self.params.r - 1)) + 1
        public = self._generator * secret
        return KeyPair(secret_key=secret, public_key=public)

    # -- signing -----------------------------------------------------------
    def _hash_message(self, message: bytes) -> Point:
        return hash_to_point(message, self.params)

    def _pairing(self, left: Point, right: Point) -> Fp2:
        """Memoised Tate pairing.

        Fixed argument pairs — ``e(sigma, G)`` for a share every replica
        verifies, ``e(H(m), PK)`` for a fixed message/signer pair — repeat
        constantly in committee simulations, so the full pairing is cached
        keyed on the two points' canonical encodings.
        """
        key = (left.to_bytes(), right.to_bytes())
        cached = self._pairing_cache.get(key)
        if cached is None:
            cached = tate_pairing(left, right)
            if len(self._pairing_cache) >= self.PAIRING_CACHE_MAX:
                self._pairing_cache.clear()
            self._pairing_cache[key] = cached
        return cached

    def sign(self, secret_key: int, message: bytes, signer: int) -> SignatureShare:
        point = self._hash_message(message) * secret_key
        return SignatureShare(signer=signer, value=point)

    def verify_share(self, share: SignatureShare, message: bytes, public_key: Point) -> bool:
        if not isinstance(share.value, Point) or share.value.is_infinity:
            return False
        if not share.value.is_on_curve():
            return False
        lhs = self._pairing(share.value, self._generator)
        rhs = self._pairing(self._hash_message(message), public_key)
        return lhs == rhs

    def verify_batch(
        self,
        shares: Iterable[SignatureShare],
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        """Verify ``k`` shares on one message with ~2 pairings instead of 2k.

        Uses the standard random-linear-combination check: with
        coefficients ``c_i`` drawn (deterministically, Fiat-Shamir style)
        from the shares themselves,

            e(sum_i c_i * sigma_i, G) == e(H(m), sum_i c_i * PK_i)

        holds for honest shares by bilinearity, while a forged share
        passes only with probability ~1/r.  Returns ``True`` for an empty
        batch.
        """
        shares = list(shares)
        if not shares:
            return True
        if len(shares) == 1:
            share = shares[0]
            key = public_keys.get(share.signer)
            return key is not None and self.verify_share(share, message, key)
        transcript = hashlib.sha256(b"iniva-bls-batch" + message)
        values = []
        for share in shares:
            if share.signer not in public_keys:
                return False
            value = share.value
            if not isinstance(value, Point) or value.is_infinity or not value.is_on_curve():
                return False
            values.append(value)
            transcript.update(share.signer.to_bytes(8, "big", signed=True))
            transcript.update(value.to_bytes())
        seed = transcript.digest()
        combined_sig = Point.infinity(self.params)
        combined_key = Point.infinity(self.params)
        for index, share in enumerate(shares):
            digest = hashlib.sha256(seed + index.to_bytes(4, "big")).digest()
            coeff = int.from_bytes(digest, "big") % (self.params.r - 1) + 1
            combined_sig = combined_sig + values[index] * coeff
            combined_key = combined_key + public_keys[share.signer] * coeff
        lhs = tate_pairing(combined_sig, self._generator)
        rhs = tate_pairing(self._hash_message(message), combined_key)
        return lhs == rhs

    # -- aggregation -------------------------------------------------------
    def aggregate(self, parts: Iterable[Contribution]) -> AggregateSignature:
        parts = normalize_contributions(parts)
        multiplicities = _tally_multiplicities(parts)
        total = Point.infinity(self.params)
        for part, weight in parts:
            value = part.value
            if not isinstance(value, Point):
                raise TypeError("BLS aggregation requires curve-point signature values")
            total = total + value * weight
        return AggregateSignature(value=total, multiplicities=multiplicities)

    def verify_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        if not isinstance(aggregate.value, Point):
            return False
        if not aggregate.multiplicities:
            return aggregate.value.is_infinity
        weighted_key = Point.infinity(self.params)
        for signer, mult in aggregate.multiplicities.items():
            if mult <= 0 or signer not in public_keys:
                return False
            weighted_key = weighted_key + public_keys[signer] * mult
        lhs = self._pairing(aggregate.value, self._generator)
        rhs = self._pairing(self._hash_message(message), weighted_key)
        return lhs == rhs
