"""BLS multi-signatures over a supersingular curve (pure Python).

Implements the original Boneh-Lynn-Shacham signature scheme with the
symmetric Tate pairing from :mod:`repro.crypto.pairing`:

* secret key ``sk`` is a scalar modulo the subgroup order ``r``;
* public key is ``PK = sk * G``;
* a signature on message ``m`` is ``sigma = sk * H(m)`` where ``H`` hashes
  into the prime-order subgroup;
* verification checks ``e(sigma, G) == e(H(m), PK)``.

Aggregation of signatures on the *same* message is point addition; a share
included with multiplicity ``k`` is simply added ``k`` times, and the
aggregate verifies against the multiplicity-weighted sum of public keys.
This is exactly the multiplicity trick Iniva's reward scheme uses to prove
whether a vote travelled through tree aggregation or a 2ND-CHANCE path.

Indivisibility — the infeasibility of extracting an individual ``sigma_i``
from an aggregate — is the k-element aggregate extraction assumption shown
equivalent to Diffie-Hellman by Coron and Naccache (paper reference [33]).
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Mapping, Optional

from repro.crypto.curve import Point, generator, hash_to_point
from repro.crypto.keys import KeyPair
from repro.crypto.multisig import (
    AggregateSignature,
    Contribution,
    MultiSignatureScheme,
    SignatureShare,
    combined_multiplicities,
    register_scheme,
)
from repro.crypto.pairing import tate_pairing
from repro.crypto.params import DEFAULT_PARAMS, CurveParams

__all__ = ["BlsMultiSig"]


@register_scheme
class BlsMultiSig(MultiSignatureScheme):
    """Pairing-based indivisible multi-signature backend."""

    name = "bls"

    def __init__(self, params: Optional[CurveParams] = None) -> None:
        self.params = params or DEFAULT_PARAMS
        self._generator = generator(self.params)
        self._hash_cache: dict[bytes, Point] = {}

    # -- key management ----------------------------------------------------
    def keygen(self, seed: int) -> KeyPair:
        material = hashlib.sha256(b"iniva-bls-sk" + seed.to_bytes(16, "big", signed=True)).digest()
        secret = (int.from_bytes(material, "big") % (self.params.r - 1)) + 1
        public = self._generator * secret
        return KeyPair(secret_key=secret, public_key=public)

    # -- signing -----------------------------------------------------------
    def _hash_message(self, message: bytes) -> Point:
        cached = self._hash_cache.get(message)
        if cached is None:
            cached = hash_to_point(message, self.params)
            self._hash_cache[message] = cached
        return cached

    def sign(self, secret_key: int, message: bytes, signer: int) -> SignatureShare:
        point = self._hash_message(message) * secret_key
        return SignatureShare(signer=signer, value=point)

    def verify_share(self, share: SignatureShare, message: bytes, public_key: Point) -> bool:
        if not isinstance(share.value, Point) or share.value.is_infinity:
            return False
        if not share.value.is_on_curve():
            return False
        lhs = tate_pairing(share.value, self._generator)
        rhs = tate_pairing(self._hash_message(message), public_key)
        return lhs == rhs

    # -- aggregation -------------------------------------------------------
    def aggregate(self, parts: Iterable[Contribution]) -> AggregateSignature:
        parts = list(parts)
        multiplicities = combined_multiplicities(parts)
        total = Point.infinity(self.params)
        for part, weight in parts:
            value = part.value if isinstance(part, SignatureShare) else part.value
            if not isinstance(value, Point):
                raise TypeError("BLS aggregation requires curve-point signature values")
            total = total + value * weight
        return AggregateSignature(value=total, multiplicities=multiplicities)

    def verify_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        if not isinstance(aggregate.value, Point):
            return False
        if not aggregate.multiplicities:
            return aggregate.value.is_infinity
        weighted_key = Point.infinity(self.params)
        for signer, mult in aggregate.multiplicities.items():
            if mult <= 0 or signer not in public_keys:
                return False
            weighted_key = weighted_key + public_keys[signer] * mult
        lhs = tate_pairing(aggregate.value, self._generator)
        rhs = tate_pairing(self._hash_message(message), weighted_key)
        return lhs == rhs
