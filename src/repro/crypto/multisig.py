"""Abstract interface for indivisible multi-signature schemes.

The paper's protocols only require four operations: sign a message,
verify an individual share, aggregate shares/aggregates *with
multiplicities*, and verify an aggregate against the claimed
multiplicities.  Crucially the interface exposes **no** operation that
removes a signer from an aggregate — that is the *indivisibility*
property Iniva relies on (Section III of the paper).
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, Iterable, List, Mapping, Tuple, Union

__all__ = [
    "SignatureShare",
    "AggregateSignature",
    "MultiSignatureScheme",
    "HashSigMultiSig",
    "get_scheme",
    "register_scheme",
    "normalize_contributions",
    "combined_multiplicities",
]


@dataclass(frozen=True)
class SignatureShare:
    """A single signer's signature on a message.

    Attributes:
        signer: The integer identity of the signing process.
        value: Backend-specific opaque signature value.
    """

    signer: int
    value: Any


@dataclass(frozen=True)
class AggregateSignature:
    """An aggregate of signature shares on one message.

    Attributes:
        value: Backend-specific opaque aggregate value.  By the
            indivisibility assumption no component share can be recovered
            from it.
        multiplicities: Mapping ``signer -> multiplicity`` describing how
            many times each signer's share was folded into the aggregate.
            This is the metadata Iniva's reward scheme inspects to tell
            tree aggregation apart from 2ND-CHANCE fallback inclusion.
    """

    value: Any
    multiplicities: Mapping[int, int] = field(default_factory=dict)

    @cached_property
    def signers(self) -> frozenset[int]:
        """The set of signers with non-zero multiplicity."""
        return frozenset(s for s, m in self.multiplicities.items() if m > 0)

    def multiplicity(self, signer: int) -> int:
        return self.multiplicities.get(signer, 0)

    def __contains__(self, signer: int) -> bool:
        return self.multiplicity(signer) > 0

    def __len__(self) -> int:
        return len(self.signers)


Contribution = Tuple[Union[SignatureShare, AggregateSignature], int]


def normalize_contributions(
    parts: Iterable[Union[Contribution, SignatureShare, AggregateSignature]],
) -> List[Contribution]:
    """Coerce a mixed iterable of contributions into ``(part, weight)`` pairs.

    Accepts bare shares and bare aggregates (implicit weight one) alongside
    explicit ``(share_or_aggregate, weight)`` pairs, so callers can hand an
    aggregation backend whatever collection they naturally hold.  Weights
    must be positive integers; anything unrecognised raises ``TypeError``.
    """
    normalized: List[Contribution] = []
    for item in parts:
        if isinstance(item, (SignatureShare, AggregateSignature)):
            normalized.append((item, 1))
            continue
        if isinstance(item, (tuple, list)) and len(item) == 2:
            part, weight = item
            if isinstance(part, (SignatureShare, AggregateSignature)):
                if not isinstance(weight, int) or isinstance(weight, bool):
                    raise TypeError(
                        f"contribution weight must be an int, got {type(weight)!r}"
                    )
                if weight <= 0:
                    raise ValueError("contribution weights must be positive integers")
                normalized.append((part, weight))
                continue
        raise TypeError(f"unsupported contribution type: {type(item)!r}")
    return normalized


def _tally_multiplicities(parts: Iterable[Contribution]) -> Dict[int, int]:
    """Sum signer multiplicities of already-normalized contributions."""
    total: Counter[int] = Counter()
    for part, weight in parts:
        if isinstance(part, SignatureShare):
            total[part.signer] += weight
        else:
            for signer, mult in part.multiplicities.items():
                total[signer] += mult * weight
    return dict(total)


def combined_multiplicities(
    parts: Iterable[Union[Contribution, SignatureShare, AggregateSignature]],
) -> Dict[int, int]:
    """Sum the signer multiplicities of weighted contributions.

    Each contribution is a ``(share_or_aggregate, weight)`` pair or a bare
    share/aggregate (weight one — see :func:`normalize_contributions`); an
    individual share counts as multiplicity one before weighting.
    """
    return _tally_multiplicities(normalize_contributions(parts))


class MultiSignatureScheme(ABC):
    """Interface shared by the BLS and hash-based backends."""

    #: Human-readable backend name used by :func:`get_scheme`.
    name: str = "abstract"

    @abstractmethod
    def keygen(self, seed: int) -> "KeyPair":
        """Deterministically derive a key pair from ``seed``."""

    @abstractmethod
    def sign(self, secret_key: Any, message: bytes, signer: int) -> SignatureShare:
        """Sign ``message`` with ``secret_key`` on behalf of ``signer``."""

    @abstractmethod
    def verify_share(self, share: SignatureShare, message: bytes, public_key: Any) -> bool:
        """Verify an individual signature share."""

    @abstractmethod
    def aggregate(self, parts: Iterable[Contribution]) -> AggregateSignature:
        """Aggregate weighted shares and aggregates into one signature.

        The returned aggregate's multiplicities are the weighted sums of
        the inputs' multiplicities; the opaque value is combined in a way
        the backend can later verify against those multiplicities.
        """

    @abstractmethod
    def verify_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        """Verify an aggregate against the claimed signer multiplicities."""

    def verify_batch(
        self,
        shares: Iterable[SignatureShare],
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        """Verify many shares on one message; ``True`` iff all are valid.

        The default checks each share individually; backends with a
        cheaper combined equation (BLS random-linear-combination batching)
        override this.  An empty batch verifies trivially.
        """
        for share in shares:
            key = public_keys.get(share.signer)
            if key is None or not self.verify_share(share, message, key):
                return False
        return True

    def verify_contributions(
        self,
        parts: Iterable[Union[SignatureShare, AggregateSignature]],
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        """Verify a mixed bag of shares and aggregates on one message.

        ``True`` iff every part is valid.  The default dispatches each
        part to :meth:`verify_share` / :meth:`verify_aggregate`; the BLS
        backend overrides this with a single random-linear-combination
        check (~2 pairings however many parts), which is what a tree root
        uses to validate a whole quorum's worth of direct shares and
        internal aggregates at once.  An empty bag verifies trivially.
        """
        for part in parts:
            if isinstance(part, SignatureShare):
                key = public_keys.get(part.signer)
                if key is None or not self.verify_share(part, message, key):
                    return False
            elif isinstance(part, AggregateSignature):
                if not self.verify_aggregate(part, message, public_keys):
                    return False
            else:
                return False
        return True

    def trust_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> None:
        """Record that ``aggregate`` is known valid without re-checking it.

        Called by a collector that just *built* the aggregate from
        individually verified contributions — by linearity the sum
        verifies, so a later :meth:`verify_aggregate` of the same value
        can be answered from a cache instead of fresh pairings.  Backends
        without a verification cache (the hash schemes, where verification
        is cheap) ignore it.
        """


@dataclass(frozen=True)
class _HashSigAggregateValue:
    """Opaque value of a ``hashsig`` aggregate: a single field element.

    The accumulator is linear in the (secretly derivable, publicly
    recomputable) share values, so folding costs O(1) per contribution and
    no per-signer payload travels with the aggregate — the multiplicity
    map alone reconstructs the expected accumulator at verification time.
    The wrapper type keeps the value distinct from a bare int so protocol
    code cannot accidentally treat it as arithmetic data.
    """

    accumulator: int


class HashSigMultiSig(MultiSignatureScheme):
    """Additive hash-based fast-simulation backend (``hashsig``).

    Models the algebra of an indivisible multi-signature scheme with a
    linear accumulator over SHA-256 share values:

    * a share on message ``m`` by the holder of public key ``pk`` is the
      integer ``H(domain, pk, m)`` modulo ``2^128``;
    * an aggregate value is the multiplicity-weighted sum of its shares'
      integers — aggregation of aggregates is plain addition, exactly
      mirroring BLS point addition, so tree aggregation's multiplicity
      semantics (:mod:`repro.aggregation.tree_agg`) carry over unchanged;
    * there is no operation removing a signer from an aggregate, and the
      accumulator is verified against the full multiplicity map, which
      mirrors the indivisibility assumption.

    Compared to :class:`repro.crypto.hash_backend.HashMultiSig` this
    backend does no per-aggregate re-hashing and carries no per-signer
    share dictionary, making aggregation O(1) per contribution — it is
    the default for large experiment sweeps.  **Not cryptographically
    secure**: shares are derivable from public data; use ``bls`` as the
    correctness reference.
    """

    name = "hashsig"

    _MODULUS = 1 << 128

    def __init__(self, domain: bytes = b"iniva-hashsig") -> None:
        self._domain = domain
        self._share_cache: Dict[Tuple[bytes, bytes], int] = {}

    # -- key management ----------------------------------------------------
    def keygen(self, seed: int) -> "KeyPair":
        secret = hashlib.sha256(
            self._domain + b"|sk|" + seed.to_bytes(16, "big", signed=True)
        ).digest()
        public = hashlib.sha256(self._domain + b"|pk|" + secret).digest()
        return KeyPair(secret_key=secret, public_key=public)

    # -- signing -----------------------------------------------------------
    def _share_value(self, public_key: bytes, message: bytes) -> int:
        key = (public_key, message)
        value = self._share_cache.get(key)
        if value is None:
            digest = hashlib.sha256(self._domain + b"|share|" + public_key + b"|" + message)
            value = int.from_bytes(digest.digest(), "big") % self._MODULUS
            if len(self._share_cache) >= 65536:
                self._share_cache.clear()
            self._share_cache[key] = value
        return value

    def sign(self, secret_key: bytes, message: bytes, signer: int) -> SignatureShare:
        public = hashlib.sha256(self._domain + b"|pk|" + secret_key).digest()
        return SignatureShare(signer=signer, value=self._share_value(public, message))

    def verify_share(self, share: SignatureShare, message: bytes, public_key: bytes) -> bool:
        return share.value == self._share_value(public_key, message)

    # -- aggregation -------------------------------------------------------
    def aggregate(self, parts: Iterable[Contribution]) -> AggregateSignature:
        parts = normalize_contributions(parts)
        multiplicities = _tally_multiplicities(parts)
        accumulator = 0
        for part, weight in parts:
            if isinstance(part, SignatureShare):
                if not isinstance(part.value, int):
                    raise TypeError("hashsig aggregation requires integer share values")
                accumulator += weight * part.value
            else:
                value = part.value
                if not isinstance(value, _HashSigAggregateValue):
                    raise TypeError("hashsig aggregation requires hashsig aggregates")
                accumulator += weight * value.accumulator
        return AggregateSignature(
            value=_HashSigAggregateValue(accumulator % self._MODULUS),
            multiplicities=multiplicities,
        )

    def verify_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        value = aggregate.value
        if not isinstance(value, _HashSigAggregateValue):
            return False
        expected = 0
        for signer, mult in aggregate.multiplicities.items():
            if mult <= 0 or signer not in public_keys:
                return False
            expected += mult * self._share_value(public_keys[signer], message)
        return expected % self._MODULUS == value.accumulator


_SCHEME_REGISTRY: Dict[str, type] = {}


def register_scheme(cls: type) -> type:
    """Class decorator adding a backend to the scheme registry."""
    _SCHEME_REGISTRY[cls.name] = cls
    return cls


def get_scheme(name: str, **kwargs: Any) -> MultiSignatureScheme:
    """Instantiate a registered multi-signature backend by name.

    Args:
        name: ``"hashsig"`` for the additive fast-simulation backend,
            ``"hash"`` for the dictionary-carrying hash backend, or
            ``"bls"`` for the pairing-based backend.
        **kwargs: Forwarded to the backend constructor.
    """
    try:
        cls = _SCHEME_REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_SCHEME_REGISTRY))
        raise KeyError(f"unknown multi-signature scheme {name!r}; known: {known}") from exc
    return cls(**kwargs)


register_scheme(HashSigMultiSig)

# Imported at the bottom to avoid a circular import with keys.py.
from repro.crypto.keys import KeyPair  # noqa: E402  (re-export for typing)
