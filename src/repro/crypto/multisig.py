"""Abstract interface for indivisible multi-signature schemes.

The paper's protocols only require four operations: sign a message,
verify an individual share, aggregate shares/aggregates *with
multiplicities*, and verify an aggregate against the claimed
multiplicities.  Crucially the interface exposes **no** operation that
removes a signer from an aggregate — that is the *indivisibility*
property Iniva relies on (Section III of the paper).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Tuple, Union

__all__ = [
    "SignatureShare",
    "AggregateSignature",
    "MultiSignatureScheme",
    "get_scheme",
    "register_scheme",
]


@dataclass(frozen=True)
class SignatureShare:
    """A single signer's signature on a message.

    Attributes:
        signer: The integer identity of the signing process.
        value: Backend-specific opaque signature value.
    """

    signer: int
    value: Any


@dataclass(frozen=True)
class AggregateSignature:
    """An aggregate of signature shares on one message.

    Attributes:
        value: Backend-specific opaque aggregate value.  By the
            indivisibility assumption no component share can be recovered
            from it.
        multiplicities: Mapping ``signer -> multiplicity`` describing how
            many times each signer's share was folded into the aggregate.
            This is the metadata Iniva's reward scheme inspects to tell
            tree aggregation apart from 2ND-CHANCE fallback inclusion.
    """

    value: Any
    multiplicities: Mapping[int, int] = field(default_factory=dict)

    @property
    def signers(self) -> frozenset[int]:
        """The set of signers with non-zero multiplicity."""
        return frozenset(s for s, m in self.multiplicities.items() if m > 0)

    def multiplicity(self, signer: int) -> int:
        return self.multiplicities.get(signer, 0)

    def __contains__(self, signer: int) -> bool:
        return self.multiplicity(signer) > 0

    def __len__(self) -> int:
        return len(self.signers)


Contribution = Tuple[Union[SignatureShare, AggregateSignature], int]


def combined_multiplicities(parts: Iterable[Contribution]) -> Dict[int, int]:
    """Sum the signer multiplicities of weighted contributions.

    Each contribution is a pair ``(share_or_aggregate, weight)``; an
    individual share counts as multiplicity one before weighting.
    """
    total: Counter[int] = Counter()
    for part, weight in parts:
        if weight <= 0:
            raise ValueError("contribution weights must be positive integers")
        if isinstance(part, SignatureShare):
            total[part.signer] += weight
        elif isinstance(part, AggregateSignature):
            for signer, mult in part.multiplicities.items():
                total[signer] += mult * weight
        else:
            raise TypeError(f"unsupported contribution type: {type(part)!r}")
    return dict(total)


class MultiSignatureScheme(ABC):
    """Interface shared by the BLS and hash-based backends."""

    #: Human-readable backend name used by :func:`get_scheme`.
    name: str = "abstract"

    @abstractmethod
    def keygen(self, seed: int) -> "KeyPair":
        """Deterministically derive a key pair from ``seed``."""

    @abstractmethod
    def sign(self, secret_key: Any, message: bytes, signer: int) -> SignatureShare:
        """Sign ``message`` with ``secret_key`` on behalf of ``signer``."""

    @abstractmethod
    def verify_share(self, share: SignatureShare, message: bytes, public_key: Any) -> bool:
        """Verify an individual signature share."""

    @abstractmethod
    def aggregate(self, parts: Iterable[Contribution]) -> AggregateSignature:
        """Aggregate weighted shares and aggregates into one signature.

        The returned aggregate's multiplicities are the weighted sums of
        the inputs' multiplicities; the opaque value is combined in a way
        the backend can later verify against those multiplicities.
        """

    @abstractmethod
    def verify_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        """Verify an aggregate against the claimed signer multiplicities."""


_SCHEME_REGISTRY: Dict[str, type] = {}


def register_scheme(cls: type) -> type:
    """Class decorator adding a backend to the scheme registry."""
    _SCHEME_REGISTRY[cls.name] = cls
    return cls


def get_scheme(name: str, **kwargs: Any) -> MultiSignatureScheme:
    """Instantiate a registered multi-signature backend by name.

    Args:
        name: ``"hash"`` for the fast simulation backend or ``"bls"`` for
            the pairing-based backend.
        **kwargs: Forwarded to the backend constructor.
    """
    try:
        cls = _SCHEME_REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_SCHEME_REGISTRY))
        raise KeyError(f"unknown multi-signature scheme {name!r}; known: {known}") from exc
    return cls(**kwargs)


# Imported at the bottom to avoid a circular import with keys.py.
from repro.crypto.keys import KeyPair  # noqa: E402  (re-export for typing)
