"""Cryptographic substrate: indivisible multi-signature schemes.

The paper relies on an *indivisible* multi-signature scheme (BLS) in which

* signatures on the same message can be aggregated,
* the same signature may be included with a *multiplicity* larger than one,
* it is infeasible to remove an individual signature from an aggregate.

Three interchangeable backends implement the
:class:`~repro.crypto.multisig.MultiSignatureScheme` interface:

``BlsMultiSig``
    A real pairing-based BLS multi-signature over a supersingular curve
    (the original Boneh-Lynn-Shacham construction), implemented from
    scratch in pure Python (:mod:`repro.crypto.field`,
    :mod:`repro.crypto.curve`, :mod:`repro.crypto.pairing`).  This is the
    correctness reference.

``HashSigMultiSig``
    The default fast-simulation backend for experiment sweeps: an additive
    SHA-256 accumulator with identical aggregation and multiplicity
    semantics but O(1) folding cost and no pairing math.  *Not*
    cryptographically secure.

``HashMultiSig``
    The earlier deterministic simulation backend, kept for its
    dictionary-style aggregate values (every share travels with the
    aggregate).  It is *not* cryptographically secure and is clearly
    documented as a simulation substitute (see DESIGN.md).
"""

from repro.crypto.keys import Committee, KeyPair
from repro.crypto.multisig import (
    AggregateSignature,
    HashSigMultiSig,
    MultiSignatureScheme,
    SignatureShare,
    get_scheme,
    normalize_contributions,
)
from repro.crypto.hash_backend import HashMultiSig
from repro.crypto.bls import BlsMultiSig
from repro.crypto.params import CurveParams, DEFAULT_PARAMS, TOY_PARAMS
from repro.crypto.vrf import VRF, VRFOutput, vrf_view_seed

__all__ = [
    "AggregateSignature",
    "BlsMultiSig",
    "Committee",
    "CurveParams",
    "DEFAULT_PARAMS",
    "HashMultiSig",
    "HashSigMultiSig",
    "KeyPair",
    "MultiSignatureScheme",
    "SignatureShare",
    "TOY_PARAMS",
    "VRF",
    "VRFOutput",
    "get_scheme",
    "normalize_contributions",
    "vrf_view_seed",
]
