"""Parameters for the pairing-friendly supersingular curve used by BLS.

The original BLS signature construction (Boneh, Lynn, Shacham 2004 — the
scheme cited as [32] in the paper) works over a supersingular curve

    E : y^2 = x^3 + 1   over F_p  with  p = 2 (mod 3)

which has exactly ``p + 1`` points and embedding degree two.  Together with
the distortion map ``phi(x, y) = (zeta * x, y)`` (``zeta`` a primitive cube
root of unity in F_{p^2}) the Tate pairing becomes a *symmetric* pairing
``e : G x G -> F_{p^2}`` on the order-``r`` subgroup, which is all BLS
needs.

The default parameter set uses a 512-bit prime ``p`` and a 160-bit prime
group order ``r``; a tiny toy set is provided for fast property-based
tests.  Both sets were produced by :func:`generate_params`, which is kept
in the library so users can regenerate or strengthen the parameters.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

__all__ = [
    "CurveParams",
    "DEFAULT_PARAMS",
    "TOY_PARAMS",
    "generate_params",
    "is_probable_prime",
]


def is_probable_prime(n: int, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Uses ``rounds`` random bases; for the sizes used here the error
    probability is negligible (< 2^-80).
    """
    if n < 2:
        return False
    small_primes = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47]
    for sp in small_primes:
        if n % sp == 0:
            return n == sp
    rng = rng or random.Random(0xC0FFEE ^ (n & 0xFFFFFFFF))
    d = n - 1
    s = 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class CurveParams:
    """Parameters of the supersingular curve ``y^2 = x^3 + 1`` over ``F_p``.

    Attributes:
        p: Field prime, with ``p % 3 == 2`` and ``p % 4 == 3``.
        r: Prime order of the signature subgroup.
        cofactor: ``(p + 1) // r``.
        gx, gy: Affine coordinates of a generator of the order-``r``
            subgroup.
        name: Human-readable name used in error messages and registries.
    """

    p: int
    r: int
    cofactor: int
    gx: int
    gy: int
    name: str = "custom"

    def __post_init__(self) -> None:
        if self.p % 3 != 2:
            raise ValueError("p must be 2 mod 3 for the supersingular curve")
        if self.p % 4 != 3:
            raise ValueError("p must be 3 mod 4 so square roots are cheap")
        if (self.p + 1) != self.r * self.cofactor:
            raise ValueError("cofactor * r must equal the curve order p + 1")

    @property
    def security_bits(self) -> int:
        """A rough security estimate: half the subgroup-order bit length."""
        return self.r.bit_length() // 2


# Generated with ``generate_params(r_bits=160, p_bits=512, seed=20240404)``.
DEFAULT_PARAMS = CurveParams(
    p=int(
        "0x8ca1771b886fb6e1b1293a432647f84448b24d4b899d5d59c49b09853abf40f7"
        "3b6dc54e9ed1dd7eb5cc2cad032923ff59fed2254cfd17e30debbd50daf0b873",
        16,
    ),
    r=int("0xd729f8730089c772afb33789620dc5ae3e1a5499", 16),
    cofactor=int(
        "0xa75232ac33c8f8a5708c3b0068c18eb23b540a7a64f367d83a477ed04ea830f6"
        "4473e6e75d0cc0c308885094",
        16,
    ),
    gx=int(
        "0x3e3b2b031da697110df819ecab3a4d241b66bff6ebe3199e27985e7699d0abc3"
        "9a2d34cec934f3bf713a3f49c847d3cb4b2032f94a07633aa5dca7085c30ff5d",
        16,
    ),
    gy=int(
        "0x2a256898d9dbe43b4d2aac452531c5d497da25fb39b3df7414ff752264cc2600"
        "a3de72de70e17a6a93a51e8919e9323dddd62b1511307c6453ee2518aebca113",
        16,
    ),
    name="ss512",
)

# Generated with ``generate_params(r_bits=64, p_bits=128, seed=7)``.
TOY_PARAMS = CurveParams(
    p=int("0xbc4f002495471f27d794f45c070e8d0f", 16),
    r=int("0xf2a74de452e6b551", 16),
    cofactor=int("0xc6aa7d550101b810", 16),
    gx=int("0x843fe25d3e844beeba9a5451a21f4214", 16),
    gy=int("0x645a16e201ed823b4d3cdf27f868453d", 16),
    name="toy128",
)


def _next_prime(n: int) -> int:
    n += 1
    while not is_probable_prime(n):
        n += 1
    return n


def generate_params(r_bits: int = 160, p_bits: int = 512, seed: int = 0) -> CurveParams:
    """Search for fresh supersingular curve parameters.

    The search picks a random ``r_bits``-bit prime ``r`` and then looks for
    an even cofactor ``h`` such that ``p = h * r - 1`` is prime with
    ``p = 2 (mod 3)`` and ``p = 3 (mod 4)``.  A generator of the order-``r``
    subgroup is found by hashing x-coordinates onto the curve and clearing
    the cofactor.

    Args:
        r_bits: Bit length of the prime subgroup order.
        p_bits: Bit length of the field prime.
        seed: Seed for the deterministic search.

    Returns:
        A fully populated :class:`CurveParams`.
    """
    if p_bits <= r_bits + 8:
        raise ValueError("p_bits must exceed r_bits by a reasonable margin")
    rng = random.Random(seed)
    r = _next_prime(rng.getrandbits(r_bits) | (1 << (r_bits - 1)))
    h_bits = p_bits - r_bits
    while True:
        h = (rng.getrandbits(h_bits) | (1 << (h_bits - 1))) & ~1
        p = h * r - 1
        if p % 3 != 2 or p % 4 != 3:
            continue
        if is_probable_prime(p):
            break
    gx, gy = _find_subgroup_generator(p, r, h)
    return CurveParams(p=p, r=r, cofactor=h, gx=gx, gy=gy, name=f"gen{p_bits}")


def _find_subgroup_generator(p: int, r: int, h: int) -> tuple[int, int]:
    """Find an affine point of exact order ``r`` on ``y^2 = x^3 + 1``."""

    def sqrt_mod(a: int) -> int | None:
        a %= p
        root = pow(a, (p + 1) // 4, p)
        return root if root * root % p == a else None

    def add(P, Q):
        if P is None:
            return Q
        if Q is None:
            return P
        x1, y1 = P
        x2, y2 = Q
        if x1 == x2 and (y1 + y2) % p == 0:
            return None
        if P == Q:
            lam = (3 * x1 * x1) * pow(2 * y1, p - 2, p) % p
        else:
            lam = (y2 - y1) * pow(x2 - x1, p - 2, p) % p
        x3 = (lam * lam - x1 - x2) % p
        y3 = (lam * (x1 - x3) - y1) % p
        return (x3, y3)

    def mul(k, P):
        result = None
        addend = P
        while k:
            if k & 1:
                result = add(result, addend)
            addend = add(addend, addend)
            k >>= 1
        return result

    counter = 0
    while True:
        digest = hashlib.sha256(f"iniva-generator-{counter}".encode()).digest()
        x = int.from_bytes(digest * ((p.bit_length() // 256) + 1), "big") % p
        y = sqrt_mod(x * x * x + 1)
        if y is not None:
            point = mul(h, (x, y))
            if point is not None and mul(r, point) is None:
                return point
        counter += 1
