"""Fast deterministic simulation backend for indivisible multi-signatures.

Monte-Carlo attack simulations and the discrete-event experiments perform
hundreds of thousands of aggregations; real pairings would dominate the
runtime without changing any protocol-level behaviour.  ``HashMultiSig``
therefore models the *algebra* of an indivisible multi-signature scheme
(aggregation, multiplicities, canonical aggregate values) with SHA-256:

* A share is ``H(tag, public_key, message)``.
* An aggregate value is a hash over the message and the sorted
  ``(signer, multiplicity, share)`` triples it contains, so any two honest
  aggregations of the same multiset produce the same value.
* There is no operation to remove a signer from an aggregate, and the
  aggregate value is a one-way function of its contents, which mirrors the
  indivisibility assumption.

**This backend is not cryptographically secure** — shares are derivable
from public data.  It is a documented substitution (see DESIGN.md) used
only where the experiments measure protocol behaviour, never to claim
cryptographic strength.  The interface and multiplicity semantics are
identical to :class:`repro.crypto.bls.BlsMultiSig`.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Any, Iterable, Mapping

from repro.crypto.keys import KeyPair
from repro.crypto.multisig import (
    AggregateSignature,
    Contribution,
    MultiSignatureScheme,
    SignatureShare,
    _tally_multiplicities,
    normalize_contributions,
    register_scheme,
)

__all__ = ["HashMultiSig"]


def _sha(*parts: bytes) -> bytes:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(len(part).to_bytes(4, "big"))
        digest.update(part)
    return digest.digest()


@register_scheme
class HashMultiSig(MultiSignatureScheme):
    """Hash-based stand-in with BLS-compatible aggregation semantics."""

    name = "hash"

    def __init__(self, domain: bytes = b"iniva-hash-multisig") -> None:
        self._domain = domain

    # -- key management ----------------------------------------------------
    def keygen(self, seed: int) -> KeyPair:
        secret = _sha(self._domain, b"sk", seed.to_bytes(16, "big", signed=True))
        public = _sha(self._domain, b"pk", secret)
        return KeyPair(secret_key=secret, public_key=public)

    # -- signing -----------------------------------------------------------
    def _share_value(self, public_key: bytes, message: bytes) -> bytes:
        return _sha(self._domain, b"share", public_key, message)

    def sign(self, secret_key: bytes, message: bytes, signer: int) -> SignatureShare:
        public = _sha(self._domain, b"pk", secret_key)
        return SignatureShare(signer=signer, value=self._share_value(public, message))

    def verify_share(self, share: SignatureShare, message: bytes, public_key: bytes) -> bool:
        expected = self._share_value(public_key, message)
        return hmac.compare_digest(expected, share.value)

    # -- aggregation -------------------------------------------------------
    def aggregate(self, parts: Iterable[Contribution]) -> AggregateSignature:
        parts = normalize_contributions(parts)
        multiplicities = _tally_multiplicities(parts)
        shares: dict[int, bytes] = {}
        for part, _weight in parts:
            if isinstance(part, SignatureShare):
                shares[part.signer] = part.value
            else:
                shares.update(part.value.get("shares", {}))
        missing = set(multiplicities) - set(shares)
        if missing:
            raise ValueError(f"missing share values for signers {sorted(missing)}")
        value = {
            "digest": self._digest(multiplicities, shares),
            "shares": {s: shares[s] for s in multiplicities},
        }
        return AggregateSignature(value=value, multiplicities=multiplicities)

    def _digest(self, multiplicities: Mapping[int, int], shares: Mapping[int, bytes]) -> bytes:
        acc = hashlib.sha256()
        acc.update(self._domain)
        for signer in sorted(multiplicities):
            acc.update(signer.to_bytes(8, "big"))
            acc.update(multiplicities[signer].to_bytes(8, "big"))
            acc.update(shares[signer])
        return acc.digest()

    def verify_aggregate(
        self,
        aggregate: AggregateSignature,
        message: bytes,
        public_keys: Mapping[int, Any],
    ) -> bool:
        value = aggregate.value
        if not isinstance(value, dict) or "digest" not in value or "shares" not in value:
            return False
        shares: Mapping[int, bytes] = value["shares"]
        for signer, mult in aggregate.multiplicities.items():
            if mult <= 0:
                return False
            if signer not in public_keys or signer not in shares:
                return False
            expected = self._share_value(public_keys[signer], message)
            if not hmac.compare_digest(expected, shares[signer]):
                return False
        if set(shares) != set(aggregate.multiplicities):
            return False
        expected_digest = self._digest(aggregate.multiplicities, shares)
        return hmac.compare_digest(expected_digest, value["digest"])
