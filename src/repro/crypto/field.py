"""Finite-field arithmetic for the pairing-based signature backend.

Implements the prime field ``F_p`` and its quadratic extension
``F_{p^2} = F_p[i] / (i^2 + 1)`` (valid because ``p = 3 (mod 4)`` makes
``-1`` a quadratic non-residue).  Elements are small immutable objects
carrying their modulus, so code using them stays generic over parameter
sets.
"""

from __future__ import annotations

from typing import Union

__all__ = ["Fp", "Fp2"]


class Fp:
    """An element of the prime field ``F_p``."""

    __slots__ = ("value", "p")

    def __init__(self, value: int, p: int) -> None:
        self.value = value % p
        self.p = p

    # -- arithmetic -------------------------------------------------------
    def _coerce(self, other: Union["Fp", int]) -> "Fp":
        if isinstance(other, Fp):
            if other.p != self.p:
                raise ValueError("mixing elements of different fields")
            return other
        if isinstance(other, int):
            return Fp(other, self.p)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Union["Fp", int]) -> "Fp":
        other = self._coerce(other)
        return Fp(self.value + other.value, self.p)

    __radd__ = __add__

    def __sub__(self, other: Union["Fp", int]) -> "Fp":
        other = self._coerce(other)
        return Fp(self.value - other.value, self.p)

    def __rsub__(self, other: Union["Fp", int]) -> "Fp":
        other = self._coerce(other)
        return Fp(other.value - self.value, self.p)

    def __mul__(self, other: Union["Fp", int]) -> "Fp":
        other = self._coerce(other)
        return Fp(self.value * other.value, self.p)

    __rmul__ = __mul__

    def __neg__(self) -> "Fp":
        return Fp(-self.value, self.p)

    def __pow__(self, exponent: int) -> "Fp":
        return Fp(pow(self.value, exponent, self.p), self.p)

    def inverse(self) -> "Fp":
        if self.value == 0:
            raise ZeroDivisionError("inverse of zero in F_p")
        return Fp(pow(self.value, self.p - 2, self.p), self.p)

    def __truediv__(self, other: Union["Fp", int]) -> "Fp":
        other = self._coerce(other)
        return self * other.inverse()

    # -- predicates and helpers -------------------------------------------
    def is_zero(self) -> bool:
        return self.value == 0

    def sqrt(self) -> "Fp | None":
        """Square root via ``a^((p+1)/4)``; requires ``p = 3 (mod 4)``.

        Returns ``None`` when ``self`` is a non-residue.
        """
        candidate = Fp(pow(self.value, (self.p + 1) // 4, self.p), self.p)
        return candidate if (candidate * candidate) == self else None

    def is_square(self) -> bool:
        return self.value == 0 or pow(self.value, (self.p - 1) // 2, self.p) == 1

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.value == other % self.p
        if isinstance(other, Fp):
            return self.p == other.p and self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.p))

    def __repr__(self) -> str:
        return f"Fp({hex(self.value)})"

    def __int__(self) -> int:
        return self.value


class Fp2:
    """An element ``c0 + c1*i`` of ``F_{p^2}`` with ``i^2 = -1``."""

    __slots__ = ("c0", "c1", "p")

    def __init__(self, c0: int, c1: int, p: int) -> None:
        self.c0 = c0 % p
        self.c1 = c1 % p
        self.p = p

    @classmethod
    def from_fp(cls, element: Fp) -> "Fp2":
        return cls(element.value, 0, element.p)

    @classmethod
    def one(cls, p: int) -> "Fp2":
        return cls(1, 0, p)

    @classmethod
    def zero(cls, p: int) -> "Fp2":
        return cls(0, 0, p)

    # -- arithmetic -------------------------------------------------------
    def _coerce(self, other: Union["Fp2", Fp, int]) -> "Fp2":
        if isinstance(other, Fp2):
            if other.p != self.p:
                raise ValueError("mixing elements of different fields")
            return other
        if isinstance(other, Fp):
            return Fp2(other.value, 0, self.p)
        if isinstance(other, int):
            return Fp2(other, 0, self.p)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: Union["Fp2", Fp, int]) -> "Fp2":
        other = self._coerce(other)
        return Fp2(self.c0 + other.c0, self.c1 + other.c1, self.p)

    __radd__ = __add__

    def __sub__(self, other: Union["Fp2", Fp, int]) -> "Fp2":
        other = self._coerce(other)
        return Fp2(self.c0 - other.c0, self.c1 - other.c1, self.p)

    def __rsub__(self, other: Union["Fp2", Fp, int]) -> "Fp2":
        other = self._coerce(other)
        return other - self

    def __mul__(self, other: Union["Fp2", Fp, int]) -> "Fp2":
        other = self._coerce(other)
        p = self.p
        # (a + bi)(c + di) = (ac - bd) + (ad + bc)i
        ac = self.c0 * other.c0
        bd = self.c1 * other.c1
        cross = (self.c0 + self.c1) * (other.c0 + other.c1) - ac - bd
        return Fp2(ac - bd, cross, p)

    __rmul__ = __mul__

    def __neg__(self) -> "Fp2":
        return Fp2(-self.c0, -self.c1, self.p)

    def conjugate(self) -> "Fp2":
        return Fp2(self.c0, -self.c1, self.p)

    def norm(self) -> int:
        """The field norm ``c0^2 + c1^2`` as an integer mod p."""
        return (self.c0 * self.c0 + self.c1 * self.c1) % self.p

    def inverse(self) -> "Fp2":
        n = self.norm()
        if n == 0:
            raise ZeroDivisionError("inverse of zero in F_{p^2}")
        inv_norm = pow(n, self.p - 2, self.p)
        return Fp2(self.c0 * inv_norm, -self.c1 * inv_norm, self.p)

    def __truediv__(self, other: Union["Fp2", Fp, int]) -> "Fp2":
        other = self._coerce(other)
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "Fp2":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        result = Fp2.one(self.p)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    # -- predicates -------------------------------------------------------
    def is_zero(self) -> bool:
        return self.c0 == 0 and self.c1 == 0

    def is_one(self) -> bool:
        return self.c0 == 1 and self.c1 == 0

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Fp)):
            other = self._coerce(other)
        if isinstance(other, Fp2):
            return self.p == other.p and self.c0 == other.c0 and self.c1 == other.c1
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.c0, self.c1, self.p))

    def __repr__(self) -> str:
        return f"Fp2({hex(self.c0)}, {hex(self.c1)})"


_CUBE_ROOT_CACHE: dict = {}


def cube_root_of_unity(p: int) -> Fp2:
    """Return a primitive cube root of unity in ``F_{p^2}``.

    For ``p = 2 (mod 3)`` and ``p = 3 (mod 4)``, ``-3`` is a non-residue in
    ``F_p`` while ``3`` is a residue, so ``sqrt(-3) = sqrt(3) * i`` and
    ``zeta = (-1 + sqrt(-3)) / 2``.  The root is a constant of the field,
    so it is computed once per modulus — the distortion map evaluates it
    on every pairing.
    """
    cached = _CUBE_ROOT_CACHE.get(p)
    if cached is not None:
        return cached
    three = Fp(3, p)
    root3 = three.sqrt()
    if root3 is None:
        raise ValueError("3 must be a quadratic residue modulo p")
    inv2 = pow(2, p - 2, p)
    c0 = (-1 * inv2) % p
    c1 = (root3.value * inv2) % p
    zeta = Fp2(c0, c1, p)
    if (zeta * zeta * zeta) != Fp2.one(p) or zeta == Fp2.one(p):
        raise ValueError("failed to construct a primitive cube root of unity")
    _CUBE_ROOT_CACHE[p] = zeta
    return zeta
