"""Key material and committee registries.

Every process ``p_i`` holds a private/public key pair and knows the public
keys of all other committee members (paper, Section III).  The
:class:`Committee` helper builds and stores that registry for a chosen
multi-signature backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.crypto.multisig import MultiSignatureScheme

__all__ = ["KeyPair", "Committee"]


@dataclass(frozen=True)
class KeyPair:
    """A private/public key pair for one process.

    The concrete types of ``secret_key`` and ``public_key`` depend on the
    backend (integers and curve points for BLS, byte strings for the hash
    backend).
    """

    secret_key: Any
    public_key: Any


class Committee:
    """The fixed set of committee processes and their public keys.

    Process identities are the integers ``0 .. n-1``.  Per the paper's
    system model the membership is fixed for the duration of a run (the
    per-view *role* of a process is determined by the deterministic
    shuffle in :mod:`repro.tree`, not by changing membership).
    """

    def __init__(self, scheme: "MultiSignatureScheme", size: int, seed: int = 0) -> None:
        if size <= 0:
            raise ValueError("committee size must be positive")
        self._scheme = scheme
        self._key_pairs: Dict[int, KeyPair] = {
            process_id: scheme.keygen(seed * 1_000_003 + process_id) for process_id in range(size)
        }

    # -- basic accessors ---------------------------------------------------
    @property
    def scheme(self) -> "MultiSignatureScheme":
        return self._scheme

    @property
    def size(self) -> int:
        return len(self._key_pairs)

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.size))

    def key_pair(self, process_id: int) -> KeyPair:
        return self._key_pairs[process_id]

    def secret_key(self, process_id: int) -> Any:
        return self._key_pairs[process_id].secret_key

    def public_key(self, process_id: int) -> Any:
        return self._key_pairs[process_id].public_key

    def public_keys(self) -> Mapping[int, Any]:
        """The full ``process id -> public key`` registry."""
        return {pid: pair.public_key for pid, pair in self._key_pairs.items()}

    # -- convenience wrappers ----------------------------------------------
    def sign(self, process_id: int, message: bytes):
        """Sign ``message`` as ``process_id`` using the committee's scheme."""
        return self._scheme.sign(self.secret_key(process_id), message, process_id)

    def verify_share(self, share, message: bytes) -> bool:
        return self._scheme.verify_share(share, message, self.public_key(share.signer))

    def verify_aggregate(self, aggregate, message: bytes) -> bool:
        return self._scheme.verify_aggregate(aggregate, message, self.public_keys())

    def verify_batch(self, shares, message: bytes) -> bool:
        """Verify many shares on one message (batched where the backend can)."""
        return self._scheme.verify_batch(shares, message, self.public_keys())

    def verify_contributions(self, parts, message: bytes) -> bool:
        """Verify a mixed bag of shares and aggregates (batched where possible)."""
        return self._scheme.verify_contributions(parts, message, self.public_keys())

    def trust_aggregate(self, aggregate, message: bytes) -> None:
        """Mark a collector-built aggregate as verified (backend cache seed)."""
        self._scheme.trust_aggregate(aggregate, message, self.public_keys())

    def quorum_size(self, fault_fraction: float = 1 / 3) -> int:
        """The minimal number of distinct signers for a valid QC.

        Matches the paper's ``(1 - f) * N`` requirement (rounded up).  A
        tiny epsilon guards against floating-point noise such as
        ``(2/3) * 9 == 6.000000000000001``.
        """
        import math

        return int(math.ceil((1 - fault_fraction) * self.size - 1e-9))
