"""Verifiable random functions built on the multi-signature backends.

The paper's system model (Section III) requires an *unpredictable*
deterministic shuffle of the committee every round and suggests
implementing it with a VRF.  This module provides that VRF: a unique
signature on the VRF input acts as the proof, and the hash of the proof is
the pseudorandom output.  With the BLS backend this is the classic
BLS-VRF construction (signatures are unique, so the output is both
deterministic and unpredictable without the secret key); with the hash
backend it has the same interface and determinism for simulations.

Typical use::

    scheme = get_scheme("hash")
    committee = Committee(scheme, size=21, seed=1)
    vrf = VRF(scheme)
    out = vrf.evaluate(committee.secret_key(3), b"view|42", signer=3)
    assert vrf.verify(committee.public_key(3), b"view|42", out)
    seed = out.as_int() % 2**63
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Sequence

from repro.crypto.multisig import MultiSignatureScheme, SignatureShare

__all__ = ["VRFOutput", "VRF", "vrf_view_seed"]


def _canonical_bytes(value: Any) -> bytes:
    """A deterministic byte encoding of a backend-specific signature value."""
    if isinstance(value, bytes):
        return value
    if isinstance(value, str):
        return value.encode("utf-8")
    if isinstance(value, int):
        return value.to_bytes((value.bit_length() + 15) // 8 or 1, "big", signed=True)
    # Curve points and other structured values: rely on their repr, which the
    # backends keep stable (coordinates in a fixed order).
    return repr(value).encode("utf-8")


@dataclass(frozen=True)
class VRFOutput:
    """The result of one VRF evaluation.

    Attributes:
        value: The 32-byte pseudorandom output ``H(proof)``.
        proof: The signature share proving that ``value`` was derived from
            the evaluator's secret key and the public input.
        alpha: The VRF input the output was computed for.
    """

    value: bytes
    proof: SignatureShare
    alpha: bytes

    def as_int(self) -> int:
        """The output interpreted as a big-endian integer."""
        return int.from_bytes(self.value, "big")

    def as_unit_float(self) -> float:
        """The output mapped uniformly into ``[0, 1)``."""
        return self.as_int() / float(1 << (8 * len(self.value)))


class VRF:
    """A verifiable random function over a multi-signature backend.

    The evaluation signs ``domain || alpha`` and hashes the signature; any
    holder of the matching public key can verify the proof and recompute
    the output.  Unpredictability follows from the unforgeability of the
    underlying signature scheme (genuinely so for the BLS backend, by
    construction for the simulation backend).
    """

    def __init__(self, scheme: MultiSignatureScheme, domain: bytes = b"iniva-vrf") -> None:
        self._scheme = scheme
        self._domain = domain

    # -- evaluation -----------------------------------------------------------
    def _input(self, alpha: bytes) -> bytes:
        return self._domain + b"|" + alpha

    def _output(self, proof: SignatureShare) -> bytes:
        digest = hashlib.sha256()
        digest.update(self._domain)
        digest.update(_canonical_bytes(proof.value))
        return digest.digest()

    def evaluate(self, secret_key: Any, alpha: bytes, signer: int = 0) -> VRFOutput:
        """Evaluate the VRF on ``alpha`` with ``secret_key``."""
        proof = self._scheme.sign(secret_key, self._input(alpha), signer)
        return VRFOutput(value=self._output(proof), proof=proof, alpha=alpha)

    def verify(self, public_key: Any, alpha: bytes, output: VRFOutput) -> bool:
        """Check that ``output`` is the unique VRF value of ``alpha``."""
        if output.alpha != alpha:
            return False
        if not self._scheme.verify_share(output.proof, self._input(alpha), public_key):
            return False
        return output.value == self._output(output.proof)

    # -- convenience mappings ----------------------------------------------------
    def select_index(self, output: VRFOutput, population: int) -> int:
        """Map a VRF output to an index in ``range(population)``."""
        if population <= 0:
            raise ValueError("population must be positive")
        return output.as_int() % population

    def weighted_choice(self, output: VRFOutput, weights: Sequence[float]) -> int:
        """Pick an index with probability proportional to ``weights``.

        Used for stake-weighted sortition: the VRF output provides the
        uniform sample, the cumulative weights define the bins.
        """
        if not weights:
            raise ValueError("weights must be non-empty")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("total weight must be positive")
        point = output.as_unit_float() * total
        cumulative = 0.0
        for index, weight in enumerate(weights):
            if weight < 0:
                raise ValueError("weights must be non-negative")
            cumulative += weight
            if point < cumulative:
                return index
        return len(weights) - 1


def vrf_view_seed(output: VRFOutput, bits: int = 63) -> int:
    """Derive a shuffle seed for :func:`repro.tree.shuffle.view_seed` from a VRF output."""
    if bits <= 0 or bits > 256:
        raise ValueError("bits must be in (0, 256]")
    return output.as_int() % (1 << bits)
