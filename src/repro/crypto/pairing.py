"""Tate pairing on the supersingular curve, with distortion map.

Provides a symmetric bilinear pairing ``e : G x G -> F_{p^2}`` on the
order-``r`` subgroup ``G`` of ``E(F_p)``, computed as the reduced Tate
pairing ``t(P, phi(Q))`` where ``phi`` is the distortion map.  This is the
pairing used by the original BLS signature scheme.

The Miller loop is inversion-free: the running point is kept in Jacobian
coordinates over raw integers, and every line/vertical evaluation is
scaled by a factor lying in ``F_p`` (``2YZ^3`` for tangents, ``ZH`` for
chords, ``Z^2`` for verticals).  Those factors are simply dropped, because
the final exponentiation ``(p^2 - 1)/r = (p - 1) * cofactor`` maps every
``F_p`` unit to one — so the *reduced* pairing value is unchanged while
the loop performs no modular inversion at all.  Numerators and
denominators are accumulated separately with a single inversion at the
end, and ``z^(p-1)`` in the final exponentiation is computed as
``conj(z) / z``, leaving only a cofactor-sized exponent.
"""

from __future__ import annotations

from repro.crypto.curve import Point, distortion_map
from repro.crypto.field import Fp, Fp2
from repro.crypto.params import CurveParams

__all__ = ["tate_pairing", "miller_loop"]


def miller_loop(p_point: Point, q_point: Point, params: CurveParams) -> Fp2:
    """Compute the Miller function ``f_{r,P}(Q)`` up to ``F_p`` factors.

    ``p_point`` must live in ``E(F_p)``; ``q_point`` may live in ``E(F_p)``
    or ``E(F_{p^2})`` (the distorted image used by the pairing).  The
    result equals the textbook Miller function times a unit of ``F_p``,
    which the reduced-pairing exponentiation in :func:`tate_pairing`
    eliminates.
    """
    p = params.p
    if p_point.is_infinity or q_point.is_infinity:
        return Fp2.one(p)
    if not isinstance(p_point.x, Fp):
        raise TypeError("miller_loop expects its first argument in E(F_p)")
    xP, yP = p_point.x.value, p_point.y.value
    qx, qy = q_point.x, q_point.y
    if isinstance(qx, Fp2):
        xq0, xq1 = qx.c0, qx.c1
    else:
        xq0, xq1 = qx.value, 0
    if isinstance(qy, Fp2):
        yq0, yq1 = qy.c0, qy.c1
    else:
        yq0, yq1 = qy.value, 0

    n0, n1 = 1, 0  # numerator accumulator, an F_{p^2} value (c0, c1)
    d0, d1 = 1, 0  # denominator accumulator
    X, Y, Z = xP, yP, 1  # the running point T in Jacobian coordinates
    t_infinite = False

    def tangent_step(X: int, Y: int, Z: int):
        """Tangent line at T evaluated at Q (scaled by 2YZ^3), and 2T.

        Returns ``(l0, l1, X3, Y3, Z3, infinite)``.
        """
        ZZ = Z * Z % p
        if Y == 0:
            # 2-torsion: the tangent is the vertical Z^2*xq - X, and 2T = O.
            return ZZ * xq0 % p - X, ZZ * xq1 % p, 0, 0, 0, True
        XX = X * X % p
        YY = Y * Y % p
        Z3 = 2 * Y * Z % p
        # L = 2YZ^3 * yq + (3X^3 - 2Y^2) - 3X^2 Z^2 * xq
        A = Z3 * ZZ % p
        BZZ = 3 * XX % p * ZZ % p
        F = (3 * X * XX - 2 * YY) % p
        l0 = (A * yq0 + F - BZZ * xq0) % p
        l1 = (A * yq1 - BZZ * xq1) % p
        # a = 0 Jacobian doubling.
        C = YY * YY % p
        t = X + YY
        D = 2 * (t * t - XX - C) % p
        E = 3 * XX % p
        X3 = (E * E - 2 * D) % p
        Y3 = (E * (D - X3) - 8 * C) % p
        return l0, l1, X3, Y3, Z3, False

    for bit in bin(params.r)[3:]:  # binary expansion of r, leading '1' skipped
        n0, n1 = (n0 * n0 - n1 * n1) % p, 2 * n0 * n1 % p
        d0, d1 = (d0 * d0 - d1 * d1) % p, 2 * d0 * d1 % p
        if not t_infinite:
            l0, l1, X, Y, Z, t_infinite = tangent_step(X, Y, Z)
            n0, n1 = (n0 * l0 - n1 * l1) % p, (n0 * l1 + n1 * l0) % p
            if not t_infinite:
                # Vertical at 2T, scaled by Z3^2: v = Z3^2*xq - X3.
                ZZ3 = Z * Z % p
                v0 = (ZZ3 * xq0 - X) % p
                v1 = ZZ3 * xq1 % p
                d0, d1 = (d0 * v0 - d1 * v1) % p, (d0 * v1 + d1 * v0) % p
        if bit == "1":
            if t_infinite:
                # O + P = P: the line degenerates to the vertical at P.
                v0 = (xq0 - xP) % p
                v1 = xq1
                d0, d1 = (d0 * v0 - d1 * v1) % p, (d0 * v1 + d1 * v0) % p
                X, Y, Z = xP, yP, 1
                t_infinite = False
                continue
            ZZ = Z * Z % p
            U2 = xP * ZZ % p
            S2 = yP * Z % p * ZZ % p
            if U2 == X:
                if S2 == Y:
                    # T == P: the chord is the tangent at T.
                    l0, l1, X, Y, Z, t_infinite = tangent_step(X, Y, Z)
                    n0, n1 = (n0 * l0 - n1 * l1) % p, (n0 * l1 + n1 * l0) % p
                else:
                    # T == -P: vertical line, and T + P is the identity.
                    l0 = (ZZ * xq0 - X) % p
                    l1 = ZZ * xq1 % p
                    n0, n1 = (n0 * l0 - n1 * l1) % p, (n0 * l1 + n1 * l0) % p
                    t_infinite = True
                    continue
            else:
                H = (U2 - X) % p
                r_ = (S2 - Y) % p
                ZH = Z * H % p
                # Chord through T and P at Q, scaled by ZH:
                #   L = ZH*(yq - yP) - r*(xq - xP)
                l0 = (ZH * (yq0 - yP) - r_ * (xq0 - xP)) % p
                l1 = (ZH * yq1 - r_ * xq1) % p
                n0, n1 = (n0 * l0 - n1 * l1) % p, (n0 * l1 + n1 * l0) % p
                # Mixed Jacobian addition T <- T + P.
                HH = H * H % p
                HHH = H * HH % p
                V = X * HH % p
                X = (r_ * r_ - HHH - 2 * V) % p
                Y = (r_ * (V - X) - Y * HHH) % p
                Z = ZH
            if not t_infinite:
                ZZ3 = Z * Z % p
                v0 = (ZZ3 * xq0 - X) % p
                v1 = ZZ3 * xq1 % p
                d0, d1 = (d0 * v0 - d1 * v1) % p, (d0 * v1 + d1 * v0) % p
    return Fp2(n0, n1, p) * Fp2(d0, d1, p).inverse()


def _fp2_pow(c0: int, c1: int, exponent: int, p: int) -> Fp2:
    """Raw-integer square-and-multiply for ``F_{p^2}`` exponentiation."""
    r0, r1 = 1, 0
    b0, b1 = c0 % p, c1 % p
    while exponent:
        if exponent & 1:
            r0, r1 = (r0 * b0 - r1 * b1) % p, (r0 * b1 + r1 * b0) % p
        b0, b1 = (b0 * b0 - b1 * b1) % p, 2 * b0 * b1 % p
        exponent >>= 1
    return Fp2(r0, r1, p)


def tate_pairing(p_point: Point, q_point: Point) -> Fp2:
    """The reduced, distorted Tate pairing ``e(P, Q) = t(P, phi(Q))``.

    Both arguments must be points in the order-``r`` subgroup of
    ``E(F_p)``.  The result is an ``r``-th root of unity in ``F_{p^2}``;
    ``e(aP, bQ) = e(P, Q)^(ab)`` and ``e(G, G) != 1`` for the generator.
    """
    params = p_point.params
    if p_point.is_infinity or q_point.is_infinity:
        return Fp2.one(params.p)
    distorted = distortion_map(q_point)
    raw = miller_loop(p_point, distorted, params)
    # (p^2 - 1)/r == (p - 1) * cofactor, and z^(p-1) = conj(z) * z^-1.
    unitary = raw.conjugate() * raw.inverse()
    return _fp2_pow(unitary.c0, unitary.c1, params.cofactor, params.p)
