"""Tate pairing on the supersingular curve, with distortion map.

Provides a symmetric bilinear pairing ``e : G x G -> F_{p^2}`` on the
order-``r`` subgroup ``G`` of ``E(F_p)``, computed as the reduced Tate
pairing ``t(P, phi(Q))`` where ``phi`` is the distortion map.  This is the
pairing used by the original BLS signature scheme.

The Miller loop is inversion-free: the running point is kept in Jacobian
coordinates over raw integers, and every line/vertical evaluation is
scaled by a factor lying in ``F_p`` (``2YZ^3`` for tangents, ``ZH`` for
chords, ``Z^2`` for verticals).  Those factors are simply dropped, because
the final exponentiation ``(p^2 - 1)/r = (p - 1) * cofactor`` maps every
``F_p`` unit to one — so the *reduced* pairing value is unchanged while
the loop performs no modular inversion at all.  Numerators and
denominators are accumulated separately with a single inversion at the
end, and ``z^(p-1)`` in the final exponentiation is computed as
``conj(z) / z``, leaving only a cofactor-sized exponent.
"""

from __future__ import annotations

from repro.crypto.curve import Point, distortion_map
from repro.crypto.field import Fp, Fp2
from repro.crypto.params import CurveParams

__all__ = ["tate_pairing", "tate_check", "miller_loop"]


# Ladders: the Miller loop's point arithmetic and line coefficients depend
# only on the first argument P, not on Q.  A "ladder" is the per-bit list of
# line/vertical coefficient triples; evaluating a cached ladder at a new Q
# skips all the point arithmetic (roughly half the loop's work).  The hot
# path re-pairs a handful of first arguments constantly — the generator G on
# every verification's left side, H(m) on every right side within a block —
# so ladders hit the cache almost always after warm-up.
#
# Lines are normalised to the form ``l(Q) = A*yq - B*xq + C`` (numerator)
# and verticals to ``v(Q) = B*xq + C`` (denominator), all coefficients in
# F_p, so evaluation at Q in E(F_{p^2}) is a handful of int multiplications.
_LADDER_CACHE: dict = {}
_LADDER_CACHE_MAX = 128


def _build_ladder(xP: int, yP: int, params: CurveParams) -> tuple:
    """The per-bit line/vertical coefficients of ``f_{r,P}``.

    Mirrors the inversion-free Jacobian Miller loop step for step, but
    emits coefficient triples instead of evaluating them at a point.
    """
    p = params.p
    steps = []
    X, Y, Z = xP, yP, 1  # the running point T in Jacobian coordinates
    t_infinite = False

    def tangent_coeffs(X: int, Y: int, Z: int):
        """Tangent-line coefficients at T (scaled by 2YZ^3), and 2T."""
        ZZ = Z * Z % p
        if Y == 0:
            # 2-torsion: the tangent is the vertical Z^2*xq - X, and 2T = O.
            return (0, (-ZZ) % p, (-X) % p), 0, 0, 0, True
        XX = X * X % p
        YY = Y * Y % p
        Z3 = 2 * Y * Z % p
        # L = 2YZ^3 * yq + (3X^3 - 2Y^2) - 3X^2 Z^2 * xq
        A = Z3 * ZZ % p
        B = 3 * XX % p * ZZ % p
        C = (3 * X * XX - 2 * YY) % p
        # a = 0 Jacobian doubling.
        CC = YY * YY % p
        t = X + YY
        D = 2 * (t * t - XX - CC) % p
        E = 3 * XX % p
        X3 = (E * E - 2 * D) % p
        Y3 = (E * (D - X3) - 8 * CC) % p
        return (A, B, C), X3, Y3, Z3, False

    for bit in bin(params.r)[3:]:  # binary expansion of r, leading '1' skipped
        nlines = []  # (A, B, C): multiply numerator by A*yq - B*xq + C
        dverts = []  # (B, C): multiply denominator by B*xq + C
        if not t_infinite:
            line, X, Y, Z, t_infinite = tangent_coeffs(X, Y, Z)
            nlines.append(line)
            if not t_infinite:
                # Vertical at 2T, scaled by Z3^2: v = Z3^2*xq - X3.
                dverts.append((Z * Z % p, (-X) % p))
        if bit == "1":
            if t_infinite:
                # O + P = P: the line degenerates to the vertical at P.
                dverts.append((1, (-xP) % p))
                X, Y, Z = xP, yP, 1
                t_infinite = False
                steps.append((tuple(nlines), tuple(dverts)))
                continue
            ZZ = Z * Z % p
            U2 = xP * ZZ % p
            S2 = yP * Z % p * ZZ % p
            if U2 == X:
                if S2 == Y:
                    # T == P: the chord is the tangent at T.
                    line, X, Y, Z, t_infinite = tangent_coeffs(X, Y, Z)
                    nlines.append(line)
                else:
                    # T == -P: vertical line, and T + P is the identity.
                    nlines.append((0, (-ZZ) % p, (-X) % p))
                    t_infinite = True
                    steps.append((tuple(nlines), tuple(dverts)))
                    continue
            else:
                H = (U2 - X) % p
                r_ = (S2 - Y) % p
                ZH = Z * H % p
                # Chord through T and P, scaled by ZH:
                #   L = ZH*yq - r*xq + (r*xP - ZH*yP)
                nlines.append((ZH, r_, (r_ * xP - ZH * yP) % p))
                # Mixed Jacobian addition T <- T + P.
                HH = H * H % p
                HHH = H * HH % p
                V = X * HH % p
                X = (r_ * r_ - HHH - 2 * V) % p
                Y = (r_ * (V - X) - Y * HHH) % p
                Z = ZH
            if not t_infinite:
                dverts.append((Z * Z % p, (-X) % p))
        steps.append((tuple(nlines), tuple(dverts)))
    return tuple(steps)


def miller_loop(p_point: Point, q_point: Point, params: CurveParams) -> Fp2:
    """Compute the Miller function ``f_{r,P}(Q)`` up to ``F_p`` factors.

    ``p_point`` must live in ``E(F_p)``; ``q_point`` may live in ``E(F_p)``
    or ``E(F_{p^2})`` (the distorted image used by the pairing).  The
    result equals the textbook Miller function times a unit of ``F_p``,
    which the reduced-pairing exponentiation in :func:`tate_pairing`
    eliminates.  The ladder of line coefficients for ``P`` is memoised, so
    repeated pairings with the same first argument (the generator, the
    block's message hash) skip the point arithmetic entirely.
    """
    p = params.p
    if p_point.is_infinity or q_point.is_infinity:
        return Fp2.one(p)
    if not isinstance(p_point.x, Fp):
        raise TypeError("miller_loop expects its first argument in E(F_p)")
    xP, yP = p_point.x.value, p_point.y.value
    key = (p, params.r, xP, yP)
    steps = _LADDER_CACHE.get(key)
    if steps is None:
        steps = _build_ladder(xP, yP, params)
        if len(_LADDER_CACHE) >= _LADDER_CACHE_MAX:
            _LADDER_CACHE.clear()
        _LADDER_CACHE[key] = steps

    qx, qy = q_point.x, q_point.y
    if isinstance(qx, Fp2):
        xq0, xq1 = qx.c0, qx.c1
    else:
        xq0, xq1 = qx.value, 0
    if isinstance(qy, Fp2):
        yq0, yq1 = qy.c0, qy.c1
    else:
        yq0, yq1 = qy.value, 0

    n0, n1 = 1, 0  # numerator accumulator, an F_{p^2} value (c0, c1)
    d0, d1 = 1, 0  # denominator accumulator
    for nlines, dverts in steps:
        n0, n1 = (n0 * n0 - n1 * n1) % p, 2 * n0 * n1 % p
        d0, d1 = (d0 * d0 - d1 * d1) % p, 2 * d0 * d1 % p
        for A, B, C in nlines:
            l0 = (A * yq0 - B * xq0 + C) % p
            l1 = (A * yq1 - B * xq1) % p
            n0, n1 = (n0 * l0 - n1 * l1) % p, (n0 * l1 + n1 * l0) % p
        for B, C in dverts:
            v0 = (B * xq0 + C) % p
            v1 = B * xq1 % p
            d0, d1 = (d0 * v0 - d1 * v1) % p, (d0 * v1 + d1 * v0) % p
    return Fp2(n0, n1, p) * Fp2(d0, d1, p).inverse()


def _fp2_pow(c0: int, c1: int, exponent: int, p: int) -> Fp2:
    """Raw-integer square-and-multiply for ``F_{p^2}`` exponentiation."""
    r0, r1 = 1, 0
    b0, b1 = c0 % p, c1 % p
    while exponent:
        if exponent & 1:
            r0, r1 = (r0 * b0 - r1 * b1) % p, (r0 * b1 + r1 * b0) % p
        b0, b1 = (b0 * b0 - b1 * b1) % p, 2 * b0 * b1 % p
        exponent >>= 1
    return Fp2(r0, r1, p)


# Non-adjacent form of the fixed cofactor exponent, cached per value.
_NAF_CACHE: dict = {}


def _naf_digits(k: int) -> list:
    digits = _NAF_CACHE.get(k)
    if digits is not None:
        return digits
    original = k
    digits = []
    while k:
        if k & 1:
            d = 2 - (k & 3)  # 1 or -1; subtracting leaves two zero bits
            digits.append(d)
            k -= d
        else:
            digits.append(0)
        k >>= 1
    digits.reverse()
    _NAF_CACHE[original] = digits
    return digits


def _fp2_pow_unitary(c0: int, c1: int, exponent: int, p: int) -> Fp2:
    """Exponentiation specialised to norm-1 (unitary) ``F_{p^2}`` elements.

    A value ``z^(p-1)`` has norm 1, which buys two shortcuts: squaring is
    ``(2a^2 - 1, 2ab)`` — two multiplications instead of three — and the
    inverse is the conjugate, so the fixed exponent can run in signed-digit
    (NAF) form with ~1/3 as many multiplies as binary square-and-multiply.
    Matches :func:`_fp2_pow` bit for bit on unitary inputs.
    """
    b0, b1 = c0 % p, c1 % p
    nb1 = (-b1) % p  # conjugate == inverse for unitary values
    r0, r1 = 1, 0
    for d in _naf_digits(exponent):
        r0, r1 = (2 * r0 * r0 - 1) % p, 2 * r0 * r1 % p
        if d == 1:
            r0, r1 = (r0 * b0 - r1 * b1) % p, (r0 * b1 + r1 * b0) % p
        elif d == -1:
            r0, r1 = (r0 * b0 - r1 * nb1) % p, (r0 * nb1 + r1 * b0) % p
    return Fp2(r0, r1, p)


def tate_pairing(p_point: Point, q_point: Point) -> Fp2:
    """The reduced, distorted Tate pairing ``e(P, Q) = t(P, phi(Q))``.

    Both arguments must be points in the order-``r`` subgroup of
    ``E(F_p)``.  The result is an ``r``-th root of unity in ``F_{p^2}``;
    ``e(aP, bQ) = e(P, Q)^(ab)``, ``e(G, G) != 1`` for the generator, and
    the pairing is symmetric (``phi`` commutes with the group law), so
    callers are free to put the cache-friendlier argument first.
    """
    params = p_point.params
    if p_point.is_infinity or q_point.is_infinity:
        return Fp2.one(params.p)
    distorted = distortion_map(q_point)
    raw = miller_loop(p_point, distorted, params)
    # (p^2 - 1)/r == (p - 1) * cofactor, and z^(p-1) = conj(z) * z^-1.
    unitary = raw.conjugate() * raw.inverse()
    return _fp2_pow_unitary(unitary.c0, unitary.c1, params.cofactor, params.p)


def tate_check(a1: Point, b1: Point, a2: Point, b2: Point) -> bool:
    """Decide ``e(a1, b1) == e(a2, b2)`` with one final exponentiation.

    Verifier's shortcut: the two reduced pairings are equal iff
    ``(m1/m2)^((p^2-1)/r) == 1`` for the raw Miller values, so instead of
    reducing both sides we reduce the quotient once.  Using
    ``x^(p-1) = conj(x)/x``, the quotient's ``p-1`` power needs a single
    field inversion: ``(conj(m1) m2) / (m1 conj(m2))``.
    """
    if a1.is_infinity or b1.is_infinity or a2.is_infinity or b2.is_infinity:
        return tate_pairing(a1, b1) == tate_pairing(a2, b2)
    params = a1.params
    p = params.p
    m1 = miller_loop(a1, distortion_map(b1), params)
    m2 = miller_loop(a2, distortion_map(b2), params)
    quotient = (m1.conjugate() * m2) * (m1 * m2.conjugate()).inverse()
    reduced = _fp2_pow_unitary(quotient.c0, quotient.c1, params.cofactor, p)
    return reduced == Fp2.one(p)
