"""Tate pairing on the supersingular curve, with distortion map.

Provides a symmetric bilinear pairing ``e : G x G -> F_{p^2}`` on the
order-``r`` subgroup ``G`` of ``E(F_p)``, computed as the reduced Tate
pairing ``t(P, phi(Q))`` where ``phi`` is the distortion map.  This is the
pairing used by the original BLS signature scheme.
"""

from __future__ import annotations

from repro.crypto.curve import Point, distortion_map
from repro.crypto.field import Fp, Fp2
from repro.crypto.params import CurveParams

__all__ = ["tate_pairing", "miller_loop"]


def _line_value(a: Point, b: Point, q: Point) -> Fp2:
    """Evaluate the line through points ``a`` and ``b`` at ``q``.

    ``a`` and ``b`` live in ``E(F_p)``; ``q`` lives in ``E(F_{p^2})``.
    Handles vertical lines (``a + b`` at infinity, or doubling a point with
    ``y = 0``) and returns 1 when either input point is at infinity.
    """
    p = a.params.p
    if a.is_infinity or b.is_infinity:
        return Fp2.one(p)
    xq = q.x if isinstance(q.x, Fp2) else Fp2.from_fp(q.x)
    yq = q.y if isinstance(q.y, Fp2) else Fp2.from_fp(q.y)
    xa, ya = a.x, a.y
    xb, yb = b.x, b.y
    if xa == xb and (ya + yb).is_zero():
        # Vertical line through a and -a (covers doubling with y == 0).
        return xq - Fp2.from_fp(xa)
    if a == b:
        slope = (xa * xa * 3) / (ya * 2)
    else:
        slope = (yb - ya) / (xb - xa)
    slope2 = Fp2.from_fp(slope)
    return (yq - Fp2.from_fp(ya)) - slope2 * (xq - Fp2.from_fp(xa))


def _vertical_value(c: Point, q: Point) -> Fp2:
    """Evaluate the vertical line through ``c`` at ``q`` (1 at infinity)."""
    p = c.params.p
    if c.is_infinity:
        return Fp2.one(p)
    xq = q.x if isinstance(q.x, Fp2) else Fp2.from_fp(q.x)
    return xq - Fp2.from_fp(c.x)


def miller_loop(p_point: Point, q_point: Point, params: CurveParams) -> Fp2:
    """Compute the Miller function ``f_{r,P}(Q)`` in ``F_{p^2}``.

    Numerators and denominators are accumulated separately so only a single
    field inversion is needed at the end.
    """
    order = params.r
    numerator = Fp2.one(params.p)
    denominator = Fp2.one(params.p)
    t = p_point
    bits = bin(order)[3:]  # skip the leading '1'
    for bit in bits:
        numerator = numerator * numerator * _line_value(t, t, q_point)
        denominator = denominator * denominator * _vertical_value(t + t, q_point)
        t = t + t
        if bit == "1":
            numerator = numerator * _line_value(t, p_point, q_point)
            denominator = denominator * _vertical_value(t + p_point, q_point)
            t = t + p_point
    return numerator * denominator.inverse()


def tate_pairing(p_point: Point, q_point: Point) -> Fp2:
    """The reduced, distorted Tate pairing ``e(P, Q) = t(P, phi(Q))``.

    Both arguments must be points in the order-``r`` subgroup of
    ``E(F_p)``.  The result is an ``r``-th root of unity in ``F_{p^2}``;
    ``e(aP, bQ) = e(P, Q)^(ab)`` and ``e(G, G) != 1`` for the generator.
    """
    params = p_point.params
    if p_point.is_infinity or q_point.is_infinity:
        return Fp2.one(params.p)
    distorted = distortion_map(q_point)
    raw = miller_loop(p_point, distorted, params)
    exponent = (params.p * params.p - 1) // params.r
    return raw ** exponent
