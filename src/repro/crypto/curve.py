"""Elliptic-curve group operations for the BLS signature backend.

The curve is the supersingular curve ``E : y^2 = x^3 + 1``.  Points can
live over ``F_p`` (signatures, public keys) or over ``F_{p^2}`` (images of
the distortion map used inside the pairing).  The same :class:`Point`
class handles both by storing generic field elements.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Union

from repro.crypto.field import Fp, Fp2, cube_root_of_unity
from repro.crypto.params import CurveParams

__all__ = ["Point", "generator", "hash_to_point", "distortion_map"]

FieldElement = Union[Fp, Fp2]


@dataclass(frozen=True)
class Point:
    """An affine point on ``y^2 = x^3 + 1`` or the point at infinity.

    ``x`` and ``y`` are ``None`` exactly when the point is the identity.
    """

    x: Optional[FieldElement]
    y: Optional[FieldElement]
    params: CurveParams

    # -- construction -----------------------------------------------------
    @classmethod
    def infinity(cls, params: CurveParams) -> "Point":
        return cls(None, None, params)

    @classmethod
    def from_ints(cls, x: int, y: int, params: CurveParams) -> "Point":
        return cls(Fp(x, params.p), Fp(y, params.p), params)

    # -- predicates -------------------------------------------------------
    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def is_on_curve(self) -> bool:
        if self.is_infinity:
            return True
        lhs = self.y * self.y
        rhs = self.x * self.x * self.x + 1
        return lhs == rhs

    def has_order_r(self) -> bool:
        """Check membership in the prime-order subgroup."""
        return (self * self.params.r).is_infinity and not self.is_infinity

    # -- group law --------------------------------------------------------
    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point(self.x, -self.y, self.params)

    def __add__(self, other: "Point") -> "Point":
        if not isinstance(other, Point):
            return NotImplemented
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        x1, y1, x2, y2 = self.x, self.y, other.x, other.y
        if x1 == x2:
            if (y1 + y2).is_zero():
                return Point.infinity(self.params)
            # Doubling.
            slope = (x1 * x1 * 3) / (y1 * 2)
        else:
            slope = (y2 - y1) / (x2 - x1)
        x3 = slope * slope - x1 - x2
        y3 = slope * (x1 - x3) - y1
        return Point(x3, y3, self.params)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar < 0:
            return (-self) * (-scalar)
        result = Point.infinity(self.params)
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend + addend
            scalar >>= 1
        return result

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.is_infinity or other.is_infinity:
            return self.is_infinity and other.is_infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.is_infinity:
            return hash(("inf", self.params.p))
        return hash((self.x, self.y, self.params.p))

    # -- serialisation ----------------------------------------------------
    def to_bytes(self) -> bytes:
        """A canonical byte encoding used for hashing and equality checks."""
        byte_len = (self.params.p.bit_length() + 7) // 8
        if self.is_infinity:
            return b"\x00" * (2 * byte_len + 1)
        parts = [b"\x01"]
        for coordinate in (self.x, self.y):
            if isinstance(coordinate, Fp):
                parts.append(coordinate.value.to_bytes(byte_len, "big"))
                parts.append((0).to_bytes(byte_len, "big"))
            else:
                parts.append(coordinate.c0.to_bytes(byte_len, "big"))
                parts.append(coordinate.c1.to_bytes(byte_len, "big"))
        return b"".join(parts)


def generator(params: CurveParams) -> Point:
    """The canonical generator of the order-``r`` subgroup."""
    return Point.from_ints(params.gx, params.gy, params)


def hash_to_point(message: bytes, params: CurveParams, domain: bytes = b"iniva-bls") -> Point:
    """Hash a message onto the prime-order subgroup.

    Uses hash-and-check on x-coordinates followed by cofactor clearing.
    This is deterministic and, modelling SHA-256 as a random oracle, lands
    uniformly in the curve group before the cofactor multiplication.
    """
    p = params.p
    byte_len = (p.bit_length() + 7) // 8 + 16
    counter = 0
    while True:
        digest = b""
        block = 0
        while len(digest) < byte_len:
            digest += hashlib.sha256(
                domain + counter.to_bytes(4, "big") + block.to_bytes(4, "big") + message
            ).digest()
            block += 1
        x = Fp(int.from_bytes(digest[:byte_len], "big"), p)
        rhs = x * x * x + 1
        y = rhs.sqrt()
        if y is not None:
            candidate = Point(x, y, params) * params.cofactor
            if not candidate.is_infinity:
                return candidate
        counter += 1


def distortion_map(point: Point) -> Point:
    """The distortion map ``phi(x, y) = (zeta * x, y)`` into ``E(F_{p^2})``.

    ``zeta`` is a primitive cube root of unity in ``F_{p^2}``; the image of
    a subgroup point is linearly independent from the original subgroup,
    which makes the modified Tate pairing non-degenerate.
    """
    if point.is_infinity:
        return point
    p = point.params.p
    zeta = cube_root_of_unity(p)
    x = point.x if isinstance(point.x, Fp2) else Fp2.from_fp(point.x)
    y = point.y if isinstance(point.y, Fp2) else Fp2.from_fp(point.y)
    return Point(zeta * x, y, point.params)
