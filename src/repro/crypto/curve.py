"""Elliptic-curve group operations for the BLS signature backend.

The curve is the supersingular curve ``E : y^2 = x^3 + 1``.  Points can
live over ``F_p`` (signatures, public keys) or over ``F_{p^2}`` (images of
the distortion map used inside the pairing).  The same :class:`Point`
class handles both by storing generic field elements.

Scalar multiplication of ``F_p`` points — the hot path of signing, key
generation, cofactor clearing and aggregate-key computation — runs on a
raw-integer Jacobian-coordinate core (no modular inversion per group
operation) with width-5 wNAF recoding and per-point precomputation
tables.  The subgroup generator additionally gets a fixed-base windowed
table so ``G * sk`` degenerates to ~``r_bits/4`` mixed additions with no
doublings at all.  The schoolbook affine double-and-add survives as
:func:`reference_scalar_mult` and remains the semantic reference the
property tests compare against bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.crypto.field import Fp, Fp2, cube_root_of_unity
from repro.crypto.params import CurveParams

__all__ = [
    "Point",
    "generator",
    "hash_to_point",
    "distortion_map",
    "multi_scalar_mult",
    "reference_scalar_mult",
    "clear_hash_cache",
]

FieldElement = Union[Fp, Fp2]

# A Jacobian point (X, Y, Z) represents the affine point (X/Z^2, Y/Z^3);
# Z == 0 encodes the point at infinity.
_JAC_INFINITY = (1, 1, 0)


# ---------------------------------------------------------------------------
# Raw-integer Jacobian core (curve coefficient a = 0)
# ---------------------------------------------------------------------------

def _jac_double(X1: int, Y1: int, Z1: int, p: int) -> Tuple[int, int, int]:
    if Z1 == 0 or Y1 == 0:
        # Doubling the identity, or an order-2 point (y == 0), gives infinity.
        return _JAC_INFINITY
    A = X1 * X1 % p
    B = Y1 * Y1 % p
    C = B * B % p
    t = X1 + B
    D = 2 * (t * t - A - C) % p
    E = 3 * A % p
    X3 = (E * E - 2 * D) % p
    Y3 = (E * (D - X3) - 8 * C) % p
    Z3 = 2 * Y1 * Z1 % p
    return X3, Y3, Z3


def _jac_add_mixed(
    X1: int, Y1: int, Z1: int, x2: int, y2: int, p: int
) -> Tuple[int, int, int]:
    """Add the affine point ``(x2, y2)`` to the Jacobian point ``(X1, Y1, Z1)``."""
    if Z1 == 0:
        return x2, y2, 1
    Z1Z1 = Z1 * Z1 % p
    U2 = x2 * Z1Z1 % p
    S2 = y2 * Z1 % p * Z1Z1 % p
    if U2 == X1:
        if S2 == Y1:
            return _jac_double(X1, Y1, Z1, p)
        return _JAC_INFINITY
    H = (U2 - X1) % p
    HH = H * H % p
    HHH = H * HH % p
    r = (S2 - Y1) % p
    V = X1 * HH % p
    X3 = (r * r - HHH - 2 * V) % p
    Y3 = (r * (V - X3) - Y1 * HHH) % p
    Z3 = Z1 * H % p
    return X3, Y3, Z3


def _batch_to_affine(
    points: List[Tuple[int, int, int]], p: int
) -> List[Tuple[int, int]]:
    """Convert Jacobian points to affine with a single modular inversion.

    Uses the Montgomery batch-inversion trick; no input may be infinity.
    """
    zs = [pt[2] for pt in points]
    prefix = [1] * (len(zs) + 1)
    for i, z in enumerate(zs):
        prefix[i + 1] = prefix[i] * z % p
    inv_all = pow(prefix[-1], p - 2, p)
    out: List[Optional[Tuple[int, int]]] = [None] * len(points)
    for i in range(len(zs) - 1, -1, -1):
        z_inv = inv_all * prefix[i] % p
        inv_all = inv_all * zs[i] % p
        z2 = z_inv * z_inv % p
        X, Y, _ = points[i]
        out[i] = (X * z2 % p, Y * z2 % p * z_inv % p)
    return out  # type: ignore[return-value]


def _wnaf(k: int, width: int) -> List[int]:
    """Width-``w`` non-adjacent form of ``k`` (little-endian digit list)."""
    digits: List[int] = []
    window = 1 << width
    mask = 2 * window - 1
    while k:
        if k & 1:
            d = k & mask
            if d >= window:
                d -= 2 * window
            digits.append(d)
            k -= d
        else:
            digits.append(0)
        k >>= 1
    return digits


_WNAF_WIDTH = 5
# Per-point odd-multiple tables: (p, x, y) -> [1P, 3P, ..., (2^w - 1)P] affine.
_TABLE_CACHE: Dict[Tuple[int, int, int], List[Tuple[int, int]]] = {}
_TABLE_CACHE_MAX = 256


def _odd_multiples(x: int, y: int, p: int) -> Optional[List[Tuple[int, int]]]:
    """The affine odd multiples [1P, 3P, ..., (2^w - 1)P], or ``None``.

    ``None`` signals that the point's order is small enough for one of the
    multiples to hit infinity, which the batch normalisation cannot
    represent — callers fall back to plain double-and-add.
    """
    key = (p, x, y)
    table = _TABLE_CACHE.get(key)
    if table is not None:
        return table
    count = 1 << (_WNAF_WIDTH - 1)
    jac: List[Tuple[int, int, int]] = [(x, y, 1)]
    twice = _jac_double(x, y, 1, p)
    if twice[2] == 0:
        return None
    tx, ty = _batch_to_affine([twice], p)[0]
    for _ in range(count - 1):
        jac.append(_jac_add_mixed(*jac[-1], tx, ty, p))
    if any(entry[2] == 0 for entry in jac):
        return None
    table = _batch_to_affine(jac, p)
    if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
        _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
    _TABLE_CACHE[key] = table
    return table


def _scalar_mult_binary(x: int, y: int, k: int, p: int) -> Tuple[int, int, int]:
    """Jacobian double-and-add without precomputation (any point order)."""
    acc = _JAC_INFINITY
    for bit in bin(k)[2:]:
        acc = _jac_double(*acc, p)
        if bit == "1":
            acc = _jac_add_mixed(*acc, x, y, p)
    return acc


def _scalar_mult_ints(x: int, y: int, k: int, p: int) -> Tuple[int, int, int]:
    """wNAF scalar multiplication on raw affine ints; returns Jacobian."""
    if k == 0:
        return _JAC_INFINITY
    table = _odd_multiples(x, y, p)
    if table is None:
        # Small-order point (odd multiples reach infinity): wNAF tables
        # cannot represent it, but plain double-and-add can.
        return _scalar_mult_binary(x, y, k, p)
    acc = _JAC_INFINITY
    for d in reversed(_wnaf(k, _WNAF_WIDTH)):
        acc = _jac_double(*acc, p)
        if d > 0:
            ax, ay = table[(d - 1) >> 1]
            acc = _jac_add_mixed(*acc, ax, ay, p)
        elif d < 0:
            ax, ay = table[(-d - 1) >> 1]
            acc = _jac_add_mixed(*acc, ax, (p - ay) % p, p)
    return acc


# ---------------------------------------------------------------------------
# Fixed-base windowed tables for the subgroup generator
# ---------------------------------------------------------------------------

_FIXED_WINDOW = 4
# (p, gx, gy) -> per-window lists of the 15 affine multiples d * (16^i G).
_FIXED_BASE_CACHE: Dict[Tuple[int, int, int], List[List[Tuple[int, int]]]] = {}


def _fixed_base_tables(params: CurveParams) -> List[List[Tuple[int, int]]]:
    key = (params.p, params.gx, params.gy)
    tables = _FIXED_BASE_CACHE.get(key)
    if tables is not None:
        return tables
    p = params.p
    windows = (params.r.bit_length() + _FIXED_WINDOW - 1) // _FIXED_WINDOW
    digit_count = (1 << _FIXED_WINDOW) - 1
    # Window bases B_i = 16^i * G, computed by repeated doubling.
    bases_jac: List[Tuple[int, int, int]] = [(params.gx, params.gy, 1)]
    for _ in range(windows - 1):
        nxt = bases_jac[-1]
        for _ in range(_FIXED_WINDOW):
            nxt = _jac_double(*nxt, p)
        bases_jac.append(nxt)
    bases = _batch_to_affine(bases_jac, p)
    # All d * B_i for d in 1..15, normalised with one shared inversion.
    flat: List[Tuple[int, int, int]] = []
    for bx, by in bases:
        acc = (bx, by, 1)
        flat.append(acc)
        for _ in range(digit_count - 1):
            acc = _jac_add_mixed(*acc, bx, by, p)
            flat.append(acc)
    flat_affine = _batch_to_affine(flat, p)
    tables = [
        flat_affine[i * digit_count : (i + 1) * digit_count] for i in range(windows)
    ]
    _FIXED_BASE_CACHE[key] = tables
    return tables


def _fixed_base_mult(k: int, params: CurveParams) -> Tuple[int, int, int]:
    """Multiply the generator by ``k`` using the fixed-base tables.

    ``k`` is reduced modulo the subgroup order ``r`` (valid because the
    generator has exact order ``r``).
    """
    k %= params.r
    if k == 0:
        return _JAC_INFINITY
    tables = _fixed_base_tables(params)
    p = params.p
    acc = _JAC_INFINITY
    window = 0
    mask = (1 << _FIXED_WINDOW) - 1
    while k:
        digit = k & mask
        if digit:
            ax, ay = tables[window][digit - 1]
            acc = _jac_add_mixed(*acc, ax, ay, p)
        k >>= _FIXED_WINDOW
        window += 1
    return acc


# ---------------------------------------------------------------------------
# Public point type
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Point:
    """An affine point on ``y^2 = x^3 + 1`` or the point at infinity.

    ``x`` and ``y`` are ``None`` exactly when the point is the identity.
    """

    x: Optional[FieldElement]
    y: Optional[FieldElement]
    params: CurveParams

    # -- construction -----------------------------------------------------
    @classmethod
    def infinity(cls, params: CurveParams) -> "Point":
        return cls(None, None, params)

    @classmethod
    def from_ints(cls, x: int, y: int, params: CurveParams) -> "Point":
        return cls(Fp(x, params.p), Fp(y, params.p), params)

    @classmethod
    def _from_jacobian(cls, jac: Tuple[int, int, int], params: CurveParams) -> "Point":
        if jac[2] == 0:
            return cls.infinity(params)
        x, y = _batch_to_affine([jac], params.p)[0]
        return cls(Fp(x, params.p), Fp(y, params.p), params)

    # -- predicates -------------------------------------------------------
    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def is_on_curve(self) -> bool:
        if self.is_infinity:
            return True
        lhs = self.y * self.y
        rhs = self.x * self.x * self.x + 1
        return lhs == rhs

    def has_order_r(self) -> bool:
        """Check membership in the prime-order subgroup."""
        return (self * self.params.r).is_infinity and not self.is_infinity

    # -- group law --------------------------------------------------------
    def __neg__(self) -> "Point":
        if self.is_infinity:
            return self
        return Point(self.x, -self.y, self.params)

    def __add__(self, other: "Point") -> "Point":
        if not isinstance(other, Point):
            return NotImplemented
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        x1, y1, x2, y2 = self.x, self.y, other.x, other.y
        if x1 == x2:
            if (y1 + y2).is_zero():
                return Point.infinity(self.params)
            # Doubling.
            slope = (x1 * x1 * 3) / (y1 * 2)
        else:
            slope = (y2 - y1) / (x2 - x1)
        x3 = slope * slope - x1 - x2
        y3 = slope * (x1 - x3) - y1
        return Point(x3, y3, self.params)

    def __sub__(self, other: "Point") -> "Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "Point":
        if not isinstance(scalar, int):
            return NotImplemented
        if scalar < 0:
            return (-self) * (-scalar)
        if self.is_infinity or scalar == 0:
            return Point.infinity(self.params)
        x = self.x
        if isinstance(x, Fp):
            params = self.params
            xi, yi = x.value, self.y.value
            if xi == params.gx and yi == params.gy:
                return Point._from_jacobian(_fixed_base_mult(scalar, params), params)
            return Point._from_jacobian(
                _scalar_mult_ints(xi, yi, scalar, params.p), params
            )
        # F_{p^2} points (distortion-map images) stay on the generic path.
        return _double_and_add(self, scalar)

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Point):
            return NotImplemented
        if self.is_infinity or other.is_infinity:
            return self.is_infinity and other.is_infinity
        return self.x == other.x and self.y == other.y

    def __hash__(self) -> int:
        if self.is_infinity:
            return hash(("inf", self.params.p))
        return hash((self.x, self.y, self.params.p))

    # -- serialisation ----------------------------------------------------
    def to_bytes(self) -> bytes:
        """A canonical byte encoding used for hashing and equality checks."""
        byte_len = (self.params.p.bit_length() + 7) // 8
        if self.is_infinity:
            return b"\x00" * (2 * byte_len + 1)
        parts = [b"\x01"]
        for coordinate in (self.x, self.y):
            if isinstance(coordinate, Fp):
                parts.append(coordinate.value.to_bytes(byte_len, "big"))
                parts.append((0).to_bytes(byte_len, "big"))
            else:
                parts.append(coordinate.c0.to_bytes(byte_len, "big"))
                parts.append(coordinate.c1.to_bytes(byte_len, "big"))
        return b"".join(parts)


def multi_scalar_mult(pairs: List[Tuple["Point", int]], params: CurveParams) -> "Point":
    """``sum_i k_i * P_i`` via interleaved wNAF.

    The doubling ladder — the dominant cost of a scalar multiplication —
    is shared across all points: ``n`` points cost one ladder plus ``n``
    tables and add-steps instead of ``n`` ladders.  This is what makes the
    random-linear-combination verifiers cheap: the combination's scalar
    work no longer scales with the batch size's ladder count.

    Points off the fast path (``F_{p^2}`` distortion images, small-order
    points whose wNAF tables cannot be built) fall back to plain ``P * k``
    and are added to the result.
    """
    p = params.p
    jobs = []
    extra = Point.infinity(params)
    for point, k in pairs:
        if k < 0:
            point, k = -point, -k
        if k == 0 or point.is_infinity:
            continue
        x = point.x
        if not isinstance(x, Fp):
            extra = extra + point * k
            continue
        table = _odd_multiples(x.value, point.y.value, p)
        if table is None:
            extra = extra + point * k
            continue
        jobs.append((table, _wnaf(k, _WNAF_WIDTH)))
    if not jobs:
        return extra
    acc = _JAC_INFINITY
    for i in range(max(len(digits) for _, digits in jobs) - 1, -1, -1):
        acc = _jac_double(*acc, p)
        for table, digits in jobs:
            if i < len(digits):
                d = digits[i]
                if d > 0:
                    ax, ay = table[(d - 1) >> 1]
                    acc = _jac_add_mixed(*acc, ax, ay, p)
                elif d < 0:
                    ax, ay = table[(-d - 1) >> 1]
                    acc = _jac_add_mixed(*acc, ax, (p - ay) % p, p)
    result = Point._from_jacobian(acc, params)
    return result if extra.is_infinity else result + extra


def _double_and_add(point: Point, scalar: int) -> Point:
    """Schoolbook affine double-and-add (also the test reference)."""
    result = Point.infinity(point.params)
    addend = point
    while scalar:
        if scalar & 1:
            result = result + addend
        addend = addend + addend
        scalar >>= 1
    return result


def reference_scalar_mult(point: Point, scalar: int) -> Point:
    """Affine double-and-add reference implementation.

    Kept as the semantic baseline the Jacobian/wNAF fast path is tested
    against; not used on any hot path.
    """
    if scalar < 0:
        return reference_scalar_mult(-point, -scalar)
    return _double_and_add(point, scalar)


def generator(params: CurveParams) -> Point:
    """The canonical generator of the order-``r`` subgroup."""
    return Point.from_ints(params.gx, params.gy, params)


# Module-wide hash-to-point cache, shared by every scheme instance that
# hashes the same message under the same parameters and domain.
_HASH_CACHE: Dict[Tuple[int, bytes, bytes], Point] = {}
_HASH_CACHE_MAX = 4096


def clear_hash_cache() -> None:
    """Drop all memoised ``hash_to_point`` results (mainly for tests)."""
    _HASH_CACHE.clear()


def hash_to_point(message: bytes, params: CurveParams, domain: bytes = b"iniva-bls") -> Point:
    """Hash a message onto the prime-order subgroup.

    Uses hash-and-check on x-coordinates followed by cofactor clearing.
    This is deterministic and, modelling SHA-256 as a random oracle, lands
    uniformly in the curve group before the cofactor multiplication.
    Results are memoised module-wide keyed on ``(params, domain, message)``.
    """
    cache_key = (params.p, domain, message)
    cached = _HASH_CACHE.get(cache_key)
    if cached is not None:
        return cached
    p = params.p
    byte_len = (p.bit_length() + 7) // 8 + 16
    counter = 0
    while True:
        digest = b""
        block = 0
        while len(digest) < byte_len:
            digest += hashlib.sha256(
                domain + counter.to_bytes(4, "big") + block.to_bytes(4, "big") + message
            ).digest()
            block += 1
        x = Fp(int.from_bytes(digest[:byte_len], "big"), p)
        rhs = x * x * x + 1
        y = rhs.sqrt()
        if y is not None:
            candidate = Point(x, y, params) * params.cofactor
            if not candidate.is_infinity:
                if len(_HASH_CACHE) >= _HASH_CACHE_MAX:
                    _HASH_CACHE.clear()
                _HASH_CACHE[cache_key] = candidate
                return candidate
        counter += 1


def distortion_map(point: Point) -> Point:
    """The distortion map ``phi(x, y) = (zeta * x, y)`` into ``E(F_{p^2})``.

    ``zeta`` is a primitive cube root of unity in ``F_{p^2}``; the image of
    a subgroup point is linearly independent from the original subgroup,
    which makes the modified Tate pairing non-degenerate.
    """
    if point.is_infinity:
        return point
    p = point.params.p
    zeta = cube_root_of_unity(p)
    x = point.x if isinstance(point.x, Fp2) else Fp2.from_fp(point.x)
    y = point.y if isinstance(point.y, Fp2) else Fp2.from_fp(point.y)
    return Point(zeta * x, y, point.params)
