"""Versioned binary wire codec for the live runtime (msgpack-free).

Frames every message type the protocol core puts on the wire — the six
aggregation/consensus messages of :mod:`repro.aggregation.messages` plus
their nested :class:`~repro.consensus.block.Block`,
:class:`~repro.consensus.block.QuorumCertificate`,
:class:`~repro.crypto.multisig.SignatureShare` and
:class:`~repro.crypto.multisig.AggregateSignature` — with no external
dependency: a one-byte type tag per value, big-endian fixed-width lengths
and arbitrary-precision signed integers (BLS coordinates are 512-bit).

Signature *values* are backend-specific opaque objects; the codec covers
all three registered backends:

* ``hashsig`` — plain ints and :class:`_HashSigAggregateValue` wrappers;
* ``hash`` — bytes digests and ``{"digest": ..., "shares": {...}}`` dicts;
* ``bls`` — affine curve :class:`~repro.crypto.curve.Point` s.  Curve
  parameters do not travel with every point: both ends derive them from
  the shared :class:`~repro.scenarios.spec.ScenarioSpec`, so the decoder
  is constructed with the matching :class:`CurveParams`.

The first byte of every frame is :data:`WIRE_VERSION`; decoding a frame
with an unknown version raises :class:`CodecError` so incompatible nodes
fail loudly instead of mis-parsing.  The length prefix itself (4 bytes,
big-endian) is applied by :func:`frame` / consumed by the stream reader.

Wire version 2 adds the **batch frame**: a :class:`FrameBatch` carries
several protocol messages in one length-prefixed frame, so a shaped or
congested link pays the framing and syscall cost once per flush instead
of once per message.  Batches are flat — a batch inside a batch is a
codec error — and each contained message is any of the six wire types.

Wire version 3 adds the **resilience layer**
(:mod:`repro.resilience.messages`): sequence-numbered session frames
(hello / envelope / cumulative ack / heartbeat) spoken by the live
runtime's connection supervisor, and the ``SyncRequest`` /
``SyncResponse`` state-transfer pair a recovering replica uses to fetch
the committed-block suffix it missed.  Envelopes are flat like batches:
an envelope may not contain another envelope or a batch.

Wire version 4 adds **packed int sequences**: a sequence whose elements
are all plain ints is encoded as one fixed-width array (4- or 8-byte
big-endian, whichever fits) instead of per-element tagged values.  Block
payloads are exactly this shape — a tuple of request ids — and the whole
tuple now decodes with a single ``struct`` call instead of one dispatch
per element.  Sequences with huge ints, bools or mixed types keep the
general per-element encoding.

Wire version 5 adds the **client layer** (:mod:`repro.clients.messages`):
the hello / request / reply / reject frames an open-loop client swarm
speaks to a replica.  They share the framing and versioning of the
protocol frames but never reach the protocol core — a replica terminates
them at the mempool admission boundary, and they stay out of the
per-replica transport counters like the session control frames.

Wire version 6 adds the **route header**
(:class:`~repro.resilience.messages.Routed`): a ``(src, dst)`` envelope
around one protocol message, spoken on the scale-out fabric's
worker-pair connections so n replicas' traffic multiplexes over
O(workers²) sessions and the receiving worker can demultiplex to the
hosted replica.  Route headers are flat like batches and envelopes — a
``Routed`` may not contain another ``Routed``.

Implementation notes (hot path)
-------------------------------
The byte format above is stable, but the implementation is built for
throughput — a proposal frame decodes in tens of microseconds, not
hundreds:

* **Tag dispatch**: encode looks up an encoder by exact value type
  (``_ENCODERS``), decode indexes a 256-entry table by tag byte
  (``_DECODERS``) — no linear ``if``/``elif`` walk per value.
* **Zero-copy decode**: :meth:`WireCodec.decode` wraps the payload in a
  :class:`memoryview` once and every decoder slices it without copying;
  only terminal ``bytes`` values materialise a copy.  ``decode`` also
  accepts a ``memoryview`` directly, so a frame can be decoded straight
  out of a larger receive buffer.
* **Preallocated frame buffer**: :meth:`WireCodec.frame` reserves the
  4-byte length prefix and version byte up front and encodes into that
  single buffer, patching the length in place — one allocation per
  frame instead of header+body concatenation.
* **Pre-encoded splicing**: a :class:`PreEncoded` wraps an
  already-encoded value body; writers splice its bytes into envelopes
  and batches without re-encoding, so a multicast encodes its message
  once, not once per peer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.aggregation.messages import (
    AckMessage,
    NewViewMessage,
    ProposalMessage,
    SecondChanceMessage,
    SecondChanceReply,
    SignatureMessage,
)
from repro.consensus.block import Block, QuorumCertificate
from repro.crypto.curve import Point
from repro.crypto.multisig import (
    AggregateSignature,
    SignatureShare,
    _HashSigAggregateValue,
)
from repro.crypto.params import CurveParams
from repro.clients.messages import (
    ClientHello,
    ClientReject,
    ClientReply,
    ClientRequest,
)
from repro.resilience.messages import (
    Heartbeat,
    Routed,
    SessionAck,
    SessionEnvelope,
    SessionHello,
    SyncRequest,
    SyncResponse,
)

__all__ = [
    "CodecError",
    "FrameBatch",
    "PreEncoded",
    "WIRE_MESSAGE_TYPES",
    "WIRE_VERSION",
    "WireCodec",
]

#: Bump on any incompatible change to the encoding below.
#: v2: multi-message batch frames (:class:`FrameBatch`).
#: v3: resilience layer — session control frames and state-transfer sync.
#: v4: packed int sequences — all-int sequences as one fixed-width array.
#: v5: client layer — open-loop hello / request / reply / reject frames.
#: v6: route headers — (src, dst)-addressed messages on worker-pair links.
WIRE_VERSION = 6

#: Every message type the protocol core sends between replicas.
WIRE_MESSAGE_TYPES: Tuple[type, ...] = (
    ProposalMessage,
    SignatureMessage,
    AckMessage,
    SecondChanceMessage,
    SecondChanceReply,
    NewViewMessage,
    SyncRequest,
    SyncResponse,
)


class CodecError(ValueError):
    """Raised for unsupported values, truncated frames or bad versions."""


@dataclass(frozen=True)
class FrameBatch:
    """Several protocol messages travelling in one wire frame.

    The live runtime's per-peer writers opportunistically drain their send
    queue into one of these, so a backlog behind a shaped (slow) link
    flushes in a single frame.  Batches are flat: members must be ordinary
    wire values, never another batch.
    """

    messages: Tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "messages", tuple(self.messages))
        if not self.messages:
            raise ValueError("a frame batch needs at least one message")

    def __len__(self) -> int:
        return len(self.messages)


class PreEncoded:
    """An already-encoded wire value spliced into frames without re-encoding.

    ``raw`` is the value body exactly as :meth:`WireCodec.encode_value`
    produced it (tag byte included, version byte excluded).  The live
    runtime pre-encodes a multicast payload once and hands the same
    ``PreEncoded`` to every peer session; the receiver decodes the
    original message and never sees the wrapper.  ``message`` keeps the
    source object for local bookkeeping (labels, metrics, debugging).
    """

    __slots__ = ("raw", "message")

    def __init__(self, raw: bytes, message: Any = None) -> None:
        self.raw = raw
        self.message = message

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PreEncoded({len(self.raw)} bytes, message={self.message!r})"


# -- value tags ---------------------------------------------------------------
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_SEQ = 0x07
_T_DICT = 0x08
_T_SEQ_I32 = 0x09
_T_SEQ_I64 = 0x0A
_T_SHARE = 0x10
_T_AGGREGATE = 0x11
_T_HASHSIG_ACC = 0x12
_T_POINT = 0x13
_T_POINT_INF = 0x14
_T_QC = 0x15
_T_BLOCK = 0x16
_T_BATCH = 0x1F
_T_PROPOSAL = 0x20
_T_SIGNATURE_MSG = 0x21
_T_ACK = 0x22
_T_SECOND_CHANCE = 0x23
_T_SECOND_CHANCE_REPLY = 0x24
_T_NEW_VIEW = 0x25
_T_SYNC_REQ = 0x26
_T_SYNC_RESP = 0x27
_T_SESSION_HELLO = 0x30
_T_SESSION_ENVELOPE = 0x31
_T_SESSION_ACK = 0x32
_T_HEARTBEAT = 0x33
_T_ROUTED = 0x34
_T_CLIENT_HELLO = 0x40
_T_CLIENT_REQUEST = 0x41
_T_CLIENT_REPLY = 0x42
_T_CLIENT_REJECT = 0x43

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")
_pack_u32 = _U32.pack
_unpack_u32 = _U32.unpack_from
_pack_f64 = _F64.pack
_unpack_f64 = _F64.unpack_from


class WireCodec:
    """Encode/decode protocol messages to self-describing binary frames.

    Args:
        curve_params: Parameters used to reconstruct BLS curve points;
            required only when decoding frames produced by the ``bls``
            signature backend.
    """

    def __init__(self, curve_params: Optional[CurveParams] = None) -> None:
        self._params = curve_params

    # -- public API ----------------------------------------------------------
    def encode(self, message: Any) -> bytes:
        """Encode ``message`` into a version-tagged frame body."""
        out = bytearray((WIRE_VERSION,))
        self._write(out, message)
        return bytes(out)

    def encode_value(self, message: Any) -> bytes:
        """Encode one value body (no version byte), for :class:`PreEncoded`.

        ``PreEncoded(codec.encode_value(m), m)`` can then be spliced into
        any frame, envelope or batch this codec writes, encoding ``m``
        exactly once however many peers it fans out to.
        """
        out = bytearray()
        self._write(out, message)
        return bytes(out)

    def decode(self, payload) -> Any:
        """Decode one frame body produced by :meth:`encode`.

        Accepts ``bytes``, ``bytearray`` or a ``memoryview`` (a slice of
        a larger receive buffer decodes without copying it out first).
        """
        if not payload:
            raise CodecError("empty frame")
        buf = payload if type(payload) is memoryview else memoryview(payload)
        if buf[0] != WIRE_VERSION:
            raise CodecError(
                f"unsupported wire version {buf[0]} (this node speaks {WIRE_VERSION})"
            )
        try:
            value, offset = self._read(buf, 1)
        except (IndexError, struct.error):
            raise CodecError("truncated frame") from None
        if offset != len(buf):
            raise CodecError(f"{len(buf) - offset} trailing bytes after message")
        return value

    def frame(self, message: Any) -> bytes:
        """Length-prefixed frame, ready to write to a TCP stream.

        Encodes into one preallocated buffer: the 4-byte length prefix
        and version byte are reserved up front and the length patched in
        place once the body is written.
        """
        out = bytearray(5)
        out[4] = WIRE_VERSION
        self._write(out, message)
        _U32.pack_into(out, 0, len(out) - 4)
        return bytes(out)

    def frame_batch(self, messages: Iterable[Any]) -> bytes:
        """One length-prefixed frame carrying every message in ``messages``.

        Equivalent to ``frame(FrameBatch(tuple(messages)))``; a single
        message still pays only one frame, so callers can batch
        opportunistically without special-casing size one.
        """
        return self.frame(FrameBatch(tuple(messages)))

    # -- encoding ------------------------------------------------------------
    def _write(self, out: bytearray, value: Any) -> None:
        enc = _ENCODERS.get(value.__class__)
        if enc is None:
            enc = _resolve_encoder(value)
        enc(self, out, value)

    # -- decoding ------------------------------------------------------------
    def _read(self, buf, offset: int) -> Tuple[Any, int]:
        try:
            fn = _DECODERS[buf[offset]]
        except IndexError:
            raise CodecError("truncated frame") from None
        if fn is None:
            raise CodecError(f"unknown wire tag 0x{buf[offset]:02x}")
        return fn(self, buf, offset + 1)

    # -- helpers -------------------------------------------------------------
    def _require_params(self) -> CurveParams:
        if self._params is None:
            raise CodecError(
                "decoding a BLS curve point requires the codec's curve_params"
            )
        return self._params

    @staticmethod
    def _need(buf, offset: int, count: int) -> None:
        if offset + count > len(buf):
            raise CodecError("truncated frame")

    @classmethod
    def _read_count(cls, buf, offset: int) -> Tuple[int, int]:
        cls._need(buf, offset, 4)
        return _unpack_u32(buf, offset)[0], offset + 4

    @classmethod
    def _read_sized(cls, buf, offset: int) -> Tuple[bytes, int]:
        size, offset = cls._read_count(buf, offset)
        cls._need(buf, offset, size)
        return buf[offset : offset + size], offset + size


# -- encoder table ------------------------------------------------------------
# One function per concrete value type, dispatched by ``value.__class__``;
# subclasses fall back to an isinstance walk whose result is memoised.

def _e_none(codec, out, value):
    out.append(_T_NONE)


def _e_bool(codec, out, value):
    out.append(_T_TRUE if value else _T_FALSE)


# Ints 0..127 encode to the same 6 bytes every time (tag + u32 size=1 +
# value byte); precomputing them removes to_bytes/pack from the hot loop.
_SMALL_INTS: Tuple[bytes, ...] = tuple(
    bytes((_T_INT, 0, 0, 0, 1, value)) for value in range(128)
)


def _e_int(codec, out, value):
    if 0 <= value < 128:
        out += _SMALL_INTS[value]
        return
    out.append(_T_INT)
    raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
    out += _pack_u32(len(raw))
    out += raw


def _e_float(codec, out, value):
    out.append(_T_FLOAT)
    out += _pack_f64(value)


def _e_str(codec, out, value):
    raw = value.encode("utf-8")
    out.append(_T_STR)
    out += _pack_u32(len(raw))
    out += raw


def _e_bytes(codec, out, value):
    out.append(_T_BYTES)
    out += _pack_u32(len(value))
    out += value


# Packed int sequences: block payloads are tuples of request ids, so the
# all-int case gets a fixed-width array encoding — one struct call for the
# whole sequence on both ends instead of per-element tag dispatch.  Struct
# objects are cached per element count (bounded: counts follow batch sizes).
_INT_SEQ_STRUCTS: Dict[Tuple[str, int], struct.Struct] = {}
_INT_SEQ_STRUCTS_MAX = 1024
_I32_MIN, _I32_MAX = -(2**31), 2**31 - 1
_I64_MIN, _I64_MAX = -(2**63), 2**63 - 1


def _int_seq_struct(kind: str, count: int) -> struct.Struct:
    key = (kind, count)
    cached = _INT_SEQ_STRUCTS.get(key)
    if cached is None:
        if len(_INT_SEQ_STRUCTS) >= _INT_SEQ_STRUCTS_MAX:
            _INT_SEQ_STRUCTS.clear()
        cached = struct.Struct(f">{count}{kind}")
        _INT_SEQ_STRUCTS[key] = cached
    return cached


def _e_seq(codec, out, value):
    count = len(value)
    if count and all(item.__class__ is int for item in value):
        low, high = min(value), max(value)
        if _I32_MIN <= low and high <= _I32_MAX:
            out.append(_T_SEQ_I32)
            out += _pack_u32(count)
            out += _int_seq_struct("i", count).pack(*value)
            return
        if _I64_MIN <= low and high <= _I64_MAX:
            out.append(_T_SEQ_I64)
            out += _pack_u32(count)
            out += _int_seq_struct("q", count).pack(*value)
            return
    out.append(_T_SEQ)
    out += _pack_u32(count)
    write = codec._write
    small = _SMALL_INTS
    # Inline the dominant remaining case (small ints mixed with other types).
    for item in value:
        if item.__class__ is int:
            if 0 <= item < 128:
                out += small[item]
                continue
            out.append(_T_INT)
            raw = item.to_bytes((item.bit_length() + 8) // 8 or 1, "big", signed=True)
            out += _pack_u32(len(raw))
            out += raw
        else:
            write(out, item)


def _e_dict(codec, out, value):
    out.append(_T_DICT)
    out += _pack_u32(len(value))
    write = codec._write
    for key, item in value.items():
        write(out, key)
        write(out, item)


def _e_share(codec, out, value):
    out.append(_T_SHARE)
    codec._write(out, value.signer)
    codec._write(out, value.value)


def _e_aggregate(codec, out, value):
    out.append(_T_AGGREGATE)
    codec._write(out, value.value)
    codec._write(out, dict(value.multiplicities))


def _e_hashsig_acc(codec, out, value):
    out.append(_T_HASHSIG_ACC)
    codec._write(out, value.accumulator)


def _e_point(codec, out, value):
    if value.is_infinity:
        out.append(_T_POINT_INF)
    else:
        out.append(_T_POINT)
        codec._write(out, value.x.value)
        codec._write(out, value.y.value)


def _e_qc(codec, out, value):
    out.append(_T_QC)
    write = codec._write
    write(out, value.block_id)
    write(out, value.view)
    write(out, value.height)
    write(out, value.aggregate)
    write(out, value.collector)


def _e_block(codec, out, value):
    out.append(_T_BLOCK)
    write = codec._write
    write(out, value.height)
    write(out, value.view)
    write(out, value.proposer)
    write(out, value.parent_id)
    write(out, value.qc)
    write(out, tuple(value.payload))
    write(out, value.payload_bytes)
    write(out, value.timestamp)


def _e_proposal(codec, out, value):
    out.append(_T_PROPOSAL)
    codec._write(out, value.block)


def _e_signature_msg(codec, out, value):
    out.append(_T_SIGNATURE_MSG)
    codec._write(out, value.block_id)
    codec._write(out, value.view)
    codec._write(out, value.signature)


def _e_ack(codec, out, value):
    out.append(_T_ACK)
    codec._write(out, value.block_id)
    codec._write(out, value.view)
    codec._write(out, value.aggregate)


def _e_second_chance(codec, out, value):
    out.append(_T_SECOND_CHANCE)
    codec._write(out, value.block)
    codec._write(out, value.proof)


def _e_second_chance_reply(codec, out, value):
    out.append(_T_SECOND_CHANCE_REPLY)
    codec._write(out, value.block_id)
    codec._write(out, value.view)
    codec._write(out, value.signature)


def _e_new_view(codec, out, value):
    out.append(_T_NEW_VIEW)
    codec._write(out, value.view)
    codec._write(out, value.highest_qc)


def _e_sync_req(codec, out, value):
    out.append(_T_SYNC_REQ)
    codec._write(out, value.sender)
    codec._write(out, value.from_height)


def _e_sync_resp(codec, out, value):
    out.append(_T_SYNC_RESP)
    codec._write(out, value.sender)
    codec._write(out, value.view)
    codec._write(out, value.highest_qc)
    codec._write(out, tuple(value.blocks))


def _e_session_hello(codec, out, value):
    out.append(_T_SESSION_HELLO)
    codec._write(out, value.pid)
    codec._write(out, value.incarnation)


def _e_session_ack(codec, out, value):
    out.append(_T_SESSION_ACK)
    codec._write(out, value.acked)


def _e_heartbeat(codec, out, value):
    out.append(_T_HEARTBEAT)
    codec._write(out, value.pid)
    codec._write(out, value.seq)


def _e_client_hello(codec, out, value):
    out.append(_T_CLIENT_HELLO)
    codec._write(out, value.client_id)
    codec._write(out, value.incarnation)


def _e_client_request(codec, out, value):
    out.append(_T_CLIENT_REQUEST)
    codec._write(out, value.request_id)
    codec._write(out, value.client_id)
    codec._write(out, value.payload_size)


def _e_client_reply(codec, out, value):
    out.append(_T_CLIENT_REPLY)
    codec._write(out, value.request_id)
    codec._write(out, value.replica)


def _e_client_reject(codec, out, value):
    out.append(_T_CLIENT_REJECT)
    codec._write(out, value.request_id)
    codec._write(out, value.reason)


def _e_routed(codec, out, value):
    if isinstance(value.message, Routed):
        raise CodecError("route headers are flat wire containers")
    out.append(_T_ROUTED)
    codec._write(out, value.src)
    codec._write(out, value.dst)
    # The message goes through the ordinary dispatch, so a PreEncoded
    # multicast body splices its bytes here without re-encoding.
    codec._write(out, value.message)


def _e_session_envelope(codec, out, value):
    out.append(_T_SESSION_ENVELOPE)
    codec._write(out, value.seq)
    out += _pack_u32(len(value.messages))
    write = codec._write
    for member in value.messages:
        if isinstance(member, (SessionEnvelope, FrameBatch)):
            raise CodecError("session envelopes are flat wire containers")
        write(out, member)


def _e_batch(codec, out, value):
    out.append(_T_BATCH)
    out += _pack_u32(len(value.messages))
    write = codec._write
    for member in value.messages:
        if isinstance(member, FrameBatch):
            raise CodecError("batch frames cannot nest")
        write(out, member)


def _e_pre_encoded(codec, out, value):
    out += value.raw


_ENCODERS: Dict[type, Callable[[WireCodec, bytearray, Any], None]] = {
    type(None): _e_none,
    bool: _e_bool,
    int: _e_int,
    float: _e_float,
    str: _e_str,
    bytes: _e_bytes,
    bytearray: _e_bytes,
    memoryview: _e_bytes,
    list: _e_seq,
    tuple: _e_seq,
    dict: _e_dict,
    SignatureShare: _e_share,
    AggregateSignature: _e_aggregate,
    _HashSigAggregateValue: _e_hashsig_acc,
    Point: _e_point,
    QuorumCertificate: _e_qc,
    Block: _e_block,
    ProposalMessage: _e_proposal,
    SignatureMessage: _e_signature_msg,
    AckMessage: _e_ack,
    SecondChanceMessage: _e_second_chance,
    SecondChanceReply: _e_second_chance_reply,
    NewViewMessage: _e_new_view,
    SyncRequest: _e_sync_req,
    SyncResponse: _e_sync_resp,
    SessionHello: _e_session_hello,
    SessionAck: _e_session_ack,
    Heartbeat: _e_heartbeat,
    ClientHello: _e_client_hello,
    ClientRequest: _e_client_request,
    ClientReply: _e_client_reply,
    ClientReject: _e_client_reject,
    Routed: _e_routed,
    SessionEnvelope: _e_session_envelope,
    FrameBatch: _e_batch,
    PreEncoded: _e_pre_encoded,
}

#: isinstance fallbacks for subclasses, in original if/elif precedence order.
_ENCODER_BASES: Tuple[Tuple[type, Callable], ...] = (
    (bool, _e_bool),
    (int, _e_int),
    (float, _e_float),
    (str, _e_str),
    ((bytes, bytearray, memoryview), _e_bytes),
    ((list, tuple), _e_seq),
    (dict, _e_dict),
    (SignatureShare, _e_share),
    (AggregateSignature, _e_aggregate),
    (_HashSigAggregateValue, _e_hashsig_acc),
    (Point, _e_point),
    (QuorumCertificate, _e_qc),
    (Block, _e_block),
    (ProposalMessage, _e_proposal),
    (SignatureMessage, _e_signature_msg),
    (AckMessage, _e_ack),
    (SecondChanceMessage, _e_second_chance),
    (SecondChanceReply, _e_second_chance_reply),
    (NewViewMessage, _e_new_view),
    (SyncRequest, _e_sync_req),
    (SyncResponse, _e_sync_resp),
    (SessionHello, _e_session_hello),
    (SessionAck, _e_session_ack),
    (Heartbeat, _e_heartbeat),
    (ClientHello, _e_client_hello),
    (ClientRequest, _e_client_request),
    (ClientReply, _e_client_reply),
    (ClientReject, _e_client_reject),
    (Routed, _e_routed),
    (SessionEnvelope, _e_session_envelope),
    (FrameBatch, _e_batch),
    (PreEncoded, _e_pre_encoded),
)


def _resolve_encoder(value: Any) -> Callable[[WireCodec, bytearray, Any], None]:
    for base, enc in _ENCODER_BASES:
        if isinstance(value, base):
            _ENCODERS[value.__class__] = enc  # memoise the subclass
            return enc
    raise CodecError(f"cannot encode value of type {type(value).__name__}")


# -- decoder table ------------------------------------------------------------
# Indexed by tag byte; each decoder takes (codec, buf, offset-past-tag) and
# returns (value, new offset).  ``buf`` is a memoryview: slices are views,
# not copies, so only terminal ``bytes`` values allocate.

def _d_none(codec, buf, offset):
    return None, offset


def _d_true(codec, buf, offset):
    return True, offset


def _d_false(codec, buf, offset):
    return False, offset


def _d_int(codec, buf, offset):
    size = _unpack_u32(buf, offset)[0]
    offset += 4
    end = offset + size
    if end > len(buf):
        raise CodecError("truncated frame")
    if size == 1:
        value = buf[offset]
        return (value - 256 if value >= 128 else value), end
    return int.from_bytes(buf[offset:end], "big", signed=True), end


def _d_float(codec, buf, offset):
    if offset + 8 > len(buf):
        raise CodecError("truncated frame")
    return _unpack_f64(buf, offset)[0], offset + 8


def _d_str(codec, buf, offset):
    size = _unpack_u32(buf, offset)[0]
    offset += 4
    end = offset + size
    if end > len(buf):
        raise CodecError("truncated frame")
    return str(buf[offset:end], "utf-8"), end


def _d_bytes(codec, buf, offset):
    size = _unpack_u32(buf, offset)[0]
    offset += 4
    end = offset + size
    if end > len(buf):
        raise CodecError("truncated frame")
    return bytes(buf[offset:end]), end


def _d_seq(codec, buf, offset):
    count = _unpack_u32(buf, offset)[0]
    offset += 4
    decoders = _DECODERS
    items: List[Any] = []
    append = items.append
    # Small ints dominate real payloads (request ids in block batches), so
    # the int case is inlined here: no dispatch call, no slice object for
    # the 1..2-byte encodings.
    from_bytes = int.from_bytes
    u32 = _unpack_u32
    buflen = len(buf)
    for _ in range(count):
        if buf[offset] == _T_INT:
            size = u32(buf, offset + 1)[0]
            offset += 5
            end = offset + size
            if end > buflen:
                raise CodecError("truncated frame")
            if size == 1:
                value = buf[offset]
                append(value - 256 if value >= 128 else value)
            elif size == 2:
                value = (buf[offset] << 8) | buf[offset + 1]
                append(value - 65536 if value >= 32768 else value)
            else:
                append(from_bytes(buf[offset:end], "big", signed=True))
            offset = end
        else:
            fn = decoders[buf[offset]]
            if fn is None:
                raise CodecError(f"unknown wire tag 0x{buf[offset]:02x}")
            item, offset = fn(codec, buf, offset + 1)
            append(item)
    return tuple(items), offset


def _d_seq_i32(codec, buf, offset):
    count = _unpack_u32(buf, offset)[0]
    offset += 4
    end = offset + 4 * count
    if end > len(buf):
        raise CodecError("truncated frame")
    return _int_seq_struct("i", count).unpack_from(buf, offset), end


def _d_seq_i64(codec, buf, offset):
    count = _unpack_u32(buf, offset)[0]
    offset += 4
    end = offset + 8 * count
    if end > len(buf):
        raise CodecError("truncated frame")
    return _int_seq_struct("q", count).unpack_from(buf, offset), end


def _d_dict(codec, buf, offset):
    count = _unpack_u32(buf, offset)[0]
    offset += 4
    read = codec._read
    mapping: Dict[Any, Any] = {}
    for _ in range(count):
        key, offset = read(buf, offset)
        item, offset = read(buf, offset)
        mapping[key] = item
    return mapping, offset


def _d_share(codec, buf, offset):
    signer, offset = codec._read(buf, offset)
    value, offset = codec._read(buf, offset)
    return SignatureShare(signer=signer, value=value), offset


def _d_aggregate(codec, buf, offset):
    value, offset = codec._read(buf, offset)
    multiplicities, offset = codec._read(buf, offset)
    return AggregateSignature(value=value, multiplicities=multiplicities), offset


def _d_hashsig_acc(codec, buf, offset):
    accumulator, offset = codec._read(buf, offset)
    return _HashSigAggregateValue(accumulator), offset


def _d_point_inf(codec, buf, offset):
    return Point.infinity(codec._require_params()), offset


def _d_point(codec, buf, offset):
    x, offset = codec._read(buf, offset)
    y, offset = codec._read(buf, offset)
    return Point.from_ints(x, y, codec._require_params()), offset


def _d_qc(codec, buf, offset):
    read = codec._read
    block_id, offset = read(buf, offset)
    view, offset = read(buf, offset)
    height, offset = read(buf, offset)
    aggregate, offset = read(buf, offset)
    collector, offset = read(buf, offset)
    qc = QuorumCertificate(
        block_id=block_id, view=view, height=height,
        aggregate=aggregate, collector=collector,
    )
    return qc, offset


def _d_block(codec, buf, offset):
    read = codec._read
    height, offset = read(buf, offset)
    view, offset = read(buf, offset)
    proposer, offset = read(buf, offset)
    parent_id, offset = read(buf, offset)
    qc, offset = read(buf, offset)
    payload, offset = read(buf, offset)
    payload_bytes, offset = read(buf, offset)
    timestamp, offset = read(buf, offset)
    block = Block(
        height=height, view=view, proposer=proposer, parent_id=parent_id,
        qc=qc, payload=payload, payload_bytes=payload_bytes, timestamp=timestamp,
    )
    return block, offset


def _d_proposal(codec, buf, offset):
    block, offset = codec._read(buf, offset)
    return ProposalMessage(block), offset


def _d_signature_msg(codec, buf, offset):
    block_id, offset = codec._read(buf, offset)
    view, offset = codec._read(buf, offset)
    signature, offset = codec._read(buf, offset)
    return SignatureMessage(block_id=block_id, view=view, signature=signature), offset


def _d_ack(codec, buf, offset):
    block_id, offset = codec._read(buf, offset)
    view, offset = codec._read(buf, offset)
    aggregate, offset = codec._read(buf, offset)
    return AckMessage(block_id=block_id, view=view, aggregate=aggregate), offset


def _d_second_chance(codec, buf, offset):
    block, offset = codec._read(buf, offset)
    proof, offset = codec._read(buf, offset)
    return SecondChanceMessage(block=block, proof=proof), offset


def _d_second_chance_reply(codec, buf, offset):
    block_id, offset = codec._read(buf, offset)
    view, offset = codec._read(buf, offset)
    signature, offset = codec._read(buf, offset)
    return SecondChanceReply(block_id=block_id, view=view, signature=signature), offset


def _d_new_view(codec, buf, offset):
    view, offset = codec._read(buf, offset)
    highest_qc, offset = codec._read(buf, offset)
    return NewViewMessage(view=view, highest_qc=highest_qc), offset


def _d_sync_req(codec, buf, offset):
    sender, offset = codec._read(buf, offset)
    from_height, offset = codec._read(buf, offset)
    return SyncRequest(sender=sender, from_height=from_height), offset


def _d_sync_resp(codec, buf, offset):
    sender, offset = codec._read(buf, offset)
    view, offset = codec._read(buf, offset)
    highest_qc, offset = codec._read(buf, offset)
    blocks, offset = codec._read(buf, offset)
    return (
        SyncResponse(sender=sender, view=view, highest_qc=highest_qc, blocks=blocks),
        offset,
    )


def _d_session_hello(codec, buf, offset):
    pid, offset = codec._read(buf, offset)
    incarnation, offset = codec._read(buf, offset)
    return SessionHello(pid=pid, incarnation=incarnation), offset


def _d_session_ack(codec, buf, offset):
    acked, offset = codec._read(buf, offset)
    return SessionAck(acked=acked), offset


def _d_heartbeat(codec, buf, offset):
    pid, offset = codec._read(buf, offset)
    seq, offset = codec._read(buf, offset)
    return Heartbeat(pid=pid, seq=seq), offset


def _d_client_hello(codec, buf, offset):
    client_id, offset = codec._read(buf, offset)
    incarnation, offset = codec._read(buf, offset)
    return ClientHello(client_id=client_id, incarnation=incarnation), offset


def _d_client_request(codec, buf, offset):
    request_id, offset = codec._read(buf, offset)
    client_id, offset = codec._read(buf, offset)
    payload_size, offset = codec._read(buf, offset)
    return (
        ClientRequest(
            request_id=request_id, client_id=client_id, payload_size=payload_size
        ),
        offset,
    )


def _d_client_reply(codec, buf, offset):
    request_id, offset = codec._read(buf, offset)
    replica, offset = codec._read(buf, offset)
    return ClientReply(request_id=request_id, replica=replica), offset


def _d_client_reject(codec, buf, offset):
    request_id, offset = codec._read(buf, offset)
    reason, offset = codec._read(buf, offset)
    return ClientReject(request_id=request_id, reason=reason), offset


def _d_routed(codec, buf, offset):
    src, offset = codec._read(buf, offset)
    dst, offset = codec._read(buf, offset)
    message, offset = codec._read(buf, offset)
    if isinstance(message, Routed):
        raise CodecError("route headers are flat wire containers")
    return Routed(src=src, dst=dst, message=message), offset


def _d_session_envelope(codec, buf, offset):
    seq, offset = codec._read(buf, offset)
    count, offset = codec._read_count(buf, offset)
    if count == 0:
        raise CodecError("empty session envelope")
    read = codec._read
    members: List[Any] = []
    append = members.append
    for _ in range(count):
        member, offset = read(buf, offset)
        if isinstance(member, (SessionEnvelope, FrameBatch)):
            raise CodecError("session envelopes are flat wire containers")
        append(member)
    return SessionEnvelope(seq=seq, messages=tuple(members)), offset


def _d_batch(codec, buf, offset):
    count, offset = codec._read_count(buf, offset)
    if count == 0:
        raise CodecError("empty batch frame")
    read = codec._read
    members: List[Any] = []
    append = members.append
    for _ in range(count):
        member, offset = read(buf, offset)
        if isinstance(member, FrameBatch):
            raise CodecError("batch frames cannot nest")
        append(member)
    return FrameBatch(tuple(members)), offset


_DECODERS: List[Optional[Callable]] = [None] * 256
for _tag, _fn in {
    _T_NONE: _d_none,
    _T_TRUE: _d_true,
    _T_FALSE: _d_false,
    _T_INT: _d_int,
    _T_FLOAT: _d_float,
    _T_STR: _d_str,
    _T_BYTES: _d_bytes,
    _T_SEQ: _d_seq,
    _T_SEQ_I32: _d_seq_i32,
    _T_SEQ_I64: _d_seq_i64,
    _T_DICT: _d_dict,
    _T_SHARE: _d_share,
    _T_AGGREGATE: _d_aggregate,
    _T_HASHSIG_ACC: _d_hashsig_acc,
    _T_POINT: _d_point,
    _T_POINT_INF: _d_point_inf,
    _T_QC: _d_qc,
    _T_BLOCK: _d_block,
    _T_BATCH: _d_batch,
    _T_PROPOSAL: _d_proposal,
    _T_SIGNATURE_MSG: _d_signature_msg,
    _T_ACK: _d_ack,
    _T_SECOND_CHANCE: _d_second_chance,
    _T_SECOND_CHANCE_REPLY: _d_second_chance_reply,
    _T_NEW_VIEW: _d_new_view,
    _T_SYNC_REQ: _d_sync_req,
    _T_SYNC_RESP: _d_sync_resp,
    _T_SESSION_HELLO: _d_session_hello,
    _T_SESSION_ENVELOPE: _d_session_envelope,
    _T_SESSION_ACK: _d_session_ack,
    _T_HEARTBEAT: _d_heartbeat,
    _T_ROUTED: _d_routed,
    _T_CLIENT_HELLO: _d_client_hello,
    _T_CLIENT_REQUEST: _d_client_request,
    _T_CLIENT_REPLY: _d_client_reply,
    _T_CLIENT_REJECT: _d_client_reject,
}.items():
    _DECODERS[_tag] = _fn
del _tag, _fn
