"""Versioned binary wire codec for the live runtime (msgpack-free).

Frames every message type the protocol core puts on the wire — the six
aggregation/consensus messages of :mod:`repro.aggregation.messages` plus
their nested :class:`~repro.consensus.block.Block`,
:class:`~repro.consensus.block.QuorumCertificate`,
:class:`~repro.crypto.multisig.SignatureShare` and
:class:`~repro.crypto.multisig.AggregateSignature` — with no external
dependency: a one-byte type tag per value, big-endian fixed-width lengths
and arbitrary-precision signed integers (BLS coordinates are 512-bit).

Signature *values* are backend-specific opaque objects; the codec covers
all three registered backends:

* ``hashsig`` — plain ints and :class:`_HashSigAggregateValue` wrappers;
* ``hash`` — bytes digests and ``{"digest": ..., "shares": {...}}`` dicts;
* ``bls`` — affine curve :class:`~repro.crypto.curve.Point` s.  Curve
  parameters do not travel with every point: both ends derive them from
  the shared :class:`~repro.scenarios.spec.ScenarioSpec`, so the decoder
  is constructed with the matching :class:`CurveParams`.

The first byte of every frame is :data:`WIRE_VERSION`; decoding a frame
with an unknown version raises :class:`CodecError` so incompatible nodes
fail loudly instead of mis-parsing.  The length prefix itself (4 bytes,
big-endian) is applied by :func:`frame` / consumed by the stream reader.

Wire version 2 adds the **batch frame**: a :class:`FrameBatch` carries
several protocol messages in one length-prefixed frame, so a shaped or
congested link pays the framing and syscall cost once per flush instead
of once per message.  Batches are flat — a batch inside a batch is a
codec error — and each contained message is any of the six wire types.

Wire version 3 adds the **resilience layer**
(:mod:`repro.resilience.messages`): sequence-numbered session frames
(hello / envelope / cumulative ack / heartbeat) spoken by the live
runtime's connection supervisor, and the ``SyncRequest`` /
``SyncResponse`` state-transfer pair a recovering replica uses to fetch
the committed-block suffix it missed.  Envelopes are flat like batches:
an envelope may not contain another envelope or a batch.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.aggregation.messages import (
    AckMessage,
    NewViewMessage,
    ProposalMessage,
    SecondChanceMessage,
    SecondChanceReply,
    SignatureMessage,
)
from repro.consensus.block import Block, QuorumCertificate
from repro.crypto.curve import Point
from repro.crypto.multisig import (
    AggregateSignature,
    SignatureShare,
    _HashSigAggregateValue,
)
from repro.crypto.params import CurveParams
from repro.resilience.messages import (
    Heartbeat,
    SessionAck,
    SessionEnvelope,
    SessionHello,
    SyncRequest,
    SyncResponse,
)

__all__ = [
    "CodecError",
    "FrameBatch",
    "WIRE_MESSAGE_TYPES",
    "WIRE_VERSION",
    "WireCodec",
]

#: Bump on any incompatible change to the encoding below.
#: v2: multi-message batch frames (:class:`FrameBatch`).
#: v3: resilience layer — session control frames and state-transfer sync.
WIRE_VERSION = 3

#: Every message type the protocol core sends between replicas.
WIRE_MESSAGE_TYPES: Tuple[type, ...] = (
    ProposalMessage,
    SignatureMessage,
    AckMessage,
    SecondChanceMessage,
    SecondChanceReply,
    NewViewMessage,
    SyncRequest,
    SyncResponse,
)


class CodecError(ValueError):
    """Raised for unsupported values, truncated frames or bad versions."""


@dataclass(frozen=True)
class FrameBatch:
    """Several protocol messages travelling in one wire frame.

    The live runtime's per-peer writers opportunistically drain their send
    queue into one of these, so a backlog behind a shaped (slow) link
    flushes in a single frame.  Batches are flat: members must be ordinary
    wire values, never another batch.
    """

    messages: Tuple[Any, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "messages", tuple(self.messages))
        if not self.messages:
            raise ValueError("a frame batch needs at least one message")

    def __len__(self) -> int:
        return len(self.messages)


# -- value tags ---------------------------------------------------------------
_T_NONE = 0x00
_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_SEQ = 0x07
_T_DICT = 0x08
_T_SHARE = 0x10
_T_AGGREGATE = 0x11
_T_HASHSIG_ACC = 0x12
_T_POINT = 0x13
_T_POINT_INF = 0x14
_T_QC = 0x15
_T_BLOCK = 0x16
_T_BATCH = 0x1F
_T_PROPOSAL = 0x20
_T_SIGNATURE_MSG = 0x21
_T_ACK = 0x22
_T_SECOND_CHANCE = 0x23
_T_SECOND_CHANCE_REPLY = 0x24
_T_NEW_VIEW = 0x25
_T_SYNC_REQ = 0x26
_T_SYNC_RESP = 0x27
_T_SESSION_HELLO = 0x30
_T_SESSION_ENVELOPE = 0x31
_T_SESSION_ACK = 0x32
_T_HEARTBEAT = 0x33

_U32 = struct.Struct(">I")
_F64 = struct.Struct(">d")


class WireCodec:
    """Encode/decode protocol messages to self-describing binary frames.

    Args:
        curve_params: Parameters used to reconstruct BLS curve points;
            required only when decoding frames produced by the ``bls``
            signature backend.
    """

    def __init__(self, curve_params: Optional[CurveParams] = None) -> None:
        self._params = curve_params

    # -- public API ----------------------------------------------------------
    def encode(self, message: Any) -> bytes:
        """Encode ``message`` into a version-tagged frame body."""
        out = bytearray([WIRE_VERSION])
        self._write(out, message)
        return bytes(out)

    def decode(self, payload: bytes) -> Any:
        """Decode one frame body produced by :meth:`encode`."""
        if not payload:
            raise CodecError("empty frame")
        if payload[0] != WIRE_VERSION:
            raise CodecError(
                f"unsupported wire version {payload[0]} (this node speaks {WIRE_VERSION})"
            )
        value, offset = self._read(payload, 1)
        if offset != len(payload):
            raise CodecError(f"{len(payload) - offset} trailing bytes after message")
        return value

    def frame(self, message: Any) -> bytes:
        """Length-prefixed frame, ready to write to a TCP stream."""
        body = self.encode(message)
        return _U32.pack(len(body)) + body

    def frame_batch(self, messages: Iterable[Any]) -> bytes:
        """One length-prefixed frame carrying every message in ``messages``.

        Equivalent to ``frame(FrameBatch(tuple(messages)))``; a single
        message still pays only one frame, so callers can batch
        opportunistically without special-casing size one.
        """
        return self.frame(FrameBatch(tuple(messages)))

    # -- encoding ------------------------------------------------------------
    def _write(self, out: bytearray, value: Any) -> None:
        if value is None:
            out.append(_T_NONE)
        elif value is True:
            out.append(_T_TRUE)
        elif value is False:
            out.append(_T_FALSE)
        elif isinstance(value, int):
            out.append(_T_INT)
            raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, float):
            out.append(_T_FLOAT)
            out += _F64.pack(value)
        elif isinstance(value, str):
            raw = value.encode("utf-8")
            out.append(_T_STR)
            out += _U32.pack(len(raw))
            out += raw
        elif isinstance(value, (bytes, bytearray)):
            out.append(_T_BYTES)
            out += _U32.pack(len(value))
            out += value
        elif isinstance(value, (list, tuple)):
            out.append(_T_SEQ)
            out += _U32.pack(len(value))
            for item in value:
                self._write(out, item)
        elif isinstance(value, dict):
            out.append(_T_DICT)
            out += _U32.pack(len(value))
            for key, item in value.items():
                self._write(out, key)
                self._write(out, item)
        elif isinstance(value, SignatureShare):
            out.append(_T_SHARE)
            self._write(out, value.signer)
            self._write(out, value.value)
        elif isinstance(value, AggregateSignature):
            out.append(_T_AGGREGATE)
            self._write(out, value.value)
            self._write(out, dict(value.multiplicities))
        elif isinstance(value, _HashSigAggregateValue):
            out.append(_T_HASHSIG_ACC)
            self._write(out, value.accumulator)
        elif isinstance(value, Point):
            if value.is_infinity:
                out.append(_T_POINT_INF)
            else:
                out.append(_T_POINT)
                self._write(out, value.x.value)
                self._write(out, value.y.value)
        elif isinstance(value, QuorumCertificate):
            out.append(_T_QC)
            self._write(out, value.block_id)
            self._write(out, value.view)
            self._write(out, value.height)
            self._write(out, value.aggregate)
            self._write(out, value.collector)
        elif isinstance(value, Block):
            out.append(_T_BLOCK)
            self._write(out, value.height)
            self._write(out, value.view)
            self._write(out, value.proposer)
            self._write(out, value.parent_id)
            self._write(out, value.qc)
            self._write(out, tuple(value.payload))
            self._write(out, value.payload_bytes)
            self._write(out, value.timestamp)
        elif isinstance(value, ProposalMessage):
            out.append(_T_PROPOSAL)
            self._write(out, value.block)
        elif isinstance(value, SignatureMessage):
            out.append(_T_SIGNATURE_MSG)
            self._write(out, value.block_id)
            self._write(out, value.view)
            self._write(out, value.signature)
        elif isinstance(value, AckMessage):
            out.append(_T_ACK)
            self._write(out, value.block_id)
            self._write(out, value.view)
            self._write(out, value.aggregate)
        elif isinstance(value, SecondChanceMessage):
            out.append(_T_SECOND_CHANCE)
            self._write(out, value.block)
            self._write(out, value.proof)
        elif isinstance(value, SecondChanceReply):
            out.append(_T_SECOND_CHANCE_REPLY)
            self._write(out, value.block_id)
            self._write(out, value.view)
            self._write(out, value.signature)
        elif isinstance(value, NewViewMessage):
            out.append(_T_NEW_VIEW)
            self._write(out, value.view)
            self._write(out, value.highest_qc)
        elif isinstance(value, SyncRequest):
            out.append(_T_SYNC_REQ)
            self._write(out, value.sender)
            self._write(out, value.from_height)
        elif isinstance(value, SyncResponse):
            out.append(_T_SYNC_RESP)
            self._write(out, value.sender)
            self._write(out, value.view)
            self._write(out, value.highest_qc)
            self._write(out, tuple(value.blocks))
        elif isinstance(value, SessionHello):
            out.append(_T_SESSION_HELLO)
            self._write(out, value.pid)
            self._write(out, value.incarnation)
        elif isinstance(value, SessionAck):
            out.append(_T_SESSION_ACK)
            self._write(out, value.acked)
        elif isinstance(value, Heartbeat):
            out.append(_T_HEARTBEAT)
            self._write(out, value.pid)
            self._write(out, value.seq)
        elif isinstance(value, SessionEnvelope):
            out.append(_T_SESSION_ENVELOPE)
            self._write(out, value.seq)
            out += _U32.pack(len(value.messages))
            for member in value.messages:
                if isinstance(member, (SessionEnvelope, FrameBatch)):
                    raise CodecError("session envelopes are flat wire containers")
                self._write(out, member)
        elif isinstance(value, FrameBatch):
            out.append(_T_BATCH)
            out += _U32.pack(len(value.messages))
            for member in value.messages:
                if isinstance(member, FrameBatch):
                    raise CodecError("batch frames cannot nest")
                self._write(out, member)
        else:
            raise CodecError(f"cannot encode value of type {type(value).__name__}")

    # -- decoding ------------------------------------------------------------
    def _read(self, buf: bytes, offset: int) -> Tuple[Any, int]:
        try:
            tag = buf[offset]
        except IndexError:
            raise CodecError("truncated frame") from None
        offset += 1
        if tag == _T_NONE:
            return None, offset
        if tag == _T_TRUE:
            return True, offset
        if tag == _T_FALSE:
            return False, offset
        if tag == _T_INT:
            raw, offset = self._read_sized(buf, offset)
            return int.from_bytes(raw, "big", signed=True), offset
        if tag == _T_FLOAT:
            self._need(buf, offset, 8)
            return _F64.unpack_from(buf, offset)[0], offset + 8
        if tag == _T_STR:
            raw, offset = self._read_sized(buf, offset)
            return raw.decode("utf-8"), offset
        if tag == _T_BYTES:
            raw, offset = self._read_sized(buf, offset)
            return bytes(raw), offset
        if tag == _T_SEQ:
            count, offset = self._read_count(buf, offset)
            items: List[Any] = []
            for _ in range(count):
                item, offset = self._read(buf, offset)
                items.append(item)
            return tuple(items), offset
        if tag == _T_DICT:
            count, offset = self._read_count(buf, offset)
            mapping: Dict[Any, Any] = {}
            for _ in range(count):
                key, offset = self._read(buf, offset)
                item, offset = self._read(buf, offset)
                mapping[key] = item
            return mapping, offset
        if tag == _T_SHARE:
            signer, offset = self._read(buf, offset)
            value, offset = self._read(buf, offset)
            return SignatureShare(signer=signer, value=value), offset
        if tag == _T_AGGREGATE:
            value, offset = self._read(buf, offset)
            multiplicities, offset = self._read(buf, offset)
            return AggregateSignature(value=value, multiplicities=multiplicities), offset
        if tag == _T_HASHSIG_ACC:
            accumulator, offset = self._read(buf, offset)
            return _HashSigAggregateValue(accumulator), offset
        if tag == _T_POINT_INF:
            return Point.infinity(self._require_params()), offset
        if tag == _T_POINT:
            x, offset = self._read(buf, offset)
            y, offset = self._read(buf, offset)
            return Point.from_ints(x, y, self._require_params()), offset
        if tag == _T_QC:
            block_id, offset = self._read(buf, offset)
            view, offset = self._read(buf, offset)
            height, offset = self._read(buf, offset)
            aggregate, offset = self._read(buf, offset)
            collector, offset = self._read(buf, offset)
            qc = QuorumCertificate(
                block_id=block_id, view=view, height=height,
                aggregate=aggregate, collector=collector,
            )
            return qc, offset
        if tag == _T_BLOCK:
            height, offset = self._read(buf, offset)
            view, offset = self._read(buf, offset)
            proposer, offset = self._read(buf, offset)
            parent_id, offset = self._read(buf, offset)
            qc, offset = self._read(buf, offset)
            payload, offset = self._read(buf, offset)
            payload_bytes, offset = self._read(buf, offset)
            timestamp, offset = self._read(buf, offset)
            block = Block(
                height=height, view=view, proposer=proposer, parent_id=parent_id,
                qc=qc, payload=payload, payload_bytes=payload_bytes, timestamp=timestamp,
            )
            return block, offset
        if tag == _T_PROPOSAL:
            block, offset = self._read(buf, offset)
            return ProposalMessage(block), offset
        if tag == _T_SIGNATURE_MSG:
            block_id, offset = self._read(buf, offset)
            view, offset = self._read(buf, offset)
            signature, offset = self._read(buf, offset)
            return SignatureMessage(block_id=block_id, view=view, signature=signature), offset
        if tag == _T_ACK:
            block_id, offset = self._read(buf, offset)
            view, offset = self._read(buf, offset)
            aggregate, offset = self._read(buf, offset)
            return AckMessage(block_id=block_id, view=view, aggregate=aggregate), offset
        if tag == _T_SECOND_CHANCE:
            block, offset = self._read(buf, offset)
            proof, offset = self._read(buf, offset)
            return SecondChanceMessage(block=block, proof=proof), offset
        if tag == _T_SECOND_CHANCE_REPLY:
            block_id, offset = self._read(buf, offset)
            view, offset = self._read(buf, offset)
            signature, offset = self._read(buf, offset)
            return SecondChanceReply(block_id=block_id, view=view, signature=signature), offset
        if tag == _T_NEW_VIEW:
            view, offset = self._read(buf, offset)
            highest_qc, offset = self._read(buf, offset)
            return NewViewMessage(view=view, highest_qc=highest_qc), offset
        if tag == _T_SYNC_REQ:
            sender, offset = self._read(buf, offset)
            from_height, offset = self._read(buf, offset)
            return SyncRequest(sender=sender, from_height=from_height), offset
        if tag == _T_SYNC_RESP:
            sender, offset = self._read(buf, offset)
            view, offset = self._read(buf, offset)
            highest_qc, offset = self._read(buf, offset)
            blocks, offset = self._read(buf, offset)
            return (
                SyncResponse(sender=sender, view=view, highest_qc=highest_qc, blocks=blocks),
                offset,
            )
        if tag == _T_SESSION_HELLO:
            pid, offset = self._read(buf, offset)
            incarnation, offset = self._read(buf, offset)
            return SessionHello(pid=pid, incarnation=incarnation), offset
        if tag == _T_SESSION_ACK:
            acked, offset = self._read(buf, offset)
            return SessionAck(acked=acked), offset
        if tag == _T_HEARTBEAT:
            pid, offset = self._read(buf, offset)
            seq, offset = self._read(buf, offset)
            return Heartbeat(pid=pid, seq=seq), offset
        if tag == _T_SESSION_ENVELOPE:
            seq, offset = self._read(buf, offset)
            count, offset = self._read_count(buf, offset)
            if count == 0:
                raise CodecError("empty session envelope")
            members: List[Any] = []
            for _ in range(count):
                member, offset = self._read(buf, offset)
                if isinstance(member, (SessionEnvelope, FrameBatch)):
                    raise CodecError("session envelopes are flat wire containers")
                members.append(member)
            return SessionEnvelope(seq=seq, messages=tuple(members)), offset
        if tag == _T_BATCH:
            count, offset = self._read_count(buf, offset)
            if count == 0:
                raise CodecError("empty batch frame")
            members: List[Any] = []
            for _ in range(count):
                member, offset = self._read(buf, offset)
                if isinstance(member, FrameBatch):
                    raise CodecError("batch frames cannot nest")
                members.append(member)
            return FrameBatch(tuple(members)), offset
        raise CodecError(f"unknown wire tag 0x{tag:02x}")

    # -- helpers -------------------------------------------------------------
    def _require_params(self) -> CurveParams:
        if self._params is None:
            raise CodecError(
                "decoding a BLS curve point requires the codec's curve_params"
            )
        return self._params

    @staticmethod
    def _need(buf: bytes, offset: int, count: int) -> None:
        if offset + count > len(buf):
            raise CodecError("truncated frame")

    @classmethod
    def _read_count(cls, buf: bytes, offset: int) -> Tuple[int, int]:
        cls._need(buf, offset, 4)
        return _U32.unpack_from(buf, offset)[0], offset + 4

    @classmethod
    def _read_sized(cls, buf: bytes, offset: int) -> Tuple[bytes, int]:
        size, offset = cls._read_count(buf, offset)
        cls._need(buf, offset, size)
        return buf[offset : offset + size], offset + size
