"""Socket and event-loop tuning for the live runtime's TCP links.

Consensus traffic is many small frames (votes, acks, heartbeats are tens
of bytes) punctuated by proposal bursts, exchanged over long-lived
connections.  Default socket settings fight that profile twice over:
Nagle's algorithm holds small frames back waiting for acks — directly in
the commit critical path — and default send/receive buffers are sized
for generic streams, not for a worker pair multiplexing hundreds of
replicas' traffic through one connection.  Every peer and client socket
the runtime opens (or accepts) goes through :func:`tune_socket`:

* ``TCP_NODELAY`` — small vote/ack frames leave immediately;
* ``SO_SNDBUF`` / ``SO_RCVBUF`` sized to :data:`SOCKET_BUFFER_BYTES`, so
  a proposal burst for a 200-replica committee queues in the kernel
  instead of blocking the event loop on ``drain()``.

All options are best-effort: a platform that rejects one (or a test
double without a real socket) is left at its defaults rather than
failing the connection.

Event loop: setting ``REPRO_UVLOOP=1`` swaps in `uvloop`_'s event-loop
policy when the package is importable.  The dependency is *optional and
never required* — the stock asyncio loop is the tested default, and the
gate silently keeps it when uvloop is absent, so deployments can opt in
without the codebase growing a hard dependency.

.. _uvloop: https://github.com/MagicStack/uvloop
"""

from __future__ import annotations

import asyncio
import logging
import os
import socket
from typing import Any, Optional

__all__ = [
    "SOCKET_BUFFER_BYTES",
    "maybe_install_uvloop",
    "tune_socket",
    "tune_writer",
]

logger = logging.getLogger("repro.runtime.net")

#: Send/receive buffer request for peer and client sockets (the kernel
#: may clamp it).  1 MiB absorbs a full proposal fan-in burst at n=200
#: without backpressuring the writing coroutine.
SOCKET_BUFFER_BYTES = 1 << 20

#: Environment variable opting into the uvloop event-loop policy.
UVLOOP_ENV = "REPRO_UVLOOP"

_uvloop_installed: Optional[bool] = None


def tune_socket(sock: socket.socket) -> None:
    """Apply the live runtime's TCP tuning to one connected socket.

    Best-effort by design: each option is attempted independently and an
    unsupported one is skipped, so the same code path serves Linux CI,
    macOS laptops and test doubles.
    """
    for level, option, value in (
        (socket.IPPROTO_TCP, socket.TCP_NODELAY, 1),
        (socket.SOL_SOCKET, socket.SO_SNDBUF, SOCKET_BUFFER_BYTES),
        (socket.SOL_SOCKET, socket.SO_RCVBUF, SOCKET_BUFFER_BYTES),
    ):
        try:
            sock.setsockopt(level, option, value)
        except (OSError, ValueError):  # pragma: no cover - platform quirk
            pass


def tune_writer(writer: Any) -> None:
    """Tune the socket behind an ``asyncio.StreamWriter`` (if it has one)."""
    try:
        sock = writer.get_extra_info("socket")
    except AttributeError:
        return
    if isinstance(sock, socket.socket):
        tune_socket(sock)


def maybe_install_uvloop() -> bool:
    """Install uvloop's event-loop policy when opted in and available.

    Returns whether uvloop is active.  Call before ``asyncio.run`` (the
    cluster entrypoints and the worker ``__main__`` do); calling it again
    is a cached no-op, so libraries can invoke it defensively.
    """
    global _uvloop_installed
    if _uvloop_installed is not None:
        return _uvloop_installed
    _uvloop_installed = False
    if os.environ.get(UVLOOP_ENV, "").strip().lower() in ("", "0", "false", "no"):
        return False
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        logger.info("%s set but uvloop is not installed; using asyncio", UVLOOP_ENV)
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    _uvloop_installed = True
    logger.info("uvloop event-loop policy installed")
    return True
