"""The deterministic discrete-event runtime (the correctness oracle).

:class:`SimRuntime` adapts one ``(Simulator, Network)`` pair to the
:class:`~repro.runtime.base.Runtime` interface.  It adds **no** behaviour
of its own: every verb delegates straight to the simulator/network call
the protocol core used to make directly, so fixed-seed runs are
bit-identical to the pre-refactor code (pinned by the golden tests in
``tests/api/test_golden.py``).

One runtime is shared by every process on the same network; use
:meth:`SimRuntime.shared` to get (or lazily create) it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.runtime.base import Runtime, TimerHandle
from repro.simnet.events import Simulator
from repro.simnet.network import Network

__all__ = ["SimRuntime"]


class SimRuntime(Runtime):
    """Runtime over the discrete-event :class:`Simulator` + :class:`Network`."""

    models_cpu = True
    name = "sim"

    def __init__(self, simulator: Simulator, network: Network) -> None:
        self.simulator = simulator
        self.network = network

    @classmethod
    def shared(cls, simulator: Simulator, network: Network) -> "SimRuntime":
        """The per-network singleton runtime (created on first use)."""
        runtime = getattr(network, "_sim_runtime", None)
        if runtime is None or runtime.simulator is not simulator:
            runtime = cls(simulator, network)
            network._sim_runtime = runtime
        return runtime

    # -- clock ---------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.simulator.now

    # -- transport -----------------------------------------------------------
    def register(self, process: Any) -> None:
        self.network.register(process)

    def send(self, src: int, dst: int, message: Any, size_bytes: int = 0) -> None:
        self.network.send(src, dst, message, size_bytes)

    def counters(self) -> Dict[str, int]:
        return self.network.counters()

    def per_replica_counters(self) -> Dict[int, Dict[str, int]]:
        return self.network.per_replica_counters()

    # -- timers --------------------------------------------------------------
    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        return self.simulator.schedule(delay, callback, *args)

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        return self.simulator.schedule_at(time, callback, *args)
