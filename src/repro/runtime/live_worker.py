"""Worker subprocess for the live runtime's ``--procs`` mode.

Reads one JSON config from stdin::

    {
      "spec": {...ScenarioSpec.to_dict()...},
      "worker": 1,                 # this worker's index in the placement
      "placement": [[0, 3], [1, 4], [2, 5]],  # worker -> hosted pids
      "ports": {"0": 51001, ...},  # worker -> port map (one per worker)
      "host": "127.0.0.1",
      "fast_path": true,           # colocated direct delivery on/off
      "epoch": 1722334455.5,       # shared wall-clock zero / start barrier
      "duration": 3.0,
      "target_blocks": null,
      "cold_start": false,         # true for a supervisor-restarted worker
      "client_shard": [0, 3],      # open-loop swarm slice offset::step
      "incarnation": 0             # restart generation (namespaces request ids)
    }

hosts its placement slice of the committee behind one
:class:`~repro.runtime.fabric.WorkerFabric` — a single TCP server and one
multiplexed session per remote worker, the exact same code path as task
mode (only the process boundary differs) — and writes
``{"nodes": [...], "window": {...}}`` to stdout.  A ``cold_start`` worker
— respawned by the :class:`~repro.resilience.supervisor.WorkerSupervisor`
after its previous incarnation died — marks its replicas for catch-up
sync, so they request the committed blocks they missed the moment they
start.  Spawned by :class:`~repro.runtime.live.LiveCluster`; not intended
to be run by hand.
"""

from __future__ import annotations

import asyncio
import json
import logging
import sys
from typing import Any, Dict

from repro.chaos.plan import compile_chaos_plan
from repro.crypto.keys import Committee
from repro.experiments.runner import _make_signature_scheme
from repro.observe.logging_setup import configure_logging
from repro.runtime.fabric import Placement, WorkerFabric
from repro.runtime.live import LiveNode, serve_window
from repro.runtime.net import maybe_install_uvloop
from repro.scenarios.engine import compile_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["run_worker"]

logger = logging.getLogger("repro.runtime.live_worker")


async def _run_nodes(config: Dict[str, Any]) -> Dict[str, Any]:
    spec = ScenarioSpec.from_dict(config["spec"])
    compiled = compile_scenario(spec)
    host = config.get("host", "127.0.0.1")
    epoch = float(config["epoch"])
    duration = float(config["duration"])
    target_blocks = config.get("target_blocks")
    worker = int(config["worker"])
    placement = Placement.from_payload(config["placement"])
    ports = {int(w): int(port) for w, port in config["ports"].items()}
    committee = Committee(
        _make_signature_scheme(compiled.config),
        compiled.config.committee_size,
        seed=compiled.config.seed,
    )
    plan = compile_chaos_plan(compiled)
    fabric = WorkerFabric(
        worker,
        placement,
        compiled,
        host=host,
        fast_path=bool(config.get("fast_path", True)),
    )
    for pid in placement.pids_of(worker):
        fabric.add_node(LiveNode(pid, compiled, committee, epoch, host=host, plan=plan))
    await fabric.serve(port=ports[worker])
    fabric.set_worker_addresses({w: (host, port) for w, port in ports.items()})
    # The shared barrier + poll + stop lifecycle (same code path as task
    # mode); the epoch acts as the cross-worker start barrier.  A restarted
    # worker's replicas cold-start: they ask the surviving committee for
    # the committed blocks they missed.
    cold = bool(config.get("cold_start", False))
    shard = config.get("client_shard")
    return await serve_window(
        fabric,
        epoch,
        duration,
        None if target_blocks is None else int(target_blocks),
        cold_start_pids=placement.pids_of(worker) if cold else (),
        client_shard=None if shard is None else (int(shard[0]), int(shard[1])),
        incarnation=int(config.get("incarnation", 0)),
    )


def run_worker(stdin: Any = None, stdout: Any = None) -> int:
    # Logging goes to stderr only (REPRO_LOG_LEVEL selects the level):
    # stdout is the summary channel the parent parses as JSON, so a
    # single stray print there would corrupt the whole worker report.
    configure_logging()
    stdin = stdin or sys.stdin
    stdout = stdout or sys.stdout
    config = json.load(stdin)
    maybe_install_uvloop()
    logger.info(
        "worker %s starting (incarnation %s, cold_start=%s)",
        config.get("worker"),
        config.get("incarnation", 0),
        config.get("cold_start", False),
    )
    report = asyncio.run(_run_nodes(config))
    json.dump(report, stdout)
    stdout.flush()
    logger.info("worker %s finished", config.get("worker"))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(run_worker())
