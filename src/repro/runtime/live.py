"""The live asyncio runtime: real replicas over localhost TCP.

This is the second substrate behind the sans-I/O protocol core.  Each
replica of a :class:`~repro.scenarios.spec.ScenarioSpec` runs as its own
:class:`LiveNode` — an asyncio task owning a TCP server, outgoing peer
connections, a replicated mempool copy and a metrics collector — and the
unchanged :class:`~repro.consensus.replica.HotStuffReplica` drives it
through :class:`LiveRuntime`.  All wire traffic is framed with the
versioned codec in :mod:`repro.runtime.codec`.

Two deployment shapes:

* **task mode** (default): all replicas as tasks in one event loop —
  the fastest way to get a cluster up, and what the cross-runtime
  equivalence tests use;
* **``procs`` mode**: replicas are spread over worker subprocesses
  (``python -m repro.runtime.live_worker``), each hosting a slice of the
  committee in its own loop; all traffic still flows over localhost TCP,
  so the wire path is identical.

Determinism: the client workload is always *preloaded* (the full request
volume submitted at time zero — see ``WorkloadSpec.preload``), so leaders
batch identical request sequences in both runtimes and a fixed-seed spec
finalizes the same block ids under sim and live (pinned by
``tests/runtime/test_equivalence.py``).

Faults: crash schedules are supported (a timer crash-stops the local
process); partitions, Byzantine attacks, message loss and churn are
simulator-only for now and are rejected with a clear error.
"""

from __future__ import annotations

import asyncio
import json
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.consensus.leader import make_leader_election
from repro.consensus.mempool import Mempool
from repro.consensus.replica import HotStuffReplica
from repro.crypto.keys import Committee
from repro.crypto.params import TOY_PARAMS
from repro.experiments.runner import ExperimentResult, _make_signature_scheme
from repro.experiments.workloads import ClientWorkload
from repro.results import EpochMetrics, RunResult
from repro.runtime.base import Runtime, TimerHandle
from repro.runtime.codec import WireCodec
from repro.scenarios.engine import CompiledScenario, compile_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.simnet.metrics import LatencyStats, MetricsCollector

__all__ = [
    "LiveCluster",
    "LiveNode",
    "LiveRuntime",
    "run_live",
    "serve_window",
    "validate_live_spec",
]

#: How long (wall seconds) nodes wait between "servers are up" and
#: ``replica.start()`` so every peer is listening before view 1.
_START_GRACE = 0.15

#: Frame read limit — a proposal with a large batch stays far below this.
_READ_LIMIT = 16 * 1024 * 1024


def validate_live_spec(spec: ScenarioSpec) -> None:
    """Reject spec features the live runtime does not implement yet."""
    unsupported = []
    if spec.faults.partitions:
        unsupported.append("timed partitions")
    if spec.attack.strategy != "none":
        unsupported.append("byzantine attacks")
    if spec.churn.epochs > 1:
        unsupported.append("membership churn (epochs > 1)")
    if spec.topology.loss_probability > 0:
        unsupported.append("probabilistic message loss")
    if spec.committee.pool_size > spec.committee.size:
        unsupported.append("stake-weighted committee selection")
    if unsupported:
        raise ValueError(
            "the live runtime does not support: "
            + ", ".join(unsupported)
            + " (run this spec on the sim runtime)"
        )


class _LiveTimer(TimerHandle):
    """Adapter from ``asyncio.TimerHandle`` to the runtime's handle."""

    __slots__ = ("_handle", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_LiveTimer(cancelled={self._cancelled})"


class LiveRuntime(Runtime):
    """The :class:`Runtime` one live node hands its protocol process."""

    models_cpu = False
    name = "live"

    def __init__(self, node: "LiveNode") -> None:
        self._node = node

    @property
    def now(self) -> float:
        return self._node.now

    def register(self, process: Any) -> None:
        self._node.attach(process)

    def send(self, src: int, dst: int, message: Any, size_bytes: int = 0) -> None:
        self._node.transport_send(dst, message, size_bytes)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        loop = self._node.loop
        return _LiveTimer(loop.call_later(max(delay, 0.0), callback, *args))

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        return self.set_timer(when - self.now, callback, *args)

    def counters(self) -> Dict[str, int]:
        return dict(self._node.counters)

    def per_replica_counters(self) -> Dict[int, Dict[str, int]]:
        return {self._node.pid: dict(self._node.counters)}


class LiveNode:
    """One replica: TCP server + peer connections + protocol process."""

    def __init__(
        self,
        pid: int,
        compiled: CompiledScenario,
        committee: Committee,
        epoch: float,
        host: str = "127.0.0.1",
    ) -> None:
        self.pid = pid
        self.compiled = compiled
        self.host = host
        self.epoch = epoch
        self.port: Optional[int] = None
        self.peer_addresses: Dict[int, Tuple[str, int]] = {}
        self.loop: asyncio.AbstractEventLoop = None  # set in serve()
        config = compiled.config
        params = TOY_PARAMS if config.signature_scheme == "bls" else None
        self.codec = WireCodec(curve_params=params)
        self.metrics = MetricsCollector(warmup=0.0)
        self.mempool = Mempool(metrics=self.metrics, track_reservations=True)
        self.committee = committee
        self.counters: Dict[str, int] = {
            "messages_sent": 0,
            "messages_received": 0,
            "bytes_sent": 0,
        }
        # Frames that reached this node after it crash-stopped; kept out of
        # the per-replica transport schema (which mirrors the sim network's
        # three counters) and aggregated into message_counters instead.
        self.messages_dropped = 0
        self.runtime = LiveRuntime(self)
        self.replica = HotStuffReplica(
            process_id=pid,
            committee=committee,
            config=config,
            mempool=self.mempool,
            election=make_leader_election(config.leader_policy, config.committee_size),
            metrics=self.metrics,
            runtime=self.runtime,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._send_queues: Dict[int, asyncio.Queue] = {}
        self._tasks: List[asyncio.Task] = []
        self._stopping = False

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall-clock seconds since the cluster epoch (shared by workers)."""
        return time.time() - self.epoch

    # -- runtime hooks ---------------------------------------------------------
    def attach(self, process: Any) -> None:
        # The replica registers itself during construction; nothing to do —
        # the node already holds it.
        pass

    def transport_send(self, dst: int, message: Any, size_bytes: int) -> None:
        if self._stopping:
            return
        self.counters["messages_sent"] += 1
        self.counters["bytes_sent"] += size_bytes
        if dst == self.pid:
            # Self-sends stay local but are never re-entrant (the sim
            # delivers them through the event queue too).
            self.loop.call_soon(self.replica._deliver, self.pid, message)
            return
        queue = self._send_queues.get(dst)
        if queue is None:
            if dst not in self.peer_addresses:
                return  # unknown peer: drop, like the sim network
            queue = asyncio.Queue()
            self._send_queues[dst] = queue
            self._tasks.append(self.loop.create_task(self._writer(dst, queue)))
        queue.put_nowait(message)

    # -- server side -----------------------------------------------------------
    async def serve(self, port: int = 0) -> int:
        """Start this node's TCP server; returns the bound port."""
        self.loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, port, limit=_READ_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.append(task)
        try:
            hello = await self._read_frame(reader)
            peer = self.codec.decode(hello)
            if not isinstance(peer, int):
                return
            while True:
                frame = await self._read_frame(reader)
                message = self.codec.decode(frame)
                if self.replica.crashed:
                    # Mirror the sim network: traffic to a crashed replica
                    # is a drop, not a receipt.
                    self.messages_dropped += 1
                    continue
                self.counters["messages_received"] += 1
                if not self._stopping:
                    self.replica._deliver(peer, message)
        except (asyncio.IncompleteReadError, ConnectionError):
            return
        except asyncio.CancelledError:
            # Shutdown path: completing normally (instead of re-raising)
            # keeps asyncio's stream-protocol completion callback quiet.
            return
        finally:
            writer.close()

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
        header = await reader.readexactly(4)
        size = int.from_bytes(header, "big")
        if size > _READ_LIMIT:
            raise ConnectionError(f"oversized frame ({size} bytes)")
        return await reader.readexactly(size)

    # -- client side -----------------------------------------------------------
    async def _writer(self, dst: int, queue: asyncio.Queue) -> None:
        """Connect to ``dst`` (with retries) and drain its send queue."""
        host, port = self.peer_addresses[dst]
        writer: Optional[asyncio.StreamWriter] = None
        backoff = 0.01
        while writer is None and not self._stopping:
            try:
                _, writer = await asyncio.open_connection(host, port, limit=_READ_LIMIT)
            except (ConnectionError, OSError):
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, 0.25)
        if writer is None:  # pragma: no cover - stopped before connecting
            return
        try:
            writer.write(self.codec.frame(self.pid))
            while True:
                message = await queue.get()
                writer.write(self.codec.frame(message))
                await writer.drain()
        except (ConnectionError, OSError):  # peer went away (e.g. crashed)
            return
        except asyncio.CancelledError:
            raise
        finally:
            writer.close()

    # -- lifecycle --------------------------------------------------------------
    def start_protocol(self) -> None:
        """Preload the workload, arm crash timers and start the replica."""
        spec = self.compiled.spec
        workload_seed = (
            spec.workload.seed if spec.workload.seed is not None else self.compiled.config.seed
        )
        ClientWorkload(
            rate=spec.workload.rate,
            payload_size=spec.workload.payload_size,
            num_clients=spec.workload.num_clients,
            jitter=spec.workload.jitter,
            seed=workload_seed,
        ).preload_into(self.mempool, self.compiled.epoch_duration)
        if self.compiled.failure_plan is not None:
            crash_at = self.compiled.failure_plan.crashes.get(self.pid)
            if crash_at is not None:
                self.runtime.set_timer(max(crash_at - self.now, 0.0), self.replica.crash)
        self.replica.start()

    async def stop(self) -> None:
        self._stopping = True
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001 - teardown
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- reporting ---------------------------------------------------------------
    def summary(self, elapsed: float) -> Dict[str, Any]:
        """JSON-safe per-node stats (shared by task and subprocess modes)."""
        self.metrics.mark_window(0.0, elapsed)
        return {
            "pid": self.pid,
            "elapsed": elapsed,
            "crashed": self.replica.crashed,
            "current_view": self.replica.current_view,
            "committed_blocks": self.metrics.committed_blocks(),
            "committed_operations": self.metrics.committed_operations(),
            "committed_order": list(self.mempool.committed_order),
            "latency": self.metrics.latency_stats().to_dict(),
            "views_recorded": self.metrics.total_views(),
            "qc_size_sum": sum(self.metrics.qc_sizes()),
            "qc_count": len(self.metrics.qc_sizes()),
            "second_chance_inclusions": self.metrics.second_chance_inclusions(),
            "busy_time": self.replica.busy_time,
            "messages_dropped": self.messages_dropped,
            "transport": dict(self.counters),
        }


async def serve_window(
    nodes: List[LiveNode],
    epoch: float,
    duration: float,
    target_blocks: Optional[int],
) -> List[Dict[str, Any]]:
    """The shared serve loop: barrier, start, poll, stop, summarise.

    Both deployment shapes go through this exact code path — task mode
    (all nodes in one loop) and each ``--procs`` worker (its slice of the
    committee) — so their lifecycle semantics cannot diverge.  Nodes must
    already be listening with ``peer_addresses`` populated.
    """
    await asyncio.sleep(max(epoch - time.time(), 0.0))
    run_started = time.time()
    for node in nodes:
        node.start_protocol()
    deadline = run_started + duration
    try:
        while time.time() < deadline:
            if target_blocks is not None and any(
                len(node.mempool.committed_order) >= target_blocks for node in nodes
            ):
                break
            await asyncio.sleep(0.02)
    finally:
        elapsed = max(time.time() - run_started, 1e-9)
        for node in nodes:
            await node.stop()
    return [node.summary(elapsed) for node in nodes]


@dataclass
class LiveCluster:
    """A not-yet-started live deployment compiled from a spec.

    ``run()`` brings the committee up (asyncio tasks, or ``procs`` worker
    subprocesses), lets it serve the preloaded workload until ``duration``
    wall seconds elapse or a node commits ``target_blocks``, and returns
    the same :class:`RunResult` schema the sim runtime emits.
    """

    spec: ScenarioSpec
    duration: Optional[float] = None
    target_blocks: Optional[int] = None
    procs: int = 1
    host: str = "127.0.0.1"
    #: Pass a precompiled scenario to skip recompiling the spec (the
    #: engine's ``build_scenario_deployment(runtime="live")`` does).
    compiled: Optional[CompiledScenario] = None
    node_summaries: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        validate_live_spec(self.spec)
        if self.procs < 1:
            raise ValueError("procs must be >= 1")
        if self.compiled is None:
            self.compiled = compile_scenario(self.spec)
        elif self.compiled.spec is not self.spec:
            raise ValueError("compiled scenario does not belong to this spec")

    # -- public API --------------------------------------------------------------
    def run(self) -> RunResult:
        budget = self.duration if self.duration is not None else self.compiled.epoch_duration
        started = time.perf_counter()
        if self.procs > 1:
            summaries = self._run_subprocesses(budget)
        else:
            summaries = asyncio.run(self._run_tasks(budget))
        elapsed = time.perf_counter() - started
        self.node_summaries = sorted(summaries, key=lambda s: s["pid"])
        return self._build_result(elapsed)

    # -- task mode ---------------------------------------------------------------
    async def _run_tasks(self, budget: float) -> List[Dict[str, Any]]:
        size = self.compiled.config.committee_size
        committee = Committee(
            _make_signature_scheme(self.compiled.config), size, seed=self.compiled.config.seed
        )
        epoch = time.time() + _START_GRACE
        nodes = [
            LiveNode(pid, self.compiled, committee, epoch, host=self.host)
            for pid in range(size)
        ]
        addresses: Dict[int, Tuple[str, int]] = {}
        for node in nodes:
            port = await node.serve()
            addresses[node.pid] = (self.host, port)
        for node in nodes:
            node.peer_addresses = addresses
        return await serve_window(nodes, epoch, budget, self.target_blocks)

    # -- subprocess (--procs) mode -------------------------------------------------
    def _run_subprocesses(self, budget: float) -> List[Dict[str, Any]]:
        # The ports are reserve-and-release probed, so another process can
        # steal one before the worker binds it (a ~1s window behind
        # interpreter startup); on an address-in-use failure the whole
        # round is retried once with freshly probed ports.
        try:
            return self._spawn_workers_once(budget)
        except RuntimeError as exc:
            if "address already in use" not in str(exc).lower():
                raise
            return self._spawn_workers_once(budget)

    def _spawn_workers_once(self, budget: float) -> List[Dict[str, Any]]:
        size = self.compiled.config.committee_size
        procs = min(self.procs, size)
        ports = {pid: _free_port(self.host) for pid in range(size)}
        assignments = [list(range(size))[worker::procs] for worker in range(procs)]
        epoch = time.time() + 1.0  # generous start barrier across processes
        config = {
            "spec": self.spec.to_dict(),
            "ports": {str(pid): port for pid, port in ports.items()},
            "host": self.host,
            "epoch": epoch,
            "duration": budget,
            "target_blocks": self.target_blocks,
        }
        workers = []
        for pids in assignments:
            payload = json.dumps({**config, "pids": pids})
            workers.append(
                subprocess.Popen(
                    [sys.executable, "-m", "repro.runtime.live_worker"],
                    stdin=subprocess.PIPE,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    text=True,
                    env=None,
                )
            )
            workers[-1].stdin.write(payload)
            workers[-1].stdin.close()
            # communicate() must not try to flush the already-closed pipe.
            workers[-1].stdin = None
        summaries: List[Dict[str, Any]] = []
        timeout = budget + (epoch - time.time()) + 30.0
        errors = []
        for worker in workers:
            try:
                out, err = worker.communicate(timeout=timeout)
            except subprocess.TimeoutExpired:
                worker.kill()
                out, err = worker.communicate()
            if worker.returncode != 0:
                errors.append(err.strip() or f"worker exited {worker.returncode}")
                continue
            summaries.extend(json.loads(out)["nodes"])
        if errors:
            raise RuntimeError("live worker failed: " + " | ".join(errors))
        return summaries

    # -- result assembly -----------------------------------------------------------
    def _build_result(self, elapsed: float) -> RunResult:
        summaries = self.node_summaries
        if not summaries:
            raise RuntimeError("live run produced no node summaries")
        observer = max(summaries, key=lambda s: s["committed_blocks"])
        size = self.compiled.config.committee_size
        # Rates use the *serving* window each node measured (protocol start
        # to stop), not the full wall clock — which also covers server
        # bring-up, the start barrier and teardown (and, in procs mode,
        # worker interpreter startup).
        measured = max(s["elapsed"] for s in summaries)
        successful_views = sum(s["views_recorded"] for s in summaries)
        alive = [s for s in summaries if not s["crashed"]] or summaries
        max_view = max(s["current_view"] for s in alive)
        total_views = max(max_view - 1, successful_views)
        failed_fraction = 0.0
        if total_views > 0:
            failed_fraction = max(0.0, 1.0 - successful_views / total_views)
        qc_size_sum = sum(s["qc_size_sum"] for s in summaries)
        qc_count = sum(s["qc_count"] for s in summaries)
        cpu = [min(1.0, s["busy_time"] / measured) for s in summaries]
        transport = {str(s["pid"]): dict(s["transport"]) for s in summaries}
        message_counters = {
            "messages_sent": sum(s["transport"]["messages_sent"] for s in summaries),
            "messages_delivered": sum(s["transport"]["messages_received"] for s in summaries),
            "messages_dropped": sum(s.get("messages_dropped", 0) for s in summaries),
            "messages_blocked": 0,
            "bytes_sent": sum(s["transport"]["bytes_sent"] for s in summaries),
        }
        result = ExperimentResult(
            config_label=f"live {self.compiled.config.describe()}",
            duration=measured,
            throughput=observer["committed_operations"] / measured if measured > 0 else 0.0,
            latency=LatencyStats.from_dict(observer["latency"]),
            failed_view_fraction=failed_fraction,
            total_views=total_views,
            successful_views=successful_views,
            average_qc_size=qc_size_sum / qc_count if qc_count else 0.0,
            second_chance_inclusions=sum(s["second_chance_inclusions"] for s in summaries),
            cpu_utilisation_mean=sum(cpu) / len(cpu) if cpu else 0.0,
            cpu_utilisation_max=max(cpu) if cpu else 0.0,
            committed_operations=observer["committed_operations"],
            committed_blocks=observer["committed_blocks"],
            message_counters=message_counters,
            transport=transport,
        )
        epoch_metrics = EpochMetrics(
            epoch=0,
            committee=tuple(range(size)),
            overlap=1.0,
            stake_gini=None,
            result=result,
        )
        return RunResult(
            spec=self.spec,
            epochs=[epoch_metrics],
            attackers=(),
            runtime="live",
            wall_clock_seconds=elapsed,
        )

    # -- convenience ---------------------------------------------------------------
    def committed_order(self, pid: int = 0) -> List[str]:
        """Block ids node ``pid`` committed, in order (after ``run()``)."""
        for summary in self.node_summaries:
            if summary["pid"] == pid:
                return list(summary["committed_order"])
        raise KeyError(f"no summary for pid {pid}")


def _free_port(host: str) -> int:
    """Reserve-and-release an ephemeral port for a worker subprocess."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def run_live(
    spec: ScenarioSpec,
    *,
    quick: bool = False,
    duration: Optional[float] = None,
    target_blocks: Optional[int] = None,
    procs: int = 1,
) -> RunResult:
    """Run ``spec`` on the live asyncio runtime and return its result.

    ``quick`` applies the same :meth:`ScenarioSpec.quick` shrink the CLI
    and CI use and caps the run at 12 committed blocks so a smoke run
    returns in a couple of seconds.
    """
    if quick:
        spec = spec.quick()
        if target_blocks is None:
            target_blocks = 12
    cluster = LiveCluster(
        spec=spec,
        duration=duration,
        target_blocks=target_blocks,
        procs=procs,
    )
    return cluster.run()
