"""The live asyncio runtime: real replicas over localhost TCP.

This is the second substrate behind the sans-I/O protocol core.  Each
replica of a :class:`~repro.scenarios.spec.ScenarioSpec` runs as its own
:class:`LiveNode` — a protocol process with a replicated mempool copy
and a metrics collector — and the unchanged
:class:`~repro.consensus.replica.HotStuffReplica` drives it through
:class:`LiveRuntime`.  All wire traffic is framed with the versioned
codec in :mod:`repro.runtime.codec`.

Transport is the **scale-out fabric** (:mod:`repro.runtime.fabric`):
replicas are sharded across workers by a :class:`Placement`, each worker
runs one :class:`WorkerFabric` — a single TCP server plus one
multiplexed :class:`~repro.resilience.session.PeerSession` per *remote
worker* — and same-worker replicas deliver over the colocated fast path
(direct in-process handoff, no codec).  Connection count is O(workers²)
regardless of committee size, which is what makes n=200 live committees
tractable.

Two deployment shapes:

* **task mode** (default): all replicas as tasks in one event loop — one
  worker hosting the whole committee, zero TCP between replicas — the
  fastest way to get a cluster up, and what the cross-runtime
  equivalence tests use;
* **``procs`` mode**: replicas are spread over worker subprocesses
  (``python -m repro.runtime.live_worker``), each hosting a slice of the
  committee in its own loop; cross-worker traffic flows over localhost
  TCP through the worker-pair sessions.

Client traffic (see :mod:`repro.clients`): by default a run is driven by
an **open-loop client swarm** — asyncio client tasks (sharded across the
``--procs`` workers) submitting requests over TCP at a configured
aggregate rate, admission-controlled at each replica's mempool
(``WorkloadSpec.max_pending`` / ``client_window``) and answered with a
commit reply the client times.  Clients dial *workers*; the fabric fans
each request to every hosted replica's admission control.  What the
swarm observed lands in ``RunResult.clients``.  Setting
``WorkloadSpec.preload`` instead selects deterministic *replay* mode:
the full request volume is submitted at time zero, so leaders batch
identical request sequences in both runtimes and a fixed-seed spec
finalizes the same block ids under sim and live (pinned by
``tests/runtime/test_equivalence.py``).

Chaos: every node carries a :class:`~repro.chaos.driver.ChaosDriver`
compiled from the same spec the simulator consumes (see
:mod:`repro.chaos`).  Outbound frames pass a per-link shaping pipeline
(topology-model latency, probabilistic loss, FIFO bandwidth queuing)
*before* the fabric dispatches them, so shaping and partitions behave
identically on the fast path and the TCP path; timed partitions suppress
directed links with reference counts, crash timers stop — and restart
timers recover — the local replica, and Byzantine omission cartels run
the adversarial aggregators from :mod:`repro.attacks`.  Multi-epoch
churn re-provisions the cluster per epoch through the shared
:func:`repro.scenarios.engine.run_epochs` orchestrator.  The scheduled
fault driver and churn loop need task mode; ``validate_live_spec``
rejects those spec fields under ``--procs``.

Resilience (see :mod:`repro.resilience`): worker-pair links are
:class:`~repro.resilience.session.PeerSession` objects — sequenced
envelopes with cumulative acks, bounded resend buffers and jittered
reconnect; a phi-accrual failure detector per replica builds suspicion
timelines from traffic observations (cross-worker frames vouch for their
``src`` replica, idle links carry worker-level heartbeats, colocated
replicas observe each other directly); recovered replicas catch up on
missed commits through the ``SyncRequest``/``SyncResponse`` protocol;
``--procs`` workers run under a restart-capable
:class:`~repro.resilience.supervisor.WorkerSupervisor` and a quiescence
watchdog (``resilience.quiesce_after``) ends a run that has stopped
committing.  Everything lands in ``RunResult.resilience``.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import socket
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.chaos.driver import ChaosDriver
from repro.chaos.plan import ChaosPlan, compile_chaos_plan
from repro.clients.messages import ClientReject, ClientReply, ClientRequest
from repro.clients.stats import LatencyDigest
from repro.clients.swarm import ClientSwarm, merge_summaries
from repro.consensus.leader import make_leader_election
from repro.consensus.mempool import Mempool
from repro.consensus.replica import HotStuffReplica
from repro.crypto.keys import Committee
from repro.crypto.params import TOY_PARAMS
from repro.experiments.runner import ExperimentResult, _make_signature_scheme
from repro.experiments.workloads import ClientWorkload
from repro.observe.metrics import MetricsRegistry
from repro.observe.metrics import merge_snapshots as merge_metrics_snapshots
from repro.observe.trace import Tracer, seeded_run_id
from repro.observe.trace import merge_snapshots as merge_trace_snapshots
from repro.resilience.detector import PhiAccrualDetector
from repro.resilience.supervisor import RestartPolicy, SupervisedWorker, WorkerSupervisor
from repro.results import EpochMetrics, RunResult
from repro.runtime.base import Runtime, TimerHandle
from repro.runtime.codec import FrameBatch, PreEncoded, WireCodec
from repro.runtime.fabric import Placement, WorkerFabric
from repro.runtime.net import maybe_install_uvloop
from repro.scenarios.engine import (
    CompiledScenario,
    compile_scenario,
    compiled_for_epoch,
    run_epochs,
)
from repro.scenarios.spec import ScenarioSpec
from repro.simnet.metrics import LatencyStats, MetricsCollector

__all__ = [
    "LiveCluster",
    "LiveNode",
    "LiveRuntime",
    "run_live",
    "serve_window",
    "validate_live_spec",
]

logger = logging.getLogger("repro.runtime.live")


#: Shared verification worker pool (lazily created, one per interpreter).
#: All nodes in a process share it — in task mode the whole committee
#: lives in one loop, so a per-node pool would just multiply idle threads.
#: ``ThreadPoolExecutor`` threads are joined at interpreter exit, so no
#: per-run teardown is needed; in-flight work after a node stops is
#: discarded by the node's ``_stopping`` guard.
_verification_pool: Optional[ThreadPoolExecutor] = None


def _worker_pool() -> ThreadPoolExecutor:
    global _verification_pool
    if _verification_pool is None:
        _verification_pool = ThreadPoolExecutor(
            max_workers=max(2, (os.cpu_count() or 2) - 1),
            thread_name_prefix="repro-verify",
        )
    return _verification_pool


#: Capability table behind :func:`validate_live_spec`: each entry is a
#: spec feature the live runtime cannot execute in the given deployment
#: shape — ``(spec fields, why, predicate(spec, procs))``.  Everything
#: not listed here (partitions, loss, WAN latency, bandwidth, Byzantine
#: cartels, crash/restart churn, membership epochs, stake pools) is
#: supported since the chaos layer landed; the scheduled fault driver and
#: the churn loop coordinate in-process, so those features need task mode.
_LIVE_UNSUPPORTED = (
    (
        "faults.partitions",
        "timed partitions need the in-process fault driver (task mode)",
        lambda spec, procs: procs > 1 and spec.faults.partitions,
    ),
    (
        "faults.restart_at",
        "crash-restart churn needs the in-process fault driver (task mode)",
        lambda spec, procs: procs > 1 and spec.faults.restart_at is not None,
    ),
    (
        "attack.strategy",
        "Byzantine cartels need the in-process fault driver (task mode)",
        lambda spec, procs: procs > 1 and spec.attack.strategy != "none",
    ),
    (
        "churn.epochs",
        "membership churn re-provisions the cluster once per epoch (task mode)",
        lambda spec, procs: procs > 1 and spec.churn.epochs > 1,
    ),
)


def validate_live_spec(spec: ScenarioSpec, *, procs: int = 1) -> None:
    """Capability-based validation of a spec for the live runtime.

    Every built-in preset — partitions, loss, WAN shaping, omission
    cartels, churn — runs live in task mode; only the capability table's
    entries are rejected, with an error naming the offending spec fields
    so the caller knows exactly what to change.
    """
    offending = [
        (fields, why)
        for fields, why, predicate in _LIVE_UNSUPPORTED
        if predicate(spec, procs)
    ]
    if offending:
        raise ValueError(
            "the live runtime does not support these spec fields in this "
            "deployment shape: "
            + "; ".join(f"{fields} — {why}" for fields, why in offending)
            + " (drop --procs to run in task mode, or use the sim runtime)"
        )


class _LiveTimer(TimerHandle):
    """Adapter from ``asyncio.TimerHandle`` to the runtime's handle."""

    __slots__ = ("_handle", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"_LiveTimer(cancelled={self._cancelled})"


class LiveRuntime(Runtime):
    """The :class:`Runtime` one live node hands its protocol process."""

    models_cpu = False
    name = "live"

    def __init__(self, node: "LiveNode") -> None:
        self._node = node

    @property
    def now(self) -> float:
        return self._node.now

    def register(self, process: Any) -> None:
        self._node.attach(process)

    def send(self, src: int, dst: int, message: Any, size_bytes: int = 0) -> None:
        self._node.transport_send(dst, message, size_bytes)

    def multicast(
        self, src: int, destinations: Iterable[int], message: Any, size_bytes: int = 0
    ) -> None:
        """Fan one message out to many peers, encoding its bytes once.

        When two or more *wire-bound* destinations are addressed — peers
        whose delivery actually crosses the codec, i.e. remote-worker
        peers (or any peer with the colocated fast path disabled) — the
        payload is serialised a single time and the same
        :class:`PreEncoded` body is handed to every worker session, which
        splices the bytes into its envelopes without re-encoding: a
        leader's proposal broadcast costs one encode instead of one per
        peer.  Fast-path and self deliveries always receive the original
        object; in task mode the whole broadcast therefore skips
        serialisation entirely.
        """
        node = self._node
        destinations = list(destinations)
        fabric = node.fabric
        wire_bound = 0
        if fabric is not None:
            wire_bound = sum(
                1
                for dst in destinations
                if dst != node.pid and fabric.wire_bound(dst)
            )
        wire = (
            PreEncoded(node.codec.encode_value(message), message)
            if wire_bound > 1
            else message
        )
        for dst in destinations:
            node.transport_send(dst, message if dst == node.pid else wire, size_bytes)

    def offload(self, fn: Callable[[], Any], callback: Callable[[Any], None]) -> None:
        self._node.offload(fn, callback)

    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        loop = self._node.loop
        return _LiveTimer(loop.call_later(max(delay, 0.0), callback, *args))

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        return self.set_timer(when - self.now, callback, *args)

    def counters(self) -> Dict[str, int]:
        return dict(self._node.counters)

    def per_replica_counters(self) -> Dict[int, Dict[str, int]]:
        return {self._node.pid: dict(self._node.counters)}


class LiveNode:
    """One replica: protocol process + chaos driver, hosted by a fabric.

    The node no longer owns any I/O: its worker's :class:`WorkerFabric`
    carries all TCP (and colocated fast-path) traffic and registers
    itself as ``node.fabric`` via ``add_node``.  A bare node without a
    fabric (unit tests building replicas directly) simply counts every
    remote send as dropped.
    """

    def __init__(
        self,
        pid: int,
        compiled: CompiledScenario,
        committee: Committee,
        epoch: float,
        host: str = "127.0.0.1",
        plan: "Optional[ChaosPlan]" = None,
    ) -> None:
        self.pid = pid
        self.compiled = compiled
        self.host = host
        self.epoch = epoch
        self.loop: asyncio.AbstractEventLoop = None  # set by the fabric
        self.fabric: Optional[WorkerFabric] = None  # set by WorkerFabric.add_node
        config = compiled.config
        params = TOY_PARAMS if config.signature_scheme == "bls" else None
        self.codec = WireCodec(curve_params=params)
        self.metrics = MetricsCollector(warmup=0.0)
        # Observability (see repro.observe): one tracer per node — the
        # live counterpart of the sim's single deployment-wide tracer —
        # merged across nodes/workers at summary time.  ``None`` keeps
        # every emission site down to one attribute load + ``is None``.
        observe = compiled.spec.observe
        self.tracer: Optional[Tracer] = None
        if observe.enabled:
            self.tracer = Tracer(
                seeded_run_id(compiled.spec.name, compiled.spec.seed),
                capacity=observe.capacity,
                sample_rate=observe.sample_rate,
                seed=compiled.spec.seed,
            )
            self.metrics.tracer = self.tracer
        workload = compiled.spec.workload
        self.mempool = Mempool(
            metrics=self.metrics,
            track_reservations=True,
            max_pending=workload.max_pending,
            client_window=workload.client_window,
        )
        # Open-loop reply routing: commit notifications fan back out to
        # every client connection on this worker (no-op in preload mode).
        self.mempool.on_commit = self._on_requests_committed
        self.replies_sent = 0
        self.committee = committee
        # Per-replica transport counters, maintained once at this framing
        # layer (logical messages, modeled byte sizes) so sim and live
        # report the same per-replica schema; ``restarts`` is merged in
        # from the replica when summarising.  Session control traffic
        # (hellos, acks, heartbeats) stays out of these on purpose.
        self.counters: Dict[str, int] = {
            "messages_sent": 0,
            "messages_received": 0,
            "bytes_sent": 0,
            "messages_dropped": 0,
            "messages_delayed": 0,
        }
        # Partition-suppressed sends (also counted as dropped), aggregated
        # into the run's ``messages_blocked`` like the sim network does.
        self.messages_blocked = 0
        self.runtime = LiveRuntime(self)
        self.replica = HotStuffReplica(
            process_id=pid,
            committee=committee,
            config=config,
            mempool=self.mempool,
            election=make_leader_election(config.leader_policy, config.committee_size),
            metrics=self.metrics,
            runtime=self.runtime,
        )
        self._stopping = False
        self._preloaded = False
        # Resilience layer: phi-accrual failure detection per replica.
        # The fabric feeds it — cross-worker traffic and heartbeats vouch
        # for their source replica; colocated peers are observed directly
        # on the maintenance tick.
        self.resilience = compiled.spec.resilience
        self.detector = PhiAccrualDetector(
            threshold=self.resilience.phi_threshold,
            window=self.resilience.detector_window,
            bootstrap_interval=self.resilience.heartbeat_interval,
        )
        # The chaos layer: traffic shaping + scheduled faults + attacker
        # corruption, all derived deterministically from the spec seed
        # (corruption happens here, before the replica ever starts).  The
        # cluster compiles one plan and shares it across its nodes; a
        # bare node (tests) compiles its own.
        self.chaos = ChaosDriver(self, plan if plan is not None else compile_chaos_plan(compiled))

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Wall-clock seconds since the cluster epoch (shared by workers)."""
        return time.time() - self.epoch

    # -- runtime hooks ---------------------------------------------------------
    def attach(self, process: Any) -> None:
        # The replica registers itself during construction; nothing to do —
        # the node already holds it.
        pass

    def offload(self, fn: Callable[[], Any], callback: Callable[[Any], None]) -> None:
        """Run ``fn`` on the shared worker pool; deliver ``callback`` on the loop.

        The live half of :meth:`~repro.runtime.base.Runtime.offload`:
        batched pairing checks run on a ``ThreadPoolExecutor`` thread so
        the event loop keeps serving frames, and the result is marshalled
        back with ``call_soon_threadsafe``.  Work still in flight when the
        node stops is silently discarded — by then its collection state is
        gone anyway.
        """
        if self._stopping:
            return
        loop = self.loop
        if loop is None:  # bare node in tests, no loop yet: run inline
            callback(fn())
            return
        future = _worker_pool().submit(fn)

        def _done(fut) -> None:
            try:
                result = fut.result()
            except Exception as exc:  # a verifier must never kill the node
                logger.warning("replica %d offloaded work raised %r", self.pid, exc)
                return
            if self._stopping:
                return
            try:
                loop.call_soon_threadsafe(self._offload_callback, callback, result)
            except RuntimeError:
                pass  # loop already closed during teardown

        future.add_done_callback(_done)

    def _offload_callback(self, callback: Callable[[Any], None], result: Any) -> None:
        if not self._stopping:
            callback(result)

    def transport_send(self, dst: int, message: Any, size_bytes: int) -> None:
        if self._stopping:
            return
        self.counters["messages_sent"] += 1
        self.counters["bytes_sent"] += size_bytes
        if dst == self.pid:
            # Self-sends stay local but are never re-entrant (the sim
            # delivers them through the event queue too) — and they count
            # as received, like the sim network counts self-deliveries.
            self.counters["messages_received"] += 1
            self.loop.call_soon(self.replica._deliver, self.pid, message)
            return
        if self.chaos.blocked(dst):
            # Partition suppression: a drop at the sender, mirroring the
            # sim network's blocked-link accounting.
            self.counters["messages_dropped"] += 1
            self.messages_blocked += 1
            return
        shaper = self.chaos.shaper
        if shaper is None:
            self._enqueue(dst, message)
            return
        delay = shaper.shape(dst, size_bytes, self.now)
        if delay is None:  # probabilistic loss
            self.counters["messages_dropped"] += 1
            return
        if delay > 0:
            self.counters["messages_delayed"] += 1
            self.loop.call_later(delay, self._enqueue, dst, message)
        else:
            self._enqueue(dst, message)

    def _enqueue(self, dst: int, message: Any) -> None:
        """Hand one (possibly shaping-delayed) message to the fabric."""
        if self._stopping:
            return
        fabric = self.fabric
        if fabric is None or not fabric.routes(dst):
            # No fabric (bare node in tests) or unknown peer: drop, like
            # the sim network.
            self.counters["messages_dropped"] += 1
            return
        fabric.dispatch(self.pid, dst, message)

    def receive_from_peer(self, src: int, message: Any) -> None:
        """Deliver one inbound protocol message from replica ``src``.

        The single receive funnel for both the colocated fast path and
        demultiplexed TCP frames, so liveness observation and transport
        accounting cannot diverge between them.
        """
        if self.replica.crashed:
            # Mirror the sim network: traffic to a crashed replica is a
            # drop, not a receipt — and a down replica observes nothing.
            self.counters["messages_dropped"] += 1
            return
        # Any delivered frame is a liveness observation for its sender.
        self.detector.heartbeat(src, self.now)
        self.counters["messages_received"] += 1
        if not self._stopping:
            self.replica._deliver(src, message)

    # -- client admission (connections live on the fabric) -----------------------
    def _admit_client_request(
        self, request: ClientRequest, writer: asyncio.StreamWriter
    ) -> None:
        if self._stopping or self.replica.crashed:
            # A down replica neither admits nor rejects; the client's
            # other links keep serving it (first reply wins anyway).
            return
        verdict = self.mempool.admit(
            request_id=request.request_id,
            client_id=request.client_id,
            size_bytes=request.payload_size,
            now=self.now,
        )
        tracer = self.tracer
        if tracer is not None and tracer.sample_tick("client_admit"):
            tracer.emit("client_admit", self.pid, self.now, verdict=verdict)
        if verdict == "admitted":
            # A full batch may be waiting on the proposal deadline.
            self.replica.maybe_propose_full_batch()
        elif verdict == "duplicate":
            if self.mempool.is_committed(request.request_id):
                self._write_client(
                    writer,
                    self.codec.frame(
                        ClientReply(request_id=request.request_id, replica=self.pid)
                    ),
                )
                self.replies_sent += 1
        elif verdict == "dropped":
            self._write_client(
                writer,
                self.codec.frame(ClientReject(request_id=request.request_id)),
            )
        else:  # deferred: per-client window exceeded
            self._write_client(
                writer,
                self.codec.frame(
                    ClientReject(
                        request_id=request.request_id, reason="client-window"
                    )
                ),
            )

    def _on_requests_committed(self, requests: List[Any]) -> None:
        """Mempool first-commit hook: notify every client connection.

        One reply per request, batched into a single frame broadcast on
        the worker's client connections; shards that do not own a
        request id ignore it.
        """
        fabric = self.fabric
        if self._stopping or fabric is None or not fabric.has_clients:
            return
        replies = tuple(
            ClientReply(request_id=r.request_id, replica=self.pid) for r in requests
        )
        wire = replies[0] if len(replies) == 1 else FrameBatch(replies)
        fabric.broadcast_client(self.codec.frame(wire))
        self.replies_sent += len(replies)
        if self.tracer is not None:
            # One event per commit batch, not per request: reply volume
            # is already a counter; the trace only needs the timing.
            self.tracer.emit("client_reply", self.pid, self.now, count=len(replies))

    @staticmethod
    def _write_client(writer: asyncio.StreamWriter, frame: bytes) -> None:
        if not writer.is_closing():
            writer.write(frame)

    def note_suspicions(self, transitions: Sequence[Any]) -> None:
        """Trace failure-detector raise/clear transitions.

        Called by the fabric's maintenance tick right where
        ``detector.evaluate`` returns them, so the events land in the
        ring *at* transition time — per-pid sequence numbers stay
        monotone with the node's timestamps, which the trace validator
        checks.
        """
        tracer = self.tracer
        if tracer is None:
            return
        for suspicion in transitions:
            if suspicion.active:
                tracer.emit(
                    "suspicion_raised",
                    self.pid,
                    suspicion.raised_at,
                    suspect=suspicion.peer,
                    phi=round(suspicion.phi, 3),
                )
            else:
                tracer.emit(
                    "suspicion_cleared",
                    self.pid,
                    suspicion.cleared_at,
                    suspect=suspicion.peer,
                )

    # -- fault hooks (chaos driver) ---------------------------------------------
    def crash_replica(self) -> None:
        """Scheduled-crash hook: stop the local replica."""
        self.replica.crash()

    def recover_replica(self) -> None:
        """Scheduled-restart hook: recover the replica and reset suspicion
        clocks — the downtime silence says nothing about the *peers*."""
        self.replica.recover()
        self.detector.touch_all(self.now)

    # -- lifecycle --------------------------------------------------------------
    def preload_workload(self) -> None:
        """Submit the run's full request volume into the local pool.

        Only applies when ``WorkloadSpec.preload`` selects deterministic
        replay mode; in the default open-loop mode requests arrive over
        the wire from the client swarm instead, and this is a no-op.

        Preloading happens at (virtual) time zero, so it can — and should
        — run *before* the measured serving window opens: at benchmark
        request volumes building 10^5 request records takes a visible
        slice of wall-clock time, and doing it inside the window both
        shrinks the effective serving time and delays the first proposal.
        Idempotent so callers that cannot separate the phases (the worker
        entrypoint's cold restarts) can rely on :meth:`start_protocol`.
        """
        if self._preloaded:
            return
        self._preloaded = True
        spec = self.compiled.spec
        if not spec.workload.preload:
            return
        workload_seed = (
            spec.workload.seed if spec.workload.seed is not None else self.compiled.config.seed
        )
        ClientWorkload(
            rate=spec.workload.rate,
            payload_size=spec.workload.payload_size,
            num_clients=spec.workload.num_clients,
            seed=workload_seed,
            arrival=spec.workload.arrival,
            burst_factor=spec.workload.burst_factor,
            period=spec.workload.arrival_period,
        ).preload_into(self.mempool, self.compiled.epoch_duration)

    def start_protocol(self, request_sync: bool = False) -> None:
        """Preload the workload (if not yet), arm chaos, start the replica.

        ``request_sync`` marks a cold-started replica (e.g. hosted by a
        restarted ``--procs`` worker) that should immediately ask its
        peers for the committed blocks it missed.
        """
        self.preload_workload()
        self.chaos.arm()
        self.replica.start()
        if request_sync and self.compiled.config.sync_on_recover:
            self.replica.request_sync()

    # -- reporting ---------------------------------------------------------------
    def summary(self, elapsed: float) -> Dict[str, Any]:
        """JSON-safe per-node stats (shared by task and subprocess modes).

        Session-level counters (reconnects, resends, duplicate frames,
        heartbeats) live on the *worker-pair* links now, not on replicas
        — they land in the cluster-level fabric record instead of here.
        """
        self.metrics.mark_window(0.0, elapsed)
        replica = self.replica
        recovered_at = replica.recovered_at
        first_commit = replica.first_commit_after_recovery
        time_to_rejoin = None
        if recovered_at is not None and first_commit is not None:
            time_to_rejoin = max(first_commit - recovered_at, 0.0)
        report = {
            "pid": self.pid,
            "elapsed": elapsed,
            "crashed": replica.crashed,
            "current_view": replica.current_view,
            "committed_blocks": self.metrics.committed_blocks(),
            "committed_operations": self.metrics.committed_operations(),
            "committed_order": list(self.mempool.committed_order),
            "latency": self.metrics.latency_stats().to_dict(),
            "views_recorded": self.metrics.total_views(),
            "qc_size_sum": sum(self.metrics.qc_sizes()),
            "qc_count": len(self.metrics.qc_sizes()),
            "second_chance_inclusions": self.metrics.second_chance_inclusions(),
            "busy_time": replica.busy_time,
            "messages_blocked": self.messages_blocked,
            "transport": {**self.counters, "restarts": replica.restarts},
            "clients": {
                **self.mempool.admission_summary(),
                "replies_sent": self.replies_sent,
            },
            "resilience": {
                "suspicions": self.detector.summary(),
                "sync_requests_sent": replica.sync_requests_sent,
                "sync_requests_served": replica.sync_requests_served,
                "catchup_blocks": replica.catchup_blocks,
                "restarts": replica.restarts,
                "crashed_at": replica.crashed_at,
                "recovered_at": recovered_at,
                "first_commit_after_recovery": first_commit,
                "time_to_rejoin": time_to_rejoin,
            },
        }
        if self.tracer is not None:
            report["observe"] = {
                "trace": self.tracer.snapshot(),
                "metrics": self._registry_snapshot(replica),
            }
        return report

    def _registry_snapshot(self, replica: HotStuffReplica) -> Dict[str, Any]:
        """Fill a :class:`MetricsRegistry` from this node's counters.

        Summary-time import of the scattered ad-hoc counters into the
        unified registry namespace — zero hot-path rewiring; the parent
        merges the snapshots (counters add, gauges max, histograms
        bucket-merge) across nodes, workers and restart incarnations.
        """
        registry = MetricsRegistry()
        registry.fill_counters(self.counters, prefix="transport.")
        registry.counter("transport.restarts", replica.restarts)
        registry.counter("transport.messages_blocked", self.messages_blocked)
        registry.fill_counters(self.mempool.admission_summary(), prefix="clients.")
        registry.counter("clients.replies_sent", self.replies_sent)
        registry.counter("consensus.committed_blocks", self.metrics.committed_blocks())
        registry.counter(
            "consensus.committed_operations", self.metrics.committed_operations()
        )
        registry.counter("consensus.views_recorded", self.metrics.total_views())
        registry.counter(
            "consensus.second_chance_inclusions",
            self.metrics.second_chance_inclusions(),
        )
        registry.counter("resilience.sync_requests_sent", replica.sync_requests_sent)
        registry.counter("resilience.sync_requests_served", replica.sync_requests_served)
        registry.counter("resilience.catchup_blocks", replica.catchup_blocks)
        registry.counter("resilience.suspicions", len(self.detector.timeline))
        registry.gauge("consensus.current_view", replica.current_view)
        histogram = registry.histogram("consensus.commit_latency")
        for sample in self.metrics.latency_samples():
            histogram.record(sample)
        return registry.snapshot()


def _salvaged_summary(pid: int, elapsed: float) -> Dict[str, Any]:
    """Placeholder summary for a replica whose worker was never recovered.

    Lets a degraded ``--procs`` run complete with a full per-pid report
    instead of raising; the pid shows up as crashed with zeroed metrics.
    """
    return {
        "pid": pid,
        "elapsed": elapsed,
        "crashed": True,
        "salvaged": True,
        "current_view": 1,
        "committed_blocks": 0,
        "committed_operations": 0,
        "committed_order": [],
        "latency": LatencyStats.from_samples([]).to_dict(),
        "views_recorded": 0,
        "qc_size_sum": 0,
        "qc_count": 0,
        "second_chance_inclusions": 0,
        "busy_time": 0.0,
        "messages_blocked": 0,
        "transport": {
            "messages_sent": 0,
            "messages_received": 0,
            "bytes_sent": 0,
            "messages_dropped": 0,
            "messages_delayed": 0,
            "restarts": 0,
        },
        "clients": {
            "admitted": 0,
            "duplicate": 0,
            "dropped": 0,
            "deferred": 0,
            "peak_pending": 0,
            "pending": 0,
            "replies_sent": 0,
        },
        "resilience": {
            "suspicions": [],
            "sync_requests_sent": 0,
            "sync_requests_served": 0,
            "catchup_blocks": 0,
            "restarts": 0,
            "crashed_at": None,
            "recovered_at": None,
            "first_commit_after_recovery": None,
            "time_to_rejoin": None,
        },
    }


async def serve_window(
    fabric: WorkerFabric,
    epoch: Optional[float],
    duration: float,
    target_blocks: Optional[int],
    *,
    cold_start_pids: Sequence[int] = (),
    client_shard: Optional[Tuple[int, int]] = None,
    incarnation: int = 0,
) -> Dict[str, Any]:
    """The shared serve loop: readiness, barrier, start, poll, stop.

    Both deployment shapes go through this exact code path — task mode
    (one fabric hosting the whole committee) and each ``--procs`` worker
    (its fabric hosting a slice) — so their lifecycle semantics cannot
    diverge.  The fabric must already be serving with its worker address
    map populated.

    ``epoch=None`` (task mode) starts the protocol the moment every
    worker-pair session has established — an explicit readiness barrier
    that collapses to a no-op when there are no remote workers — and
    rebases every node's clock to that instant.  A wall-clock ``epoch``
    (subprocess mode) is the cross-worker barrier: session establishment
    happens in the pre-barrier window.

    ``client_shard=(offset, step)`` runs shard ``offset::step`` of the
    spec's open-loop client swarm alongside the nodes (task mode passes
    ``(0, 1)``; each ``--procs`` worker hosts its own shard).  The swarm
    dials *workers*, not replicas.  ``None`` — or a spec in
    preload/replay mode, or a zero rate — runs no swarm.  ``incarnation``
    namespaces a restarted worker's request ids so they never collide
    with its dead predecessor's.

    Returns ``{"nodes": [...summaries...], "window": {...}}`` where the
    window record carries the measured ``elapsed``, whether the run was
    cut short by the quiescence watchdog, whether all sessions were
    ready before the protocol started, the swarm shard's client-side
    summary (``"swarm"``, ``None`` when no swarm ran), and this worker's
    fabric transport record (``"fabric"``).
    """
    nodes = fabric.node_list
    res = fabric.resilience
    spec = fabric.compiled.spec
    swarm: Optional[ClientSwarm] = None
    if (
        client_shard is not None
        and not spec.workload.preload
        and spec.workload.rate > 0
    ):
        workload_seed = (
            spec.workload.seed
            if spec.workload.seed is not None
            else fabric.compiled.config.seed
        )
        swarm = ClientSwarm(
            fabric.worker_addresses,
            rate=spec.workload.rate,
            payload_size=spec.workload.payload_size,
            num_clients=spec.workload.num_clients,
            arrival=spec.workload.arrival,
            seed=workload_seed,
            burst_factor=spec.workload.burst_factor,
            period=spec.workload.arrival_period,
            shard_offset=client_shard[0],
            shard_step=client_shard[1],
            incarnation=incarnation,
        )
    ready = await fabric.wait_ready(res.ready_timeout)
    # Preload the client workload while still outside the measured window:
    # the submissions carry virtual time zero either way, and at benchmark
    # request volumes building them takes long enough to visibly eat into
    # the window (and to delay every node's first proposal).
    for node in nodes:
        node.preload_workload()
    if epoch is None:
        start = time.time()
        for node in nodes:
            node.epoch = start
    else:
        await asyncio.sleep(max(epoch - time.time(), 0.0))
    run_started = time.time()
    cold = set(cold_start_pids)
    for node in nodes:
        node.start_protocol(request_sync=node.pid in cold)
    fabric.start_maintenance()
    if swarm is not None:
        # Clients dial in only after the protocol is live: traffic
        # belongs inside the measured window, unlike the preload.
        await swarm.start()
    deadline = run_started + duration
    quiesced = False
    progress_total = -1
    progress_at = run_started
    try:
        while time.time() < deadline:
            if target_blocks is not None and any(
                len(node.mempool.committed_order) >= target_blocks for node in nodes
            ):
                break
            if res.quiesce_after is not None:
                total = sum(len(node.mempool.committed_order) for node in nodes)
                if total > progress_total:
                    progress_total = total
                    progress_at = time.time()
                elif time.time() - progress_at >= res.quiesce_after:
                    # Commit progress has flatlined: end the run instead
                    # of idling out the rest of the window.
                    quiesced = True
                    break
            await asyncio.sleep(0.02)
    finally:
        elapsed = max(time.time() - run_started, 1e-9)
        # Stop the clients before the fabric so late replies don't race
        # writer teardown and in-flight tallies settle where they are.
        if swarm is not None:
            await swarm.stop()
        await fabric.stop()
    return {
        "nodes": [node.summary(elapsed) for node in nodes],
        "window": {
            "elapsed": elapsed,
            "quiesced": quiesced,
            "all_ready": ready,
            "swarm": swarm.summary() if swarm is not None else None,
            "fabric": fabric.summary(),
        },
    }


@dataclass
class LiveCluster:
    """A not-yet-started live deployment compiled from a spec.

    ``run()`` brings the committee up (asyncio tasks, or ``procs`` worker
    subprocesses), lets it serve the preloaded workload until ``duration``
    wall seconds elapse or a node commits ``target_blocks``, and returns
    the same :class:`RunResult` schema the sim runtime emits.
    """

    spec: ScenarioSpec
    duration: Optional[float] = None
    target_blocks: Optional[int] = None
    procs: int = 1
    host: str = "127.0.0.1"
    #: The colocated delivery fast path: same-worker replicas hand frames
    #: directly to each other's handlers.  ``False`` forces even
    #: colocated traffic through loopback TCP sessions — the knob the
    #: fast-path parity tests flip to compare committed prefixes.
    fast_path: bool = True
    #: Pass a precompiled scenario to skip recompiling the spec (the
    #: engine's ``build_scenario_deployment(runtime="live")`` does).
    compiled: Optional[CompiledScenario] = None
    #: Which churn epoch this cluster serves; shifts the config seed the
    #: same way the sim runtime does (see ``compiled_for_epoch``).
    epoch: int = 0
    node_summaries: List[Dict[str, Any]] = field(default_factory=list)
    #: The last serve window's record (elapsed / quiesced / all_ready).
    window_info: Dict[str, Any] = field(default_factory=dict)
    #: Worker supervision report from the last ``--procs`` run.
    worker_report: Dict[str, Any] = field(default_factory=dict)
    #: Live supervisor handle during a ``--procs`` run (tests kill
    #: workers through it to exercise restart).
    worker_supervisor: Optional[WorkerSupervisor] = None

    def __post_init__(self) -> None:
        validate_live_spec(self.spec, procs=self.procs)
        if self.procs < 1:
            raise ValueError("procs must be >= 1")
        if self.epoch and self.procs > 1:
            raise ValueError("multi-epoch clusters run in task mode (procs=1)")
        if self.compiled is None:
            self.compiled = compile_scenario(self.spec)
        elif self.compiled.spec is not self.spec:
            raise ValueError("compiled scenario does not belong to this spec")
        self.compiled = compiled_for_epoch(self.compiled, self.epoch)

    # -- public API --------------------------------------------------------------
    def run(self) -> RunResult:
        """Serve the spec and return a :class:`RunResult`.

        A multi-epoch churn spec (unless this cluster was built for one
        specific ``epoch``) is handed to the :func:`run_live` orchestrator
        so committee re-selection and reward feedback happen exactly as
        they would through ``api.run(runtime="live")`` — a deploy-then-run
        must never silently truncate to epoch 0.
        """
        if self.epoch == 0 and self.spec.churn.epochs > 1:
            return run_live(
                self.spec,
                duration=self.duration,
                target_blocks=self.target_blocks,
                procs=self.procs,
            )
        started = time.perf_counter()
        result, _crashed = self.run_epoch()
        elapsed = time.perf_counter() - started
        epoch_metrics = EpochMetrics(
            epoch=self.epoch,
            committee=tuple(range(self.compiled.config.committee_size)),
            overlap=1.0,
            stake_gini=None,
            result=result,
        )
        return RunResult(
            spec=self.spec,
            epochs=[epoch_metrics],
            attackers=self.compiled.attacker_ids,
            runtime="live",
            wall_clock_seconds=elapsed,
        )

    def run_epoch(self) -> Tuple[ExperimentResult, set]:
        """Bring the committee up, serve the window, summarise.

        Returns the epoch's metrics plus the set of process ids that
        ended the epoch crashed (the ``run_epochs`` orchestrator excludes
        them from reward feedback, exactly like the sim runtime).
        """
        maybe_install_uvloop()
        budget = self.duration if self.duration is not None else self.compiled.epoch_duration
        if self.procs > 1:
            summaries = self._run_subprocesses(budget)
        else:
            summaries = asyncio.run(self._run_tasks(budget))
        self.node_summaries = sorted(summaries, key=lambda s: s["pid"])
        crashed = {s["pid"] for s in self.node_summaries if s["crashed"]}
        return self._experiment_result(), crashed

    # -- task mode ---------------------------------------------------------------
    async def _run_tasks(self, budget: float) -> List[Dict[str, Any]]:
        size = self.compiled.config.committee_size
        committee = Committee(
            _make_signature_scheme(self.compiled.config), size, seed=self.compiled.config.seed
        )
        plan = compile_chaos_plan(self.compiled)
        # One worker hosting the whole committee: zero inter-replica TCP
        # when the fast path is on; with it off, one loopback session to
        # the fabric's own server carries everything (the parity shape).
        placement = Placement.round_robin(size, 1)
        fabric = WorkerFabric(
            0, placement, self.compiled, host=self.host, fast_path=self.fast_path
        )
        for pid in range(size):
            fabric.add_node(
                LiveNode(pid, self.compiled, committee, time.time(), host=self.host, plan=plan)
            )
        port = await fabric.serve()
        fabric.set_worker_addresses({0: (self.host, port)})
        report = await serve_window(
            fabric, None, budget, self.target_blocks, client_shard=(0, 1)
        )
        self.window_info = report["window"]
        return report["nodes"]

    # -- subprocess (--procs) mode -------------------------------------------------
    def _run_subprocesses(self, budget: float) -> List[Dict[str, Any]]:
        # The ports are reserve-and-release probed, so another process can
        # steal one before the worker binds it (a ~1s window behind
        # interpreter startup); on an address-in-use failure the whole
        # round is retried once with freshly probed ports.
        try:
            return self._spawn_workers_once(budget)
        except RuntimeError as exc:
            if "address already in use" not in str(exc).lower():
                raise
            return self._spawn_workers_once(budget)

    def _spawn_workers_once(self, budget: float) -> List[Dict[str, Any]]:
        size = self.compiled.config.committee_size
        procs = min(self.procs, size)
        placement = Placement.round_robin(size, procs)
        # One listening port per *worker*, not per replica: the fabric
        # multiplexes every hosted replica's traffic through it.
        ports = {worker: _free_port(self.host) for worker in range(procs)}
        epoch = time.time() + 1.0  # generous start barrier across processes
        wall_deadline = epoch + budget
        base_config = {
            "spec": self.spec.to_dict(),
            "placement": placement.to_payload(),
            "ports": {str(worker): port for worker, port in ports.items()},
            "host": self.host,
            "fast_path": self.fast_path,
            "target_blocks": self.target_blocks,
        }

        def spawn(pids: Sequence[int], attempt: int) -> SupervisedWorker:
            worker = placement.worker_of(pids[0])
            if attempt == 0:
                worker_epoch, worker_budget, cold = epoch, budget, False
            else:
                # A restarted worker rebinds the same port (the dead
                # incarnation freed it), joins the already-running
                # committee on its own short barrier, serves out the
                # remaining window and cold-start-syncs its replicas.
                worker_epoch = time.time() + 1.0  # interpreter start + bind
                worker_budget = max(wall_deadline - worker_epoch, 0.75)
                cold = True
            payload = json.dumps(
                {
                    **base_config,
                    "worker": worker,
                    "epoch": worker_epoch,
                    "duration": worker_budget,
                    "cold_start": cold,
                    # Worker i hosts client shard i::procs — every worker
                    # a distinct slice, together covering all clients;
                    # restart attempts namespace request ids.
                    "client_shard": [worker, procs],
                    "incarnation": attempt,
                }
            )
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.live_worker"],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=None,
            )
            proc.stdin.write(payload)
            proc.stdin.close()
            # communicate() must not try to flush the already-closed pipe.
            proc.stdin = None
            return SupervisedWorker(pids, proc)

        policy = RestartPolicy(
            max_attempts=self.spec.resilience.worker_restart_attempts,
            backoff=self.spec.resilience.worker_restart_backoff,
        )
        supervisor = WorkerSupervisor(spawn, policy)
        self.worker_supervisor = supervisor
        deadline = time.monotonic() + (epoch - time.time()) + budget + 30.0
        assignments = [list(placement.pids_of(worker)) for worker in range(procs)]
        try:
            succeeded, failed = supervisor.run(assignments, deadline)
        finally:
            self.worker_supervisor = None
        self.worker_report = {
            **supervisor.summary(),
            "failed_pids": sorted(pid for group in failed for pid in group),
        }
        bind_failed = any(
            "address already in use" in event.get("stderr", "").lower()
            for event in supervisor.events
        )
        summaries: List[Dict[str, Any]] = []
        window: Dict[str, Any] = {}
        seen: set = set()
        for worker in succeeded:
            try:
                document = json.loads(worker.out)
            except json.JSONDecodeError:
                continue
            for summary in document["nodes"]:
                if summary["pid"] not in seen:
                    seen.add(summary["pid"])
                    summaries.append(summary)
            record = document.get("window", {})
            window["elapsed"] = max(window.get("elapsed", 0.0), record.get("elapsed", 0.0))
            window["quiesced"] = window.get("quiesced", False) or record.get("quiesced", False)
            window["all_ready"] = window.get("all_ready", True) and record.get("all_ready", True)
            fabric_record = record.get("fabric")
            if fabric_record is not None:
                # First-seen wins per worker, consistent with the per-pid
                # summary dedup (a restarted worker re-reports its slot).
                fabrics = window.setdefault("fabrics", {})
                fabrics.setdefault(str(fabric_record.get("worker", 0)), fabric_record)
            shard_summary = record.get("swarm")
            if shard_summary is not None:
                # Dedup by shard: a restarted worker re-reports its
                # shard, and the highest incarnation's numbers stand
                # (its predecessors' issued requests died with them).
                shards = window.setdefault("swarms", {})
                key = tuple(shard_summary.get("shard", (0, 1)))
                held = shards.get(key)
                if held is None or shard_summary.get("incarnation", 0) >= held.get(
                    "incarnation", 0
                ):
                    shards[key] = shard_summary
        if bind_failed and len(seen) < size:
            # A stolen port keeps failing on restart (same port map); let
            # the outer retry re-probe a fresh set instead of salvaging.
            raise RuntimeError("live worker failed: address already in use")
        for pid in range(size):
            if pid not in seen:
                summaries.append(_salvaged_summary(pid, budget))
        self.window_info = window
        return summaries

    # -- result assembly -----------------------------------------------------------
    def _experiment_result(self) -> ExperimentResult:
        summaries = self.node_summaries
        if not summaries:
            raise RuntimeError("live run produced no node summaries")
        observer = max(summaries, key=lambda s: s["committed_blocks"])
        # Rates use the *serving* window each node measured (protocol start
        # to stop), not the full wall clock — which also covers server
        # bring-up, the start barrier and teardown (and, in procs mode,
        # worker interpreter startup).
        measured = max(s["elapsed"] for s in summaries)
        successful_views = sum(s["views_recorded"] for s in summaries)
        alive = [s for s in summaries if not s["crashed"]] or summaries
        max_view = max(s["current_view"] for s in alive)
        total_views = max(max_view - 1, successful_views)
        failed_fraction = 0.0
        if total_views > 0:
            failed_fraction = max(0.0, 1.0 - successful_views / total_views)
        qc_size_sum = sum(s["qc_size_sum"] for s in summaries)
        qc_count = sum(s["qc_count"] for s in summaries)
        cpu = [min(1.0, s["busy_time"] / measured) for s in summaries]
        transport = {str(s["pid"]): dict(s["transport"]) for s in summaries}
        fabric_report = self._fabric_report()
        message_counters = {
            "messages_sent": sum(s["transport"]["messages_sent"] for s in summaries),
            "messages_delivered": sum(s["transport"]["messages_received"] for s in summaries),
            "messages_dropped": sum(s["transport"]["messages_dropped"] for s in summaries),
            "messages_blocked": sum(s.get("messages_blocked", 0) for s in summaries),
            "bytes_sent": sum(s["transport"]["bytes_sent"] for s in summaries),
            # Fabric routing health, surfaced with the transport counters
            # (not buried in the per-worker fabric records): both stay
            # zero on a clean cluster — nonzero means frames addressed a
            # pid no worker hosts, or session resends re-delivered.
            "frames_unroutable": fabric_report.get("frames_unroutable", 0),
            "frames_duplicate": fabric_report.get("frames_duplicate", 0),
        }
        resilience = {
            "per_replica": {
                str(s["pid"]): s["resilience"] for s in summaries if "resilience" in s
            },
            "cluster": {
                "quiesced": bool(self.window_info.get("quiesced", False)),
                "all_ready": bool(self.window_info.get("all_ready", True)),
                "workers": self.worker_report or {"restarts": 0, "events": []},
                "fabric": fabric_report,
            },
        }
        clients = self._clients_report(summaries, measured)
        observability: Dict[str, Any] = {}
        if self.spec.observe.enabled:
            # Salvaged replicas (worker died before summarising) simply
            # lack the ``observe`` key; both mergers skip falsy entries.
            records = [s.get("observe") or {} for s in summaries]
            trace = merge_trace_snapshots(r.get("trace") for r in records)
            observability = {
                "run_id": trace.get("run_id", ""),
                "enabled": True,
                "trace": trace,
                "metrics": merge_metrics_snapshots(r.get("metrics") for r in records),
            }
        return ExperimentResult(
            config_label=f"live {self.compiled.config.describe()}",
            duration=measured,
            throughput=observer["committed_operations"] / measured if measured > 0 else 0.0,
            latency=LatencyStats.from_dict(observer["latency"]),
            failed_view_fraction=failed_fraction,
            total_views=total_views,
            successful_views=successful_views,
            average_qc_size=qc_size_sum / qc_count if qc_count else 0.0,
            second_chance_inclusions=sum(s["second_chance_inclusions"] for s in summaries),
            cpu_utilisation_mean=sum(cpu) / len(cpu) if cpu else 0.0,
            cpu_utilisation_max=max(cpu) if cpu else 0.0,
            committed_operations=observer["committed_operations"],
            committed_blocks=observer["committed_blocks"],
            message_counters=message_counters,
            transport=transport,
            resilience=resilience,
            clients=clients,
            observability=observability,
        )

    def _fabric_report(self) -> Dict[str, Any]:
        """Fold per-worker fabric records into the cluster transport story.

        ``sessions_total`` against ``naive_pairwise_sessions`` is the
        O(workers²)-vs-O(n²) evidence the scaling benchmark reads straight
        out of telemetry: 200 replicas on 4 workers report 12 directed
        sessions where the per-replica fabric held n·(n−1) = 39 800.
        """
        records: List[Dict[str, Any]] = []
        if self.window_info.get("fabric") is not None:
            records.append(self.window_info["fabric"])
        records.extend((self.window_info.get("fabrics") or {}).values())
        size = self.compiled.config.committee_size
        if not records:  # every worker salvaged — degenerate, but reportable
            return {"workers": 0, "naive_pairwise_sessions": size * (size - 1)}
        return {
            "workers": max(r.get("workers", 1) for r in records),
            "fast_path": all(r.get("fast_path", True) for r in records),
            "sessions_total": sum(r.get("sessions", 0) for r in records),
            "connections_accepted": sum(r.get("connections_accepted", 0) for r in records),
            "fast_path_messages": sum(r.get("fast_path_messages", 0) for r in records),
            "tcp_messages": sum(r.get("tcp_messages", 0) for r in records),
            "heartbeats_sent": sum(r.get("heartbeats_sent", 0) for r in records),
            "reconnects": sum(r.get("reconnects", 0) for r in records),
            "frames_resent": sum(r.get("frames_resent", 0) for r in records),
            "frames_duplicate": sum(r.get("frames_duplicate", 0) for r in records),
            "frames_unroutable": sum(r.get("frames_unroutable", 0) for r in records),
            "session_messages_dropped": sum(
                r.get("session_messages_dropped", 0) for r in records
            ),
            "naive_pairwise_sessions": size * (size - 1),
            "per_worker": sorted(records, key=lambda r: r.get("worker", 0)),
        }

    def _clients_report(
        self, summaries: List[Dict[str, Any]], measured: float
    ) -> Dict[str, Any]:
        """Fold per-node admission counters and per-shard swarm stats.

        Admission counters add across replicas (each replica admits its
        own copy of the broadcast stream); queue depths take the max.
        The swarm side merges every shard's digest and derives the
        client-observed numbers the saturation sweep plots: goodput
        (first-commit replies per measured second) and latency
        percentiles in milliseconds.
        """
        per_node = [s["clients"] for s in summaries if s.get("clients")]
        admission: Dict[str, Any] = {
            key: sum(c.get(key, 0) for c in per_node)
            for key in ("admitted", "duplicate", "dropped", "deferred", "replies_sent")
        }
        admission["peak_pending"] = max(
            (c.get("peak_pending", 0) for c in per_node), default=0
        )
        admission["pending"] = max((c.get("pending", 0) for c in per_node), default=0)
        report: Dict[str, Any] = {
            "mode": "preload" if self.spec.workload.preload else "open-loop",
            "offered_rate": self.spec.workload.rate,
            "admission": admission,
        }
        shards = []
        if self.window_info.get("swarm") is not None:
            shards.append(self.window_info["swarm"])
        shards.extend((self.window_info.get("swarms") or {}).values())
        if shards:
            swarm = merge_summaries(shards)
            report["swarm"] = swarm
            report["goodput"] = swarm["completed"] / measured if measured > 0 else 0.0
            report["latency_ms"] = LatencyDigest.from_dict(swarm["latency"]).summary_ms()
        return report

    # -- convenience ---------------------------------------------------------------
    def committed_order(self, pid: int = 0) -> List[str]:
        """Block ids node ``pid`` committed, in order (after ``run()``)."""
        for summary in self.node_summaries:
            if summary["pid"] == pid:
                return list(summary["committed_order"])
        raise KeyError(f"no summary for pid {pid}")


def _free_port(host: str) -> int:
    """Reserve-and-release an ephemeral port for a worker subprocess."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.bind((host, 0))
        return sock.getsockname()[1]


def run_live(
    spec: ScenarioSpec,
    *,
    quick: bool = False,
    duration: Optional[float] = None,
    target_blocks: Optional[int] = None,
    procs: int = 1,
) -> RunResult:
    """Run ``spec`` on the live asyncio runtime and return its result.

    ``quick`` applies the same :meth:`ScenarioSpec.quick` shrink the CLI
    and CI use and caps the run at 12 committed blocks so a smoke run
    returns in a couple of seconds.  Multi-epoch churn specs re-provision
    the cluster once per epoch (crash-restart of the whole committee)
    through the same :func:`~repro.scenarios.engine.run_epochs`
    orchestrator the sim runtime uses, so committee selection, reward
    feedback and stake drift behave identically; ``duration`` and
    ``target_blocks`` then apply per epoch.
    """
    if quick:
        spec = spec.quick()
        if target_blocks is None:
            target_blocks = 12
    validate_live_spec(spec, procs=procs)
    compiled = compile_scenario(spec)

    def live_epoch(compiled_scenario: CompiledScenario, epoch: int):
        cluster = LiveCluster(
            spec=spec,
            duration=duration,
            target_blocks=target_blocks,
            procs=procs,
            compiled=compiled_scenario,
            epoch=epoch,
        )
        return cluster.run_epoch()

    return run_epochs(spec, compiled, live_epoch, runtime_name="live")
