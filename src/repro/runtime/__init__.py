"""Pluggable execution runtimes for the sans-I/O protocol core.

The protocol state machines in :mod:`repro.consensus` and
:mod:`repro.aggregation` are pure: they only speak the narrow
:class:`~repro.runtime.base.Runtime` interface (now / send / multicast /
set_timer / spawn).  This package provides the substrates:

* :mod:`repro.runtime.sim` — the deterministic discrete-event runtime
  over :mod:`repro.simnet` (the correctness oracle; fixed seeds give
  bit-identical results);
* :mod:`repro.runtime.live` — an asyncio runtime running each replica as
  a task (or ``--procs`` subprocesses) over localhost TCP, framing every
  wire message with the versioned codec in :mod:`repro.runtime.codec`
  and routing it through the scale-out worker fabric in
  :mod:`repro.runtime.fabric` (one multiplexed session per worker pair,
  colocated fast path; socket/loop tuning in :mod:`repro.runtime.net`).
"""

from repro.runtime.base import Clock, Runtime, TimerHandle, Transport
from repro.runtime.sim import SimRuntime

__all__ = [
    "Clock",
    "Runtime",
    "SimRuntime",
    "TimerHandle",
    "Transport",
]
