"""The narrow runtime interface the sans-I/O protocol core runs against.

The consensus state machines (:class:`~repro.consensus.replica.HotStuffReplica`
and every :class:`~repro.aggregation.base.Aggregator`) perform no I/O of
their own: everything they need from the outside world is five verbs —
*what time is it* (:attr:`Runtime.now`), *send/multicast a message*
(:meth:`Runtime.send` / :meth:`Runtime.multicast`), *call me back later*
(:meth:`Runtime.set_timer` / :meth:`Runtime.call_at`) and *run this soon*
(:meth:`Runtime.spawn`).  A :class:`Runtime` implementation supplies those
verbs for one execution substrate:

* :class:`repro.runtime.sim.SimRuntime` adapts the deterministic
  discrete-event :mod:`repro.simnet` pair (``Simulator`` + ``Network``) —
  the correctness oracle, bit-identical to the pre-refactor behaviour;
* :class:`repro.runtime.live.LiveRuntime` runs each replica as an asyncio
  task (or subprocess) exchanging codec-framed messages over localhost
  TCP — the same protocol objects actually serving traffic.

Keeping the surface this small is what makes the two interchangeable: a
protocol object never imports an event loop, a socket or the simulator.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Iterable, Protocol, runtime_checkable

__all__ = ["Clock", "Runtime", "TimerHandle", "Transport"]


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable handle returned by :meth:`Runtime.set_timer`."""

    def cancel(self) -> None:  # pragma: no cover - protocol
        ...

    @property
    def cancelled(self) -> bool:  # pragma: no cover - protocol
        ...


class Clock(ABC):
    """A source of the current time (virtual or wall-clock seconds)."""

    @property
    @abstractmethod
    def now(self) -> float:
        """Current time in seconds since the run started."""


class Transport(ABC):
    """Message delivery between processes addressed by integer id."""

    @abstractmethod
    def send(self, src: int, dst: int, message: Any, size_bytes: int = 0) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` (best effort)."""

    def multicast(
        self, src: int, destinations: Iterable[int], message: Any, size_bytes: int = 0
    ) -> None:
        for destination in destinations:
            self.send(src, destination, message, size_bytes)

    def counters(self) -> Dict[str, int]:
        """Aggregate transport counters (sent / delivered / dropped /
        blocked / bytes), counted once at the framing layer."""
        return {}

    def per_replica_counters(self) -> Dict[int, Dict[str, int]]:
        """Per-process transport counters, keyed by process id.

        Both runtimes emit the same schema so ``RunResult.transport`` is
        comparable across substrates: ``messages_sent``,
        ``messages_received``, ``bytes_sent``, ``messages_dropped`` and
        ``messages_delayed`` (the harness merges in ``restarts`` from
        process state when summarising).
        """
        return {}


class Runtime(Clock, Transport):
    """Everything a protocol process may ask of its execution substrate.

    Subclasses provide the five I/O verbs plus process registration.  The
    :attr:`models_cpu` flag tells :class:`~repro.simnet.process.Process`
    whether CPU costs are *simulated* (message deliveries queue behind
    charged CPU time, as in the discrete-event runtime) or *real* (the
    live runtime, where crypto work takes actual wall-clock time and
    charged model costs are only accumulated for utilisation reporting).
    """

    #: Whether charged CPU time delays subsequent deliveries (sim) or is
    #: only recorded for reporting (live, where the work is real).
    models_cpu: bool = True

    #: Short name used in results ("sim" / "live").
    name: str = "abstract"

    @abstractmethod
    def register(self, process: Any) -> None:
        """Attach ``process`` so it can receive messages."""

    @abstractmethod
    def set_timer(self, delay: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` after ``delay`` seconds; cancellable."""

    @abstractmethod
    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> TimerHandle:
        """Run ``callback(*args)`` at absolute time ``time`` (>= now)."""

    def spawn(self, callback: Callable[..., None], *args: Any) -> None:
        """Run ``callback(*args)`` as soon as possible (next tick)."""
        self.set_timer(0.0, callback, *args)

    def offload(self, fn: Callable[[], Any], callback: Callable[[Any], None]) -> None:
        """Run ``fn()`` off the hot path and hand its result to ``callback``.

        The escape hatch for CPU-heavy protocol work (batched signature
        verification, pairings).  The default — used by the deterministic
        sim runtime — executes ``fn`` synchronously and invokes
        ``callback(result)`` before returning, so simulated runs stay
        reproducible.  The live runtime overrides this to run ``fn`` on a
        worker-pool thread and deliver ``callback`` back on the event
        loop, so the loop never blocks on the computation.  Callers must
        not assume the callback has run when ``offload`` returns.

        Args:
            fn: Zero-argument computation to execute.
            callback: Receives ``fn``'s return value exactly once.
        """
        callback(fn())
