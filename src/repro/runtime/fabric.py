"""The scale-out fabric: worker placement and multiplexed transport.

Before this layer, every live replica owned a TCP server and a
supervised :class:`~repro.resilience.session.PeerSession` per peer — an
O(n²) connection fabric whose session count made paper-scale committees
(n=200) unreachable long before the protocol itself was the bottleneck.
The fabric rebuilds that transport so cluster cost scales with
*workers*, not *replicas*:

* :class:`Placement` shards the n replicas of a committee across w
  workers (task mode is the degenerate w=1 placement hosting everything);
* each worker runs one :class:`WorkerFabric` — a single TCP server plus
  one multiplexed :class:`~repro.resilience.session.PeerSession` per
  *remote worker*, through which every hosted replica's traffic travels
  wrapped in a :class:`~repro.resilience.messages.Routed` ``(src, dst)``
  header.  The receiving fabric demultiplexes by ``dst`` against its
  table of hosted nodes.  200 replicas on 4 workers need 12 directed
  sessions instead of ~40 000;
* replicas hosted by the *same* worker skip the wire entirely: the
  **colocated fast path** hands the message object straight to the
  destination node on the next loop tick — no codec, no loopback TCP —
  while transport counters and the chaos shaping/partition hooks (which
  run upstream, in ``LiveNode.transport_send``) behave exactly as on the
  TCP path, so a fixed spec+seed finalizes identical committed prefixes
  either way (``fast_path=False`` forces even colocated traffic through
  a loopback session, which is what the parity tests compare against).

Failure detection moves to the same two-level shape.  Cross-worker
liveness is per *link*: any frame arriving from a remote worker is a
liveness observation for its ``src`` replica, and idle worker-pair links
carry a single worker-level heartbeat whose receipt touches every
replica the remote worker hosts — so per-replica phi-accrual suspicion
timelines (what the recovery telemetry and tests pin) survive the
multiplexing without per-replica heartbeat traffic.  Colocated liveness
is direct observation: the fabric's maintenance tick touches every
non-crashed local pair (unless a chaos partition blocks the directed
link), so a scheduled in-process crash still raises — and its recovery
clears — suspicions exactly as it did with per-replica sessions.

Client connections are per worker too: an open-loop swarm dials each
*worker*, and the fabric fans every ``ClientRequest`` to all hosted
replicas' admission control — the same replicated-mempool semantics as
the old one-connection-per-replica model at 1/hosted the connection
count.  Commit replies from every hosted replica share the worker
connection; the client's first-reply-wins accounting is unchanged.
"""

from __future__ import annotations

import asyncio
import logging
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.clients.messages import ClientHello, ClientRequest
from repro.crypto.params import TOY_PARAMS
from repro.resilience.messages import (
    Heartbeat,
    Routed,
    SessionAck,
    SessionEnvelope,
    SessionHello,
)
from repro.resilience.session import PeerSession
from repro.runtime.codec import FrameBatch, PreEncoded, WireCodec
from repro.runtime.net import tune_writer

__all__ = ["Placement", "WorkerFabric"]

logger = logging.getLogger("repro.runtime.fabric")

#: Frame read limit, matching the live runtime's.
_READ_LIMIT = 16 * 1024 * 1024

#: Most messages flushed as one wire envelope by a worker-pair session.
_MAX_WIRE_BATCH = 64


@dataclass(frozen=True)
class Placement:
    """Which worker hosts which replicas: ``workers[i]`` is worker i's pids.

    Immutable and payload-round-trippable, so the cluster computes one
    placement and ships it to every ``--procs`` worker subprocess; all
    parties then agree on where each pid lives without negotiation.
    """

    workers: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "workers", tuple(tuple(pids) for pids in self.workers)
        )
        if not self.workers:
            raise ValueError("a placement needs at least one worker")
        owner: Dict[int, int] = {}
        for worker, pids in enumerate(self.workers):
            for pid in pids:
                if pid in owner:
                    raise ValueError(f"pid {pid} placed on two workers")
                owner[pid] = worker
        if not owner:
            raise ValueError("a placement needs at least one replica")
        object.__setattr__(self, "_owner", owner)

    @classmethod
    def round_robin(cls, size: int, workers: int) -> "Placement":
        """Interleave ``size`` pids over ``min(workers, size)`` workers.

        Worker w hosts pids ``w :: workers`` — the same deal the live
        runtime always used for ``--procs``, so consecutive pids (which
        lead consecutive views under round-robin leadership) land on
        different workers and no single worker hosts a leadership run.
        """
        if size < 1:
            raise ValueError("committee size must be >= 1")
        workers = max(1, min(workers, size))
        return cls(tuple(tuple(range(size))[w::workers] for w in range(workers)))

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def num_replicas(self) -> int:
        return len(self._owner)

    def worker_of(self, pid: int) -> int:
        """The worker hosting ``pid`` (raises ``KeyError`` for strangers)."""
        return self._owner[pid]

    def hosts(self, pid: int) -> bool:
        return pid in self._owner

    def pids_of(self, worker: int) -> Tuple[int, ...]:
        return self.workers[worker]

    def to_payload(self) -> List[List[int]]:
        """JSON-safe form for the worker subprocess config."""
        return [list(pids) for pids in self.workers]

    @classmethod
    def from_payload(cls, payload: Sequence[Sequence[int]]) -> "Placement":
        return cls(tuple(tuple(int(pid) for pid in pids) for pids in payload))


class WorkerFabric:
    """One worker's half of the multiplexed transport (see module docstring).

    Owns the worker's TCP server, the demux table of hosted
    :class:`~repro.runtime.live.LiveNode` objects, one outbound
    :class:`PeerSession` per remote worker, the worker-level client
    connections, and the maintenance loop feeding the hosted nodes'
    failure detectors.  Nodes talk to it through exactly two entry
    points: :meth:`dispatch` (outbound, after chaos shaping) and
    :meth:`broadcast_client` (commit replies).
    """

    def __init__(
        self,
        worker: int,
        placement: Placement,
        compiled: Any,
        host: str = "127.0.0.1",
        fast_path: bool = True,
    ) -> None:
        self.worker = worker
        self.placement = placement
        self.compiled = compiled
        self.host = host
        self.fast_path = fast_path
        self.resilience = compiled.spec.resilience
        params = TOY_PARAMS if compiled.config.signature_scheme == "bls" else None
        self.codec = WireCodec(curve_params=params)
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self.port: Optional[int] = None
        self.nodes: Dict[int, Any] = {}  # pid -> hosted LiveNode (demux table)
        self.worker_addresses: Dict[int, Tuple[str, int]] = {}
        self.sessions: Dict[int, PeerSession] = {}  # remote worker -> link
        self._recv_seq: Dict[int, int] = {}  # per-worker envelope dedup floor
        self._client_writers: List[asyncio.StreamWriter] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._tasks: List[asyncio.Task] = []
        self._maintenance_task: Optional[asyncio.Task] = None
        self._stopping = False
        self._last_beat: Dict[int, float] = {}  # loop-time of last beat per link
        self._last_observed: Dict[int, float] = {}  # loop-time of last worker vouch
        self._heartbeat_seq = 0
        # -- telemetry --------------------------------------------------------
        self.connections_accepted = 0
        self.fast_path_messages = 0  # colocated deliveries that skipped the wire
        self.tcp_messages = 0  # route headers handed to a session
        self.frames_duplicate = 0
        self.frames_unroutable = 0  # routed to a pid this worker does not host
        self.heartbeats_sent = 0
        self.session_messages_dropped = 0  # resend-buffer overflow, all links

    # -- wiring ----------------------------------------------------------------
    def add_node(self, node: Any) -> None:
        """Register a hosted replica in the demux table."""
        if not self.placement.hosts(node.pid):
            raise ValueError(f"pid {node.pid} is not placed on any worker")
        if self.placement.worker_of(node.pid) != self.worker:
            raise ValueError(f"pid {node.pid} belongs to another worker")
        self.nodes[node.pid] = node
        node.fabric = self
        if self.loop is not None:
            node.loop = self.loop

    @property
    def node_list(self) -> List[Any]:
        return sorted(self.nodes.values(), key=lambda n: n.pid)

    def set_worker_addresses(self, addresses: Dict[int, Tuple[str, int]]) -> None:
        self.worker_addresses = dict(addresses)

    # -- outbound --------------------------------------------------------------
    def routes(self, dst: int) -> bool:
        """Whether ``dst`` is a known replica anywhere in the placement."""
        return self.placement.hosts(dst)

    def wire_bound(self, dst: int) -> bool:
        """Whether a dispatch to ``dst`` would be encoded onto a session.

        The multicast pre-encode optimisation keys off this: encoding is
        worth paying once only when two or more destinations actually
        cross the codec.
        """
        if not self.placement.hosts(dst):
            return False
        return not self.fast_path or self.placement.worker_of(dst) != self.worker

    def dispatch(self, src: int, dst: int, message: Any) -> None:
        """Route one protocol message from hosted replica ``src`` to ``dst``.

        Called by ``LiveNode.transport_send`` *after* chaos partition
        suppression and link shaping, so both delivery paths see
        identical traffic.  Colocated destinations take the fast path —
        the message object lands on the destination node's handler on
        the next loop tick, unwrapped from any :class:`PreEncoded`
        multicast body, with no codec in between.  Everything else is
        sealed in a :class:`Routed` header and multiplexed onto the
        destination worker's session.
        """
        if self._stopping:
            return
        target = self.placement.worker_of(dst)
        if target == self.worker and self.fast_path:
            node = self.nodes.get(dst)
            if node is None:  # placed here but not (yet) registered
                self.frames_unroutable += 1
                return
            self.fast_path_messages += 1
            payload = message.message if type(message) is PreEncoded else message
            # call_soon, not a direct call: fast-path deliveries keep the
            # sim/live invariant that sends are never re-entrant.
            self.loop.call_soon(node.receive_from_peer, src, payload)
            return
        self.tcp_messages += 1
        self._session_for(target).send(Routed(src, dst, message))

    def _session_for(self, target: int) -> PeerSession:
        session = self.sessions.get(target)
        if session is None:
            host, port = self.worker_addresses[target]
            res = self.resilience
            session = PeerSession(
                self.worker,
                target,
                host,
                port,
                self.codec,
                max_batch=_MAX_WIRE_BATCH,
                resend_buffer=res.resend_buffer,
                reconnect_base=res.reconnect_base,
                reconnect_cap=res.reconnect_cap,
                on_drop=self._on_session_drop,
                on_reconnect=lambda target=target: self._on_session_reconnect(target),
                read_limit=_READ_LIMIT,
            )
            self.sessions[target] = session
            session.start()
        return session

    def _on_session_drop(self, count: int) -> None:
        self.session_messages_dropped += count

    def _on_session_reconnect(self, target: int) -> None:
        """Trace a worker-pair link recovery.

        The link is worker-level, so the event is recorded once — on the
        lowest hosted pid with a tracer — rather than once per hosted
        replica (an n=50 worker would otherwise spam 50 identical rows).
        """
        for node in self.node_list:
            tracer = getattr(node, "tracer", None)
            if tracer is not None:
                tracer.emit("reconnect", node.pid, node.now, peer_worker=target)
                return

    def open_sessions(self) -> None:
        """Eagerly dial every worker this fabric will ever talk to.

        With the fast path disabled the loopback session to this
        worker's own server is a real link too, and joins the readiness
        barrier like any other.
        """
        for target in self.worker_addresses:
            if target != self.worker or not self.fast_path:
                self._session_for(target)

    async def wait_ready(self, timeout: float) -> bool:
        """True once every worker-pair session has connected at least once.

        Task mode with the fast path on has no sessions at all and is
        trivially ready — the whole barrier collapses to a no-op.
        """
        self.open_sessions()
        deadline = self.loop.time() + timeout
        for session in list(self.sessions.values()):
            remaining = deadline - self.loop.time()
            if remaining <= 0 or not await session.wait_ready(remaining):
                return False
        return True

    # -- inbound (server side) --------------------------------------------------
    async def serve(self, port: int = 0) -> int:
        """Start this worker's TCP server; returns the bound port."""
        self.loop = asyncio.get_running_loop()
        for node in self.nodes.values():
            node.loop = self.loop
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, port, limit=_READ_LIMIT
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._tasks.append(task)
        self.connections_accepted += 1
        tune_writer(writer)
        try:
            hello = self.codec.decode(await self._read_frame(reader))
            if isinstance(hello, ClientHello):
                await self._serve_client(reader, writer)
                return
            if isinstance(hello, SessionHello):
                peer_worker = hello.pid
            elif isinstance(hello, int):  # pre-session peers (bare tests)
                peer_worker = hello
            else:
                return
            while True:
                decoded = self.codec.decode(await self._read_frame(reader))
                if isinstance(decoded, Heartbeat):
                    # Worker-level liveness beacon: one frame vouches for
                    # every replica the remote worker hosts.
                    self._observe_worker(decoded.pid)
                    continue
                if isinstance(decoded, SessionEnvelope):
                    # A busy link never carries explicit heartbeats, but
                    # any envelope proves the remote *worker* is alive —
                    # and detection is worker-granular, so it vouches for
                    # every replica that worker hosts, not just the
                    # members' senders (a replica that never personally
                    # addresses us must not accrue phi).  Rate-limited to
                    # heartbeat cadence to stay off the envelope hot path.
                    loop_now = self.loop.time() if self.loop is not None else 0.0
                    interval = self.resilience.heartbeat_interval / 2
                    if loop_now - self._last_observed.get(peer_worker, -1e9) >= interval:
                        self._last_observed[peer_worker] = loop_now
                        self._observe_worker(peer_worker)
                    last = self._recv_seq.get(peer_worker, 0)
                    if decoded.seq <= last:
                        # Resent after reconnect but already delivered:
                        # re-ack (the ack that would have advanced the
                        # sender's floor may have died with the link).
                        self.frames_duplicate += 1
                        writer.write(self.codec.frame(SessionAck(last)))
                        await writer.drain()
                        continue
                    self._recv_seq[peer_worker] = decoded.seq
                    self._deliver_members(decoded.messages)
                    writer.write(self.codec.frame(SessionAck(decoded.seq)))
                    await writer.drain()
                    continue
                members = (
                    decoded.messages if isinstance(decoded, FrameBatch) else (decoded,)
                )
                self._deliver_members(members)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            return
        except asyncio.CancelledError:
            # Shutdown path: completing normally (instead of re-raising)
            # keeps asyncio's stream-protocol completion callback quiet.
            return
        finally:
            writer.close()

    def _deliver_members(self, members: Iterable[Any]) -> None:
        """Demultiplex routed members onto the hosted destination nodes."""
        for member in members:
            if not isinstance(member, Routed):
                self.frames_unroutable += 1
                continue
            node = self.nodes.get(member.dst)
            if node is None:
                self.frames_unroutable += 1
                continue
            node.receive_from_peer(member.src, member.message)

    def _observe_worker(self, remote_worker: int) -> None:
        """Fan a worker heartbeat out to per-replica detector observations."""
        try:
            vouched = self.placement.pids_of(remote_worker)
        except IndexError:
            return
        for node in self.nodes.values():
            if node.replica.crashed:
                continue  # a down replica observes nothing
            now = node.now
            for pid in vouched:
                node.detector.heartbeat(pid, now)

    @staticmethod
    async def _read_frame(reader: asyncio.StreamReader) -> Optional[bytes]:
        header = await reader.readexactly(4)
        size = int.from_bytes(header, "big")
        if size > _READ_LIMIT:
            raise ConnectionError(f"oversized frame ({size} bytes)")
        return await reader.readexactly(size)

    # -- client connections ------------------------------------------------------
    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Pump one worker-level client connection through admission control.

        Every :class:`ClientRequest` fans out to all hosted replicas —
        the same replicated-mempool broadcast the per-replica connection
        model produced, one connection per worker instead of one per
        replica.  Client frames never reach the protocol core and stay
        out of the per-replica transport counters.
        """
        self._client_writers.append(writer)
        try:
            while True:
                decoded = self.codec.decode(await self._read_frame(reader))
                members = (
                    decoded.messages if isinstance(decoded, FrameBatch) else (decoded,)
                )
                for message in members:
                    if isinstance(message, ClientRequest):
                        for node in self.nodes.values():
                            node._admit_client_request(message, writer)
        finally:
            if writer in self._client_writers:
                self._client_writers.remove(writer)

    def broadcast_client(self, frame: bytes) -> None:
        """Write one pre-framed reply batch to every client connection.

        Plain ``write`` without drain on purpose: replies are tens of
        bytes and must never let a slow client connection backpressure
        the consensus hot path.
        """
        for writer in list(self._client_writers):
            if not writer.is_closing():
                writer.write(frame)

    @property
    def has_clients(self) -> bool:
        return bool(self._client_writers)

    # -- maintenance (heartbeats + failure detection) ----------------------------
    def start_maintenance(self) -> None:
        if self._maintenance_task is None and self.loop is not None:
            self._maintenance_task = self.loop.create_task(self._maintenance())
            self._tasks.append(self._maintenance_task)

    async def _maintenance(self) -> None:
        """Periodic tick: colocated observation, suspicion evaluation, and
        worker-level heartbeats on idle cross-worker links."""
        res = self.resilience
        tick = res.heartbeat_interval / 2
        while not self._stopping:
            await asyncio.sleep(tick)
            local = list(self.nodes.values())
            any_alive = False
            for observer in local:
                if observer.replica.crashed:
                    continue  # a down replica neither beats nor observes
                any_alive = True
                now = observer.now
                for peer in local:
                    # Colocated direct observation: an alive same-worker
                    # peer is *seen*, unless a chaos partition blocks the
                    # directed link (live partitions must still raise
                    # suspicion like they did over loopback TCP).
                    if (
                        peer.pid == observer.pid
                        or peer.replica.crashed
                        or observer.chaos.blocked(peer.pid)
                    ):
                        continue
                    observer.detector.heartbeat(peer.pid, now)
                observer.note_suspicions(observer.detector.evaluate(now))
            if not any_alive:
                continue
            loop_now = self.loop.time()
            for target, session in self.sessions.items():
                if not session.connected:
                    continue
                if loop_now - session.last_payload_at < res.heartbeat_interval:
                    continue  # recent protocol traffic doubles as liveness
                if loop_now - self._last_beat.get(target, -1e9) < res.heartbeat_interval:
                    continue
                self._heartbeat_seq += 1
                session.send_control(Heartbeat(self.worker, self._heartbeat_seq))
                self._last_beat[target] = loop_now
                self.heartbeats_sent += 1

    # -- lifecycle ---------------------------------------------------------------
    async def stop(self) -> None:
        self._stopping = True
        for node in self.nodes.values():
            node._stopping = True
        # Refuse new connections before touching tasks: a still-running
        # peer worker's session may dial in at any moment during shutdown.
        if self._server is not None:
            self._server.close()
        for session in list(self.sessions.values()):
            await session.stop()
        # Cancel in rounds: a handler task that registered between one
        # round's cancel pass and its await pass would otherwise be
        # awaited *uncancelled* — and a live peer pumping frames into it
        # would block this fabric's shutdown forever.
        while self._tasks:
            doomed = self._tasks
            self._tasks = []
            for task in doomed:
                task.cancel()
            for task in doomed:
                try:
                    await task
                except asyncio.CancelledError:
                    pass
                except Exception as exc:  # teardown anomaly: log, don't hide
                    logger.warning(
                        "worker %d teardown task raised %r", self.worker, exc
                    )
        if self._server is not None:
            await self._server.wait_closed()

    # -- reporting ----------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-safe fabric stats: the O(workers²) evidence in telemetry."""
        return {
            "worker": self.worker,
            "workers": self.placement.num_workers,
            "hosted_replicas": len(self.nodes),
            "fast_path": self.fast_path,
            "sessions": len(self.sessions),
            "connections_accepted": self.connections_accepted,
            "fast_path_messages": self.fast_path_messages,
            "tcp_messages": self.tcp_messages,
            "frames_duplicate": self.frames_duplicate,
            "frames_unroutable": self.frames_unroutable,
            "heartbeats_sent": self.heartbeats_sent,
            "reconnects": sum(s.reconnects for s in self.sessions.values()),
            "frames_resent": sum(s.frames_resent for s in self.sessions.values()),
            "session_messages_dropped": self.session_messages_dropped,
        }
