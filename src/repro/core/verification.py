"""Independent verification of quorum certificates and reward claims.

Iniva's reward scheme is only trustworthy because every process can
re-derive it from public data: the aggregation tree is deterministic, the
QC's signature multiplicities encode whether a vote arrived through tree
aggregation (multiplicity 2) or through a 2ND-CHANCE fallback
(multiplicity 1), and the reward function is a pure function of both.
Section V-B of the paper states that a leader reporting wrong
multiplicities, or a wrong reward distribution, is considered faulty.

This module implements that verification path:

* :func:`verify_quorum_certificate` — cryptographic and structural checks
  of a QC against the view's aggregation tree.
* :func:`audit_rewards` — recompute the reward distribution and diff it
  against the payouts claimed by a leader.
* :class:`BlockAuditor` — the convenience wrapper a replica (or light
  client) would run for every block before accepting its reward claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.consensus.block import QuorumCertificate
from repro.core.rewards import (
    RewardDistribution,
    RewardParams,
    compute_rewards,
    validate_multiplicities,
)
from repro.crypto.keys import Committee
from repro.tree.overlay import AggregationTree

__all__ = [
    "CertificateVerdict",
    "RewardAuditReport",
    "BlockAuditor",
    "verify_quorum_certificate",
    "audit_rewards",
]


@dataclass(frozen=True)
class CertificateVerdict:
    """The outcome of verifying one quorum certificate.

    Attributes:
        valid: True when the certificate passes every check.
        violations: Human-readable reasons for rejection (empty if valid).
        included: Processes whose signatures the certificate contains.
        aggregated: Processes included through tree aggregation
            (leaf multiplicity 2, or an internal/root position).
        second_chance: Leaf processes included through the 2ND-CHANCE
            fallback (multiplicity 1) — these forfeit part of their reward.
    """

    valid: bool
    violations: tuple
    included: frozenset
    aggregated: frozenset
    second_chance: frozenset

    @property
    def second_chance_count(self) -> int:
        return len(self.second_chance)


def _classify_inclusion(
    tree: AggregationTree, multiplicities: Mapping[int, int]
) -> tuple[Set[int], Set[int], Set[int]]:
    included = {pid for pid in tree.processes if multiplicities.get(pid, 0) > 0}
    second_chance = {
        pid
        for pid in tree.leaves
        if multiplicities.get(pid, 0) == 1
    }
    aggregated = included - second_chance
    return included, aggregated, second_chance


def verify_quorum_certificate(
    qc: QuorumCertificate,
    tree: AggregationTree,
    committee: Committee,
    quorum_size: Optional[int] = None,
    verify_signature: bool = True,
) -> CertificateVerdict:
    """Check a QC cryptographically and structurally against its tree.

    Args:
        qc: The certificate under scrutiny.
        tree: The deterministic aggregation tree of the QC's view.
        committee: The committee registry holding every public key.
        quorum_size: Minimum number of distinct signers; defaults to the
            committee's ``(1 - f) n`` quorum.
        verify_signature: Skip the (comparatively expensive) aggregate
            verification when False — used by analyses that only care
            about the structural checks.
    """
    violations: List[str] = []
    multiplicities = dict(qc.aggregate.multiplicities)
    included, aggregated, second_chance = _classify_inclusion(tree, multiplicities)

    required = quorum_size if quorum_size is not None else committee.quorum_size()
    if len(included) < required:
        violations.append(
            f"certificate contains {len(included)} signers, quorum requires {required}"
        )

    unknown = set(multiplicities) - set(tree.processes)
    if unknown:
        violations.append(f"certificate contains signers outside the committee: {sorted(unknown)}")

    if qc.collector != tree.root:
        violations.append(
            f"certificate collector {qc.collector} is not the tree root {tree.root}"
        )

    violations.extend(validate_multiplicities(tree, multiplicities))

    if verify_signature and not committee.verify_aggregate(qc.aggregate, qc.signing_payload()):
        violations.append("aggregate signature does not verify against the claimed multiplicities")

    return CertificateVerdict(
        valid=not violations,
        violations=tuple(violations),
        included=frozenset(included),
        aggregated=frozenset(aggregated),
        second_chance=frozenset(second_chance),
    )


@dataclass
class RewardAuditReport:
    """Result of re-deriving a block's reward distribution.

    Attributes:
        consistent: True when the claimed payouts match the recomputation.
        discrepancies: ``process id -> (claimed, recomputed)`` for every
            process whose payout deviates beyond the tolerance.
        recomputed: The distribution derived independently from the QC.
        leader_faulty: True when the deviation is attributable to the
            leader (wrong multiplicities or wrong payout maths), which per
            the paper marks the leader as faulty.
    """

    consistent: bool
    discrepancies: Dict[int, tuple] = field(default_factory=dict)
    recomputed: Optional[RewardDistribution] = None
    leader_faulty: bool = False
    notes: List[str] = field(default_factory=list)


def audit_rewards(
    tree: AggregationTree,
    multiplicities: Mapping[int, int],
    claimed_payouts: Mapping[int, float],
    params: Optional[RewardParams] = None,
    tolerance: float = 1e-9,
) -> RewardAuditReport:
    """Recompute the reward distribution and compare it with a leader's claim."""
    params = params or RewardParams()
    structural = validate_multiplicities(tree, multiplicities)
    recomputed = compute_rewards(tree, multiplicities, params)

    discrepancies: Dict[int, tuple] = {}
    for pid in tree.processes:
        claimed = float(claimed_payouts.get(pid, 0.0))
        expected = recomputed.reward_of(pid)
        if abs(claimed - expected) > tolerance:
            discrepancies[pid] = (claimed, expected)
    extra_claims = set(claimed_payouts) - set(tree.processes)
    notes = list(structural)
    if extra_claims:
        notes.append(f"payouts claimed for non-members: {sorted(extra_claims)}")

    total_claimed = sum(float(amount) for amount in claimed_payouts.values())
    if abs(total_claimed - params.total_reward) > max(tolerance, 1e-6):
        notes.append(
            f"claimed payouts sum to {total_claimed:.6f}, expected {params.total_reward:.6f}"
        )

    consistent = not discrepancies and not notes
    return RewardAuditReport(
        consistent=consistent,
        discrepancies=discrepancies,
        recomputed=recomputed,
        leader_faulty=bool(discrepancies or structural or extra_claims),
        notes=notes,
    )


class BlockAuditor:
    """Re-derives and checks QCs and reward claims for a fixed committee."""

    def __init__(
        self,
        committee: Committee,
        params: Optional[RewardParams] = None,
        fault_fraction: float = 1 / 3,
    ) -> None:
        self.committee = committee
        self.params = params or RewardParams()
        self.fault_fraction = fault_fraction

    def verify_certificate(
        self, qc: QuorumCertificate, tree: AggregationTree, verify_signature: bool = True
    ) -> CertificateVerdict:
        return verify_quorum_certificate(
            qc,
            tree,
            self.committee,
            quorum_size=self.committee.quorum_size(self.fault_fraction),
            verify_signature=verify_signature,
        )

    def audit_block(
        self,
        qc: QuorumCertificate,
        tree: AggregationTree,
        claimed_payouts: Mapping[int, float],
        verify_signature: bool = True,
    ) -> RewardAuditReport:
        """Full audit: certificate checks first, then the reward recomputation."""
        verdict = self.verify_certificate(qc, tree, verify_signature=verify_signature)
        report = audit_rewards(
            tree, dict(qc.aggregate.multiplicities), claimed_payouts, self.params
        )
        if not verdict.valid:
            report.consistent = False
            report.leader_faulty = True
            report.notes.extend(verdict.violations)
        return report

    def expected_rewards(
        self, qc: QuorumCertificate, tree: AggregationTree
    ) -> RewardDistribution:
        """The distribution an honest leader must publish for this QC."""
        return compute_rewards(tree, dict(qc.aggregate.multiplicities), self.params)
