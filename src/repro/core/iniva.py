"""The Iniva vote aggregation protocol (Algorithm 1 of the paper).

Iniva extends plain tree aggregation with two fallback mechanisms that
make it *inclusive* without redundant work in the fault-free case:

* **ACK** — after an internal node forwards its aggregate to the root it
  acknowledges its children with that aggregate.  The ack doubles as proof
  of inclusion and as the safe reply to later 2ND-CHANCE messages
  (answering with an individual signature would let a malicious collector
  exclude the replier's siblings, so processes answer with the aggregate).

* **2ND-CHANCE** — the root (the next leader) contacts every process whose
  signature is still missing, either once it holds a quorum or when its
  aggregation timer fires.  Replies are folded into the final QC before
  the second-chance timer ``δ`` expires.

Together with the indivisibility of the multi-signature scheme this
reduces the probability of a targeted 0-collateral vote omission from
``m`` to ``m²`` (Theorem 4) while guaranteeing Inclusiveness within
``7Δ`` (Theorem 2).
"""

from __future__ import annotations

from typing import Any, List, Union

from repro.aggregation.base import register_aggregator
from repro.aggregation.messages import (
    AckMessage,
    SecondChanceMessage,
    SecondChanceReply,
)
from repro.aggregation.tree_agg import TreeAggregator
from repro.consensus.block import Block
from repro.crypto.multisig import AggregateSignature, SignatureShare
from repro.tree.overlay import AggregationTree

__all__ = ["InivaAggregator"]


@register_aggregator
class InivaAggregator(TreeAggregator):
    """Tree aggregation with ACK confirmations and 2ND-CHANCE fallback."""

    name = "iniva"
    uses_fallback_paths = True

    # -- message handling -------------------------------------------------------
    def handle(self, sender: int, message: Any) -> bool:
        if isinstance(message, AckMessage):
            self._on_ack(sender, message)
            return True
        if isinstance(message, SecondChanceMessage):
            self._on_second_chance(sender, message)
            return True
        if isinstance(message, SecondChanceReply):
            self._on_second_chance_reply(sender, message)
            return True
        return super().handle(sender, message)

    # -- internal node: acknowledge aggregated children ---------------------------
    def _after_internal_send(
        self, block: Block, aggregate: AggregateSignature, aggregated_children: List[int]
    ) -> None:
        ack = AckMessage(block_id=block.block_id, view=block.view, aggregate=aggregate)
        self.replica.multicast(aggregated_children, ack, size_bytes=ack.size_bytes)

    # -- child: store the parent's ack as proof of inclusion ------------------------
    def _on_ack(self, sender: int, message: AckMessage) -> None:
        state = self._state.get(message.block_id)
        if state is None or state["tree"] is None:
            return
        tree: AggregationTree = state["tree"]
        if tree.is_root(self.process_id):
            return
        if tree.parent(self.process_id) != sender:
            return
        aggregate = message.aggregate
        if self.process_id not in aggregate:
            # An ack that does not include our own signature is useless as a
            # 2ND-CHANCE reply; ignore it (Algorithm 1, line 30 asserts validity).
            return
        # The ack is stored without an eager pairing check: it is only ever
        # replayed to the root, which verifies it before inclusion, so a bad
        # ack cannot do damage and the common case saves a verification.
        state["parent_ack"] = aggregate

    # -- root: quorum / timeout → give missing processes a second chance --------------
    def _root_on_quorum(self, block: Block) -> None:
        state = self._collection(block)
        if not state["second_chance_sent"]:
            self._send_second_chances(block)
        elif state.get("second_chance_expired"):
            # The fallback window is over and we (now) hold a quorum:
            # finalise with whatever arrived late.
            self._root_finalise(block)

    def _root_timeout(self, block: Block) -> None:
        state = self._collection(block)
        if state["done"]:
            return
        # Unlike the plain tree, Iniva also falls back below quorum: the
        # 2ND-CHANCE replies may be what completes the quorum.
        self._send_second_chances(block)

    def _send_second_chances(self, block: Block) -> None:
        state = self._collection(block)
        if state["done"] or state["second_chance_sent"]:
            return
        state["second_chance_sent"] = True
        missing = [
            pid
            for pid in range(self.config.committee_size)
            if pid not in state["included"]
        ]
        if not missing:
            self._root_finalise(block)
            return
        # Always traced (never sampled out): the forensic report's
        # omission-cartel visibility hangs on exactly this list of pids.
        self._trace(
            "second_chance",
            phase="request",
            view=block.view,
            block=block.block_id[:12],
            missing=missing,
        )
        proof = None
        if state["contributions"]:
            proof = self.scheme.aggregate(state["contributions"])
        message = SecondChanceMessage(block=block, proof=proof)
        self.replica.multicast(missing, message, size_bytes=message.size_bytes)
        self.replica.set_timer(
            self.config.second_chance_timeout, self._second_chance_timeout, block
        )

    def _second_chance_timeout(self, block: Block) -> None:
        state = self._collection(block)
        state["second_chance_expired"] = True
        if state["done"]:
            return
        self._root_finalise(block)

    # -- recipient of a 2ND-CHANCE ------------------------------------------------------
    def _on_second_chance(self, sender: int, message: SecondChanceMessage) -> None:
        block = message.block
        state = self._collection(block)
        tree: AggregationTree = state["tree"]
        if sender != tree.root:
            return
        if not self._second_chance_is_valid(message, state):
            return
        if not state["proposal_handled"]:
            # The block never reached us through the tree: deliver it now
            # (Algorithm 1, lines 34-37).
            share = self.replica.process_proposal(block)
            if share is None:
                return
            state["proposal_handled"] = True
            state["own_share"] = share
        reply_signature: Union[SignatureShare, AggregateSignature]
        if state["parent_ack"] is not None:
            # Reply with the parent's aggregate so the collector cannot use the
            # 2ND-CHANCE path to strip our siblings out of the certificate.
            reply_signature = state["parent_ack"]
        else:
            reply_signature = state["own_share"]
        reply = SecondChanceReply(
            block_id=block.block_id, view=block.view, signature=reply_signature
        )
        self.replica.send(sender, reply, size_bytes=reply.size_bytes)

    def _second_chance_is_valid(self, message: SecondChanceMessage, state: dict) -> bool:
        """The ``isValid`` predicate of Algorithm 1 (line 33)."""
        proof = message.proof
        if proof is not None:
            if self.process_id in proof:
                # Our signature is already included — a correct root would not
                # ask us again, so this is an exclusion attempt.
                return False
            if len(proof.signers) >= self.config.quorum_size:
                return True
            tree: AggregationTree = state["tree"]
            parent = tree.parent(self.process_id) if not tree.is_root(self.process_id) else None
            if parent is not None and parent in proof:
                return True
        # Fallback: sufficient time has passed since block creation.
        elapsed = self.replica.now - message.block.timestamp
        return elapsed >= 2.0 * self.config.delta

    # -- root: fold 2ND-CHANCE replies into the aggregate -----------------------------------
    def _on_second_chance_reply(self, sender: int, message: SecondChanceReply) -> None:
        if self._is_done(message.block_id):
            return
        block = self.replica.known_block(message.block_id)
        state = self._state.get(message.block_id)
        if block is None or state is None or state["tree"] is None:
            return
        tree: AggregationTree = state["tree"]
        if not tree.is_root(self.process_id):
            return
        signature = message.signature
        if isinstance(signature, SignatureShare):
            if signature.signer != sender:
                return
            self.replica.consume_cpu(self.config.cpu_model.verify_share)
            if not self.committee.verify_share(signature, block.signing_payload()):
                return
        elif isinstance(signature, AggregateSignature):
            self.replica.consume_cpu(
                self.config.cpu_model.aggregate_verify_cost(len(signature.signers))
            )
            if not self.committee.verify_aggregate(signature, block.signing_payload()):
                return
        else:
            return
        included_before = len(state["included"])
        self._root_add_contribution(block, signature, weight=1, source=sender)
        added = len(state["included"]) - included_before
        if added > 0:
            self.replica.metrics.record_second_chance_inclusion(added)
            self._trace(
                "second_chance",
                phase="recovered",
                view=block.view,
                block=block.block_id[:12],
                src=sender,
                added=added,
            )
