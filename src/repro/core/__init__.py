"""The paper's primary contribution: Iniva.

* :mod:`repro.core.iniva` — the Iniva vote aggregation protocol
  (Algorithm 1): tree aggregation with ACK confirmations and 2ND-CHANCE
  fallback paths driven by the next leader.
* :mod:`repro.core.rewards` — the rewarding mechanism (leader bonus,
  aggregation bonus, 2ND-CHANCE punishment, redistribution) computed and
  verified purely from the QC's signature multiplicities.
* :mod:`repro.core.incentives` — the game-theoretic incentive analysis of
  Section VI (strategy space, utility functions, dominance conditions).
* :mod:`repro.core.verification` — the verification path every process
  runs against a leader's QC and reward claims (Section V-B: a leader
  reporting wrong multiplicities or payouts is considered faulty).
* :mod:`repro.core.reputation` — the Rebop reputation-based leader
  election the paper contrasts Iniva with (Section IV-D).
"""

from repro.core.iniva import InivaAggregator
from repro.core.reputation import RebopElection, ReputationTracker
from repro.core.rewards import (
    RewardDistribution,
    RewardParams,
    compute_rewards,
    compute_star_rewards,
    validate_multiplicities,
)
from repro.core.incentives import (
    IncentiveAnalysis,
    Strategy,
    aggregation_denial_condition,
    vote_denial_condition,
    vote_omission_condition,
)
from repro.core.verification import (
    BlockAuditor,
    CertificateVerdict,
    RewardAuditReport,
    audit_rewards,
    verify_quorum_certificate,
)

__all__ = [
    "BlockAuditor",
    "CertificateVerdict",
    "IncentiveAnalysis",
    "InivaAggregator",
    "RebopElection",
    "ReputationTracker",
    "RewardAuditReport",
    "RewardDistribution",
    "RewardParams",
    "Strategy",
    "aggregation_denial_condition",
    "audit_rewards",
    "compute_rewards",
    "compute_star_rewards",
    "validate_multiplicities",
    "verify_quorum_certificate",
    "vote_denial_condition",
    "vote_omission_condition",
]
