"""Reputation-based leader election (Rebop) built on vote inclusion.

Rebop (Baloochestani, Jehl, Meling — DAIS 2022) is the incentive-based
alternative the paper contrasts Iniva with (Section IV-D): a process's
reputation is the number of votes it collected during its last ``T``
stints as leader, and leaders are elected preferentially by reputation.
The paper points out that such schemes deter *large* omissions (omitting
many votes costs reputation) but open a new attack — a process may hold
back its own signature to depress a competitor's reputation — and do not
protect individual victims (collateral 0).  Implementing Rebop lets the
benchmarks quantify both points next to Iniva.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.consensus.block import QuorumCertificate
from repro.consensus.leader import LeaderElection

__all__ = ["ReputationTracker", "RebopElection"]


@dataclass(frozen=True)
class _CollectionRecord:
    view: int
    collector: int
    votes: int


class ReputationTracker:
    """Sliding-window reputation: votes collected in the last ``T`` leaderships."""

    def __init__(self, committee_size: int, window: int = 10) -> None:
        if committee_size <= 0:
            raise ValueError("committee size must be positive")
        if window <= 0:
            raise ValueError("reputation window must be positive")
        self.committee_size = committee_size
        self.window = window
        self._records: Dict[int, Deque[_CollectionRecord]] = {
            pid: deque(maxlen=window) for pid in range(committee_size)
        }
        self._seen_views: set[int] = set()

    def record(self, view: int, collector: int, votes: int) -> None:
        """Record that ``collector`` formed a QC with ``votes`` signatures in ``view``."""
        if collector not in self._records:
            return
        if view in self._seen_views:
            return
        self._seen_views.add(view)
        self._records[collector].append(
            _CollectionRecord(view=view, collector=collector, votes=votes)
        )

    def observe_qc(self, qc: QuorumCertificate) -> None:
        if qc.is_genesis:
            return
        self.record(qc.view, qc.collector, len(qc.signers))

    def reputation(self, process_id: int) -> int:
        """Total votes collected by ``process_id`` over its recorded window."""
        records = self._records.get(process_id)
        if not records:
            return 0
        return sum(record.votes for record in records)

    def leaderships(self, process_id: int) -> int:
        return len(self._records.get(process_id, ()))

    def ranking(self) -> Tuple[int, ...]:
        """Committee members ordered by decreasing reputation (ties by id)."""
        return tuple(
            sorted(
                range(self.committee_size),
                key=lambda pid: (-self.reputation(pid), pid),
            )
        )


class RebopElection(LeaderElection):
    """Reputation-biased rotation.

    The election still rotates (every process eventually leads — the LSO
    fairness requirement), but the rotation order is the current
    reputation ranking rather than raw process ids.  Processes that never
    collect votes — because they crash, or because they are being starved
    by vote omission — sink to the end of the order.  Until any QC has
    been observed the policy degenerates to round-robin.
    """

    def __init__(self, committee_size: int, window: int = 10, bootstrap_rounds: int = 1) -> None:
        super().__init__(committee_size)
        self.tracker = ReputationTracker(committee_size, window=window)
        self.bootstrap_rounds = bootstrap_rounds
        self._observed = 0

    def observe_qc(self, qc: QuorumCertificate) -> None:
        if qc.is_genesis:
            return
        self.tracker.observe_qc(qc)
        self._observed += 1

    def leader(self, view: int, latest_qc: Optional[QuorumCertificate] = None) -> int:
        if latest_qc is not None and not latest_qc.is_genesis:
            self.tracker.observe_qc(latest_qc)
            self._observed += 1
        if self._observed < self.bootstrap_rounds * self.committee_size:
            # Not enough history for reputations to mean anything.
            return view % self.committee_size
        ranking = self.tracker.ranking()
        return ranking[view % self.committee_size]
