"""Game-theoretic incentive analysis of the reward scheme (Section VI).

The system is modelled as a two-player game between an honest player
``p_h`` and an attacker ``p_a`` controlling a fraction ``m < 0.5`` of the
processes.  A strategy ``S(e_l, e_v, e_a, e_p)`` describes which fraction
of votes the attacker omits as leader (``e_l``), withholds as a voter
(``e_v``), refuses to aggregate as a leaf (``e_a``, "aggregation denial")
or skips aggregating as an internal node (``e_p``, "aggregation
omission").

For every deviation the attacker loses some direct reward ``L[S']`` while
a pot ``R[S']`` is redistributed over the whole committee, of which the
attacker recovers the fraction ``m``.  The honest strategy dominates iff
``m · R[S'] < L[S']`` for every attack, which reduces to the paper's
conditions (3), (5) and (6) on the bonus parameters ``b_l`` and ``b_a``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.rewards import RewardParams

__all__ = [
    "Strategy",
    "AttackOutcome",
    "IncentiveAnalysis",
    "vote_omission_condition",
    "vote_denial_condition",
    "aggregation_denial_condition",
    "recommended_bonus_range",
]


@dataclass(frozen=True)
class Strategy:
    """An attacker strategy ``S(e_l, e_v, e_a, e_p)``.

    All parameters are fractions of the committee size ``n``; the honest
    strategy is ``Strategy(0, 0, 0, 0)``.
    """

    leader_omission: float = 0.0
    vote_denial: float = 0.0
    aggregation_denial: float = 0.0
    aggregation_omission: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (
            ("leader_omission", self.leader_omission),
            ("vote_denial", self.vote_denial),
            ("aggregation_denial", self.aggregation_denial),
            ("aggregation_omission", self.aggregation_omission),
        ):
            if value < 0 or value > 1:
                raise ValueError(f"{name} must lie in [0, 1]")

    @property
    def is_honest(self) -> bool:
        return (
            self.leader_omission == 0
            and self.vote_denial == 0
            and self.aggregation_denial == 0
            and self.aggregation_omission == 0
        )


@dataclass(frozen=True)
class AttackOutcome:
    """Expected per-round loss and redistribution caused by a strategy.

    ``attacker_loss`` is ``L[S']`` — the reward the attacker directly
    forfeits; ``redistributed`` is ``R[S']`` — the total pot returned to
    the committee, of which the attacker recovers a fraction ``m``.  The
    strategy is profitable iff ``net_gain > 0``.
    """

    attacker_loss: float
    redistributed: float
    attacker_power: float

    @property
    def attacker_recovered(self) -> float:
        return self.attacker_power * self.redistributed

    @property
    def net_gain(self) -> float:
        return self.attacker_recovered - self.attacker_loss

    @property
    def dominated_by_honest(self) -> bool:
        return self.net_gain <= 0


# ---------------------------------------------------------------------------
# Closed-form dominance conditions (Equations 3, 5 and 6 of the paper)
# ---------------------------------------------------------------------------

def vote_omission_condition(attacker_power: float, fault_fraction: float = 1 / 3) -> float:
    """Lower bound on ``b_l`` from Equation (3): ``b_l > m·f / (1 - m + m·f)``.

    If the leader bonus is at least this large, omitting votes as the
    leader costs the attacker more (in lost variational bonus) than it can
    recover from the redistribution pool.
    """
    m, f = attacker_power, fault_fraction
    return (m * f) / (1 - m + m * f)


def vote_denial_condition(
    attacker_power: float,
    aggregation_bonus: float,
    fault_fraction: float = 1 / 3,
) -> float:
    """Upper bound on ``b_l`` from Equation (5): ``b_l < f(1 - b_a - m)/(m + f - m·f)``.

    If the leader bonus stays below this value, withholding votes loses the
    attacker more voting reward than its share of the redistributed leader
    and aggregation bonuses.
    """
    m, f, ba = attacker_power, fault_fraction, aggregation_bonus
    return f * (1 - ba - m) / (m + f - m * f)


def aggregation_denial_condition(attacker_power: float) -> bool:
    """Equation (6): ``m² e_a b_a < e_a b_a`` — always true for ``m < 1``.

    Refusing to aggregate (or to be aggregated) punishes the attacker by
    the same aggregation bonus it tries to save, so it can never profit.
    """
    return attacker_power < 1.0


def recommended_bonus_range(
    attacker_power: float,
    aggregation_bonus: float,
    fault_fraction: float = 1 / 3,
) -> Tuple[float, float]:
    """The interval of leader bonuses ``b_l`` that is incentive compatible."""
    return (
        vote_omission_condition(attacker_power, fault_fraction),
        vote_denial_condition(attacker_power, aggregation_bonus, fault_fraction),
    )


# ---------------------------------------------------------------------------
# Full analysis object
# ---------------------------------------------------------------------------

class IncentiveAnalysis:
    """Expected-utility analysis of attacker strategies under Iniva rewards.

    The closed forms follow Section VI: rewards are expressed per round
    with total reward ``R``; the attacker controls a fraction ``m`` of the
    committee and the honest player follows the protocol.
    """

    def __init__(self, params: Optional[RewardParams] = None, attacker_power: float = 0.1) -> None:
        if not 0 < attacker_power < 0.5:
            raise ValueError("the analysis requires an attacker power m in (0, 0.5)")
        self.params = params or RewardParams()
        self.attacker_power = attacker_power

    # -- per-attack outcomes -----------------------------------------------------
    def vote_omission(self, leader_omission: float) -> AttackOutcome:
        """The leader omits ``e_l·n`` votes belonging to the other player."""
        params, m = self.params, self.attacker_power
        el = min(leader_omission, params.fault_fraction)
        reward = params.total_reward
        lost_leader_bonus = (el / params.fault_fraction) * params.leader_bonus * reward
        redistributed = (
            lost_leader_bonus
            + el * params.aggregation_bonus * reward
            + el * params.voting_fraction * reward
        )
        return AttackOutcome(
            attacker_loss=lost_leader_bonus, redistributed=redistributed, attacker_power=m
        )

    def vote_denial(self, vote_denial: float) -> AttackOutcome:
        """``e_v·n`` attacker processes withhold their votes."""
        params, m = self.params, self.attacker_power
        ev = vote_denial
        reward = params.total_reward
        lost_voting = ev * params.voting_fraction * reward
        redistributed = (
            (ev / params.fault_fraction) * params.leader_bonus * reward
            + ev * params.aggregation_bonus * reward
            + lost_voting
        )
        return AttackOutcome(
            attacker_loss=lost_voting, redistributed=redistributed, attacker_power=m
        )

    def aggregation_denial(self, fraction: float) -> AttackOutcome:
        """``e_a·n`` attacker leaves bypass their parents via 2ND-CHANCE."""
        params, m = self.params, self.attacker_power
        reward = params.total_reward
        punished = fraction * params.aggregation_bonus * reward
        redistributed = 2 * punished  # the punishment plus the denied parent bonus
        return AttackOutcome(
            attacker_loss=punished, redistributed=redistributed, attacker_power=m
        )

    def aggregation_omission(self, fraction: float) -> AttackOutcome:
        """Attacker internal nodes skip aggregating ``e_p·n`` honest leaves."""
        params, m = self.params, self.attacker_power
        reward = params.total_reward
        lost_bonus = fraction * params.aggregation_bonus * reward
        redistributed = 2 * lost_bonus  # lost bonus plus the leaves' punishment
        return AttackOutcome(
            attacker_loss=lost_bonus, redistributed=redistributed, attacker_power=m
        )

    # -- aggregate checks ------------------------------------------------------------
    def evaluate(self, strategy: Strategy) -> AttackOutcome:
        """The combined outcome of a mixed strategy (losses and pools add up)."""
        outcomes = [
            self.vote_omission(strategy.leader_omission),
            self.vote_denial(strategy.vote_denial),
            self.aggregation_denial(strategy.aggregation_denial),
            self.aggregation_omission(strategy.aggregation_omission),
        ]
        return AttackOutcome(
            attacker_loss=sum(o.attacker_loss for o in outcomes),
            redistributed=sum(o.redistributed for o in outcomes),
            attacker_power=self.attacker_power,
        )

    def is_incentive_compatible(self) -> bool:
        """Check the paper's conditions (3) and (5) for the configured ``b_l``/``b_a``."""
        lower = vote_omission_condition(self.attacker_power, self.params.fault_fraction)
        upper = vote_denial_condition(
            self.attacker_power, self.params.aggregation_bonus, self.params.fault_fraction
        )
        return lower < self.params.leader_bonus < upper

    def honest_strategy_dominates(
        self, strategies: Optional[Iterable[Strategy]] = None, tolerance: float = 1e-12
    ) -> bool:
        """Theorem 3: every strategy in ``strategies`` is dominated by honesty.

        Defaults to a grid over the strategy space.
        """
        if strategies is None:
            strategies = self.strategy_grid()
        for strategy in strategies:
            if strategy.is_honest:
                continue
            if self.evaluate(strategy).net_gain > tolerance:
                return False
        return True

    def strategy_grid(self, steps: int = 4) -> List[Strategy]:
        """A coarse grid over the strategy space used for dominance checks."""
        fractions = [i / steps * self.params.fault_fraction for i in range(steps + 1)]
        grid = []
        for el, ev, ea, ep in itertools.product(fractions, repeat=4):
            grid.append(
                Strategy(
                    leader_omission=el,
                    vote_denial=ev,
                    aggregation_denial=ea,
                    aggregation_omission=ep,
                )
            )
        return grid

    def summary(self) -> Dict[str, float]:
        lower, upper = recommended_bonus_range(
            self.attacker_power, self.params.aggregation_bonus, self.params.fault_fraction
        )
        return {
            "attacker_power": self.attacker_power,
            "leader_bonus": self.params.leader_bonus,
            "aggregation_bonus": self.params.aggregation_bonus,
            "required_leader_bonus_min": lower,
            "allowed_leader_bonus_max": upper,
            "incentive_compatible": float(self.is_incentive_compatible()),
        }
