"""Iniva's rewarding mechanism (Section V-B of the paper).

The reward for one block is computed purely from public data — the
aggregation tree (reconstructable from the view number and previous QC)
and the signer multiplicities inside the quorum certificate — so every
process can recompute and verify the distribution chosen by the leader.

Multiplicity encoding (how provenance is proved without trusting the
leader):

* a leaf aggregated by its parent appears with multiplicity **2**;
* a leaf included through a 2ND-CHANCE message appears with
  multiplicity **1** (and is punished by ``b_a/n · R``);
* an internal node that aggregated ``k`` children appears with
  multiplicity ``1 + k`` (one extra copy of its own signature per child);
* the root/leader appears with multiplicity **1**.

Reward components (Requirements 1-4 of the paper):

* every included process receives the base voting reward ``b_v·R / n``;
* an internal node receives ``b_a/n · R`` per aggregated child, and the
  leader receives ``b_a/n · R`` per aggregated subtree;
* the leader receives ``b_l/(f·n) · R`` for every included signature
  beyond the minimal ``(1-f)·n`` quorum (the Cosmos-style variational
  bonus);
* all unearned or punished amounts are pooled and redistributed evenly
  over the whole committee, so the total paid per block is always ``R``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.tree.overlay import AggregationTree

__all__ = [
    "RewardParams",
    "RewardDistribution",
    "compute_rewards",
    "compute_star_rewards",
    "validate_multiplicities",
]


@dataclass(frozen=True)
class RewardParams:
    """Parameters of the reward scheme.

    Attributes:
        total_reward: ``R``, the full amount distributed per block.
        leader_bonus: ``b_l`` — fraction of ``R`` reserved for the leader's
            variational bonus (0.15 in the paper's simulations).
        aggregation_bonus: ``b_a`` — fraction of ``R`` reserved for
            aggregation work (0.02 in the paper's simulations).
        fault_fraction: ``f`` — the protocol's fault threshold (1/3).
    """

    total_reward: float = 1.0
    leader_bonus: float = 0.15
    aggregation_bonus: float = 0.02
    fault_fraction: float = 1 / 3

    def __post_init__(self) -> None:
        if self.total_reward <= 0:
            raise ValueError("total reward must be positive")
        if not 0 <= self.leader_bonus < 1 or not 0 <= self.aggregation_bonus < 1:
            raise ValueError("bonus fractions must lie in [0, 1)")
        if self.leader_bonus + self.aggregation_bonus >= 1:
            raise ValueError("leader and aggregation bonuses must leave room for voting rewards")
        if not 0 < self.fault_fraction < 1:
            raise ValueError("fault fraction must lie in (0, 1)")

    @property
    def voting_fraction(self) -> float:
        """``b_v = 1 - b_l - b_a``."""
        return 1.0 - self.leader_bonus - self.aggregation_bonus


@dataclass
class RewardDistribution:
    """The outcome of the reward computation for one block.

    ``payouts`` always sums to ``params.total_reward`` (Requirement 4);
    the per-component breakdowns are kept for analysis and tests.
    """

    params: RewardParams
    committee_size: int
    payouts: Dict[int, float] = field(default_factory=dict)
    voting_rewards: Dict[int, float] = field(default_factory=dict)
    aggregation_rewards: Dict[int, float] = field(default_factory=dict)
    leader_reward: float = 0.0
    punishments: Dict[int, float] = field(default_factory=dict)
    redistributed: float = 0.0
    leader: Optional[int] = None
    included: Set[int] = field(default_factory=set)

    def reward_of(self, process_id: int) -> float:
        return self.payouts.get(process_id, 0.0)

    def total_paid(self) -> float:
        return sum(self.payouts.values())

    def fair_share(self) -> float:
        """The per-process payout when everyone behaves and is included."""
        return self.params.total_reward / self.committee_size

    def fraction_of_fair_share(self, process_id: int) -> float:
        """``reward / fair share - 1`` — the quantity plotted in Figure 2c."""
        fair = self.fair_share()
        if fair == 0:
            return 0.0
        return self.reward_of(process_id) / fair - 1.0


def validate_multiplicities(
    tree: AggregationTree, multiplicities: Mapping[int, int]
) -> List[str]:
    """Check that the QC's multiplicities are consistent with the tree.

    Returns a list of human-readable violations; an empty list means the
    leader reported a well-formed certificate.  Processes run this check
    before accepting the reward distribution — a leader reporting wrong
    multiplicities is considered faulty (Section V-B).
    """
    violations: List[str] = []
    mult = {pid: multiplicities.get(pid, 0) for pid in tree.processes}
    root_mult = mult[tree.root]
    if root_mult not in (0, 1):
        violations.append(f"root {tree.root} has multiplicity {root_mult}, expected 0 or 1")
    for leaf in tree.leaves:
        if mult[leaf] not in (0, 1, 2):
            violations.append(f"leaf {leaf} has multiplicity {mult[leaf]}, expected 0, 1 or 2")
    for internal in tree.internal_nodes:
        children = tree.children(internal)
        aggregated = sum(1 for child in children if mult[child] == 2)
        internal_mult = mult[internal]
        if internal_mult == 0:
            if aggregated:
                violations.append(
                    f"internal {internal} absent but {aggregated} children have multiplicity 2"
                )
            continue
        expected = 1 + aggregated
        if internal_mult != expected:
            violations.append(
                f"internal {internal} has multiplicity {internal_mult}, expected {expected} "
                f"(1 + {aggregated} aggregated children)"
            )
    return violations


def compute_rewards(
    tree: AggregationTree,
    multiplicities: Mapping[int, int],
    params: Optional[RewardParams] = None,
) -> RewardDistribution:
    """Compute the Iniva reward distribution for one block.

    Args:
        tree: The aggregation tree of the view (the root is the leader that
            collected the certificate).
        multiplicities: Signer multiplicities from the QC's aggregate.
        params: Reward parameters; defaults to the paper's values.

    Returns:
        A :class:`RewardDistribution` whose payouts sum to ``R``.
    """
    params = params or RewardParams()
    n = tree.size
    reward = params.total_reward
    unit_aggregation = params.aggregation_bonus * reward / n
    voting_share = params.voting_fraction * reward / n

    distribution = RewardDistribution(params=params, committee_size=n, leader=tree.root)
    mult = {pid: multiplicities.get(pid, 0) for pid in tree.processes}
    included = {pid for pid, m in mult.items() if m > 0}
    distribution.included = included

    pool = 0.0  # Forfeited / punished rewards, redistributed at the end.

    # -- voting rewards ------------------------------------------------------
    for pid in tree.processes:
        if pid in included:
            distribution.voting_rewards[pid] = voting_share
        else:
            pool += voting_share

    # -- aggregation bonuses and 2ND-CHANCE punishments -----------------------
    aggregation_budget = params.aggregation_bonus * reward
    earned_aggregation = 0.0
    for internal in tree.internal_nodes:
        children = tree.children(internal)
        aggregated_children = [child for child in children if mult[child] == 2]
        bonus = unit_aggregation * len(aggregated_children)
        if internal in included and bonus:
            distribution.aggregation_rewards[internal] = (
                distribution.aggregation_rewards.get(internal, 0.0) + bonus
            )
            earned_aggregation += bonus
        for child in children:
            if mult[child] == 1:
                # Included via 2ND-CHANCE: the child is punished by b_a/n * R.
                punishment = min(unit_aggregation, distribution.voting_rewards.get(child, 0.0))
                if punishment:
                    distribution.punishments[child] = (
                        distribution.punishments.get(child, 0.0) + punishment
                    )
                    distribution.voting_rewards[child] -= punishment
                    pool += punishment

    # The leader earns the aggregation bonus per aggregated subtree.
    if tree.root in included:
        aggregated_subtrees = sum(1 for internal in tree.internal_nodes if mult[internal] > 0)
        leader_aggregation = unit_aggregation * aggregated_subtrees
        if leader_aggregation:
            distribution.aggregation_rewards[tree.root] = (
                distribution.aggregation_rewards.get(tree.root, 0.0) + leader_aggregation
            )
            earned_aggregation += leader_aggregation
    pool += max(aggregation_budget - earned_aggregation, 0.0)

    # -- leader's variational bonus ---------------------------------------------
    leader_budget = params.leader_bonus * reward
    minimum_votes = math.ceil((1 - params.fault_fraction) * n)
    surplus_capacity = n - minimum_votes
    if tree.root in included and surplus_capacity > 0:
        surplus = max(len(included) - minimum_votes, 0)
        leader_earned = leader_budget * min(surplus / surplus_capacity, 1.0)
    elif tree.root in included:
        leader_earned = leader_budget
    else:
        leader_earned = 0.0
    distribution.leader_reward = leader_earned
    pool += leader_budget - leader_earned

    # -- redistribution (Requirement 4: the full R is always paid out) ------------
    distribution.redistributed = pool
    per_process_redistribution = pool / n

    for pid in tree.processes:
        payout = distribution.voting_rewards.get(pid, 0.0)
        payout += distribution.aggregation_rewards.get(pid, 0.0)
        if pid == tree.root:
            payout += distribution.leader_reward
        payout += per_process_redistribution
        distribution.payouts[pid] = payout
    return distribution


def compute_star_rewards(
    committee_size: int,
    leader: int,
    included: Iterable[int],
    params: Optional[RewardParams] = None,
) -> RewardDistribution:
    """Reward distribution of the star baseline (leader bonus, no aggregation).

    Used for the Figure 2c/2d comparisons: the baseline applies the same
    leader bonus ``b_l`` but has no aggregation bonus, and the leader alone
    decides which votes are included.
    """
    params = params or RewardParams()
    reward = params.total_reward
    included_set = set(included)
    n = committee_size
    voting_fraction = 1.0 - params.leader_bonus
    voting_share = voting_fraction * reward / n

    distribution = RewardDistribution(params=params, committee_size=n, leader=leader)
    distribution.included = included_set
    pool = 0.0
    for pid in range(n):
        if pid in included_set:
            distribution.voting_rewards[pid] = voting_share
        else:
            pool += voting_share

    leader_budget = params.leader_bonus * reward
    minimum_votes = math.ceil((1 - params.fault_fraction) * n)
    surplus_capacity = n - minimum_votes
    if leader in included_set and surplus_capacity > 0:
        surplus = max(len(included_set) - minimum_votes, 0)
        leader_earned = leader_budget * min(surplus / surplus_capacity, 1.0)
    elif leader in included_set:
        leader_earned = leader_budget
    else:
        leader_earned = 0.0
    distribution.leader_reward = leader_earned
    pool += leader_budget - leader_earned

    distribution.redistributed = pool
    per_process = pool / n
    for pid in range(n):
        payout = distribution.voting_rewards.get(pid, 0.0)
        if pid == leader:
            payout += distribution.leader_reward
        payout += per_process
        distribution.payouts[pid] = payout
    return distribution
