"""Command-line interface for regenerating the paper's tables and figures.

``python -m repro`` exposes every experiment in the repository so a user
can reproduce a figure, run a one-off deployment or export the underlying
data without writing any code::

    python -m repro list
    python -m repro table1 --quick
    python -m repro fig2a --quick --format markdown
    python -m repro fig4 --quick --output-dir results/
    python -m repro run --scheme iniva --replicas 21 --faults 2 --duration 3
    python -m repro scenario --list
    python -m repro scenario partition-heal --quick
    python -m repro scenario my_campaign.yaml --output-dir results/

``--quick`` shrinks trial counts and durations so every command finishes
in seconds; dropping it uses the defaults the benchmarks use (minutes).
Use ``--output-dir`` to also write CSV/JSON/Markdown artifacts.
``scenario`` accepts either a built-in preset name (see ``--list``) or a
path to a JSON/YAML spec file (see :mod:`repro.scenarios`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.table1 import table1
from repro.consensus.config import ConsensusConfig
from repro.experiments.export import FigureArtifact
from repro.experiments.resiliency import figure_4
from repro.experiments.runner import run_experiment
from repro.experiments.scalability import figure_3c
from repro.experiments.security import figure_2a, figure_2b, figure_2c, figure_2d
from repro.experiments.throughput import figure_3a
from repro.experiments.cpu import figure_3b
from repro.experiments.workloads import ClientWorkload
from repro.simnet.failures import FailurePlan

__all__ = ["main", "build_parser", "EXPERIMENTS"]


class _Experiment:
    """One reproducible table/figure: how to run it and how to plot it."""

    def __init__(
        self,
        name: str,
        title: str,
        run: Callable[[argparse.Namespace], List[Dict[str, object]]],
        series_key: Optional[str] = None,
        x: Optional[str] = None,
        y: Optional[str] = None,
    ) -> None:
        self.name = name
        self.title = title
        self.run = run
        self.series_key = series_key
        self.x = x
        self.y = y

    def artifact(self, args: argparse.Namespace) -> FigureArtifact:
        rows = self.run(args)
        return FigureArtifact(
            name=self.name,
            title=self.title,
            rows=list(rows),
            series_key=self.series_key,
            x=self.x,
            y=self.y,
        )


def _run_table1(args: argparse.Namespace) -> List[Dict[str, object]]:
    trials = 100 if args.quick else 800
    rows = table1(attacker_power=args.attacker_power, gosig_trials=trials, seed=args.seed)
    return [row.as_dict() for row in rows]


def _run_fig2a(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.quick:
        return figure_2a(
            attacker_powers=(0.05, 0.10, 0.15),
            gosig_trials=60,
            iniva_trials=800,
            seed=args.seed,
        )
    return figure_2a(seed=args.seed)


def _run_fig2b(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.quick:
        return figure_2b(collaterals=(0, 2, 4, 6, 8), gosig_trials=60, iniva_trials=600, seed=args.seed)
    return figure_2b(seed=args.seed)


def _run_fig2c(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.quick:
        return figure_2c(attacker_powers=(0.1, 0.3), trials=80, seed=args.seed)
    return figure_2c(seed=args.seed)


def _run_fig2d(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.quick:
        return figure_2d(trials=80, seed=args.seed)
    return figure_2d(seed=args.seed)


def _run_fig3a(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.quick:
        return figure_3a(
            committee_size=9, loads=(2_000, 6_000), duration=1.0, warmup=0.2, seed=args.seed
        )
    return figure_3a(seed=args.seed)


def _run_fig3b(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.quick:
        return figure_3b(
            committee_size=9,
            payload_sizes=(64,),
            saturation_load=6_000,
            duration=1.0,
            warmup=0.2,
            seed=args.seed,
        )
    return figure_3b(seed=args.seed)


def _run_fig3c(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.quick:
        return figure_3c(
            replica_counts=(9, 13), payload_sizes=(64,), load=4_000, duration=1.0, warmup=0.2,
            seed=args.seed,
        )
    return figure_3c(seed=args.seed)


def _run_fig4(args: argparse.Namespace) -> List[Dict[str, object]]:
    if args.quick:
        return figure_4(
            committee_size=9,
            fault_counts=(0, 1, 2),
            load=2_000,
            duration=1.5,
            warmup=0.2,
            view_timeout=0.1,
            seed=args.seed,
        )
    return figure_4(seed=args.seed)


EXPERIMENTS: Dict[str, _Experiment] = {
    experiment.name: experiment
    for experiment in (
        _Experiment("table1", "Table I: scheme comparison", _run_table1),
        _Experiment(
            "fig2a",
            "Figure 2a: 0-collateral omission probability",
            _run_fig2a,
            series_key="protocol",
            x="attacker_power",
            y="omission_probability",
        ),
        _Experiment(
            "fig2b",
            "Figure 2b: omission probability vs collateral",
            _run_fig2b,
            series_key="protocol",
            x="collateral",
            y="omission_probability",
        ),
        _Experiment("fig2c", "Figure 2c: reward lost under collateral-0 attacks", _run_fig2c),
        _Experiment("fig2d", "Figure 2d: reward lost with large collateral", _run_fig2d),
        _Experiment(
            "fig3a",
            "Figure 3a: throughput vs latency",
            _run_fig3a,
            series_key="scheme",
            x="throughput_ops",
            y="latency_ms",
        ),
        _Experiment("fig3b", "Figure 3b: CPU usage", _run_fig3b),
        _Experiment(
            "fig3c",
            "Figure 3c: scalability",
            _run_fig3c,
            series_key="scheme",
            x="replicas",
            y="throughput_ops",
        ),
        _Experiment(
            "fig4",
            "Figure 4: resiliency under crash faults",
            _run_fig4,
            series_key="variant",
            x="faulty_nodes",
            y="throughput_ops",
        ),
    )
}


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the Iniva paper (DSN 2024).",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list all reproducible tables and figures")

    for experiment in EXPERIMENTS.values():
        sub = subparsers.add_parser(experiment.name, help=experiment.title)
        _add_common_options(sub)
        if experiment.name == "table1":
            sub.add_argument(
                "--attacker-power", type=float, default=0.1, dest="attacker_power",
                help="attacker power m (default 0.1)",
            )

    run_parser = subparsers.add_parser("run", help="run a single simulated deployment")
    _add_common_options(run_parser)
    run_parser.add_argument("--scheme", default="iniva", choices=sorted(ConsensusConfig.SUPPORTED_AGGREGATIONS))
    run_parser.add_argument("--replicas", type=int, default=21)
    run_parser.add_argument("--batch", type=int, default=100)
    run_parser.add_argument("--payload", type=int, default=64)
    run_parser.add_argument("--load", type=float, default=6_000.0, help="offered load in ops/sec")
    run_parser.add_argument("--duration", type=float, default=3.0, help="simulated seconds")
    run_parser.add_argument("--faults", type=int, default=0, help="number of crashed replicas")
    run_parser.add_argument(
        "--leader-policy", default="round-robin", choices=["round-robin", "carousel", "rebop"]
    )
    run_parser.add_argument(
        "--second-chance-timeout", type=float, default=0.005, help="the δ timer in seconds"
    )

    scenario_parser = subparsers.add_parser(
        "scenario", help="run a declarative scenario (preset name or spec file)"
    )
    scenario_parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="built-in preset name or path to a .json/.yaml scenario spec",
    )
    scenario_parser.add_argument(
        "--list", action="store_true", dest="list_presets", help="list the built-in presets"
    )
    scenario_parser.add_argument("--quick", action="store_true", help="reduced duration/committee")
    scenario_parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    scenario_parser.add_argument(
        "--format",
        choices=["table", "csv", "json", "markdown", "plot"],
        default="table",
        help="how to print the result on stdout",
    )
    scenario_parser.add_argument(
        "--output-dir",
        default=None,
        help="also write CSV/JSON/Markdown/plot artifacts into this directory",
    )
    return parser


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true", help="reduced trials/durations")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--format",
        choices=["table", "csv", "json", "markdown", "plot"],
        default="table",
        help="how to print the result on stdout",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also write CSV/JSON/Markdown/plot artifacts into this directory",
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _render(artifact: FigureArtifact, fmt: str) -> str:
    from repro.experiments.report import rows_to_csv, rows_to_json

    if fmt == "csv":
        return rows_to_csv(artifact.rows)
    if fmt == "json":
        return rows_to_json(artifact.rows)
    if fmt == "markdown":
        return artifact.to_markdown()
    if fmt == "plot":
        return artifact.to_plot()
    return artifact.to_table()


def _command_list() -> str:
    lines = ["Reproducible experiments:", ""]
    for experiment in EXPERIMENTS.values():
        lines.append(f"  {experiment.name:<8} {experiment.title}")
    lines.append("")
    lines.append("  run      a single simulated deployment (see `repro run --help`)")
    lines.append("  scenario a declarative campaign (see `repro scenario --list`)")
    return "\n".join(lines)


def _command_scenario_list() -> str:
    from repro.scenarios import PRESETS

    lines = ["Built-in scenario presets:", ""]
    for name, data in PRESETS.items():
        lines.append(f"  {name:<18} {data.get('description', '')}")
    lines.append("")
    lines.append("Run one with `python -m repro scenario <name> [--quick]`, or pass a")
    lines.append("path to a JSON/YAML spec file (format: repro.scenarios.ScenarioSpec).")
    return "\n".join(lines)


def _command_scenario(args: argparse.Namespace) -> FigureArtifact:
    import os

    from repro.scenarios import PRESETS, ScenarioSpec, load_preset, run_scenario

    target = args.spec
    # Preset names always win so a stray local file/directory named like a
    # preset can't shadow the catalogue; everything else is a spec path.
    if target in PRESETS:
        spec = load_preset(target)
    elif os.path.isfile(target):
        spec = ScenarioSpec.load(target)
    elif target.lower().endswith((".json", ".yaml", ".yml")):
        raise FileNotFoundError(f"scenario spec file not found: {target}")
    else:
        spec = load_preset(target)  # raises KeyError listing the catalogue
    if args.seed is not None:
        spec = spec.with_(seed=args.seed)
    result = run_scenario(spec, quick=args.quick)
    return result.artifact()


def _command_run(args: argparse.Namespace) -> FigureArtifact:
    config = ConsensusConfig(
        committee_size=args.replicas,
        batch_size=args.batch,
        payload_size=args.payload,
        aggregation=args.scheme,
        leader_policy=args.leader_policy,
        second_chance_timeout=args.second_chance_timeout,
        view_timeout=0.1 if args.quick else 0.25,
        seed=args.seed,
    )
    duration = min(args.duration, 1.5) if args.quick else args.duration
    failure_plan = None
    if args.faults:
        failure_plan = FailurePlan.random_crashes(
            committee_size=args.replicas, count=args.faults, seed=args.seed
        )
    result = run_experiment(
        config,
        duration=duration,
        warmup=min(0.2, duration / 5),
        workload=ClientWorkload(rate=args.load, payload_size=args.payload, seed=args.seed),
        failure_plan=failure_plan,
        label=f"{args.scheme} n={args.replicas} faults={args.faults}",
    )
    row: Dict[str, object] = {"configuration": result.config_label}
    row.update(result.row())
    row["committed_blocks"] = result.committed_blocks
    return FigureArtifact(name="run", title="Single deployment run", rows=[row])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        print(_command_list())
        return 0

    if args.command == "scenario":
        if args.list_presets:
            print(_command_scenario_list())
            return 0
        if args.spec is None:
            print(_command_scenario_list())
            print("\nerror: give a preset name or spec file (or --list)")
            return 2
        artifact = _command_scenario(args)
    elif args.command == "run":
        artifact = _command_run(args)
    else:
        artifact = EXPERIMENTS[args.command].artifact(args)

    print(_render(artifact, args.format))
    if args.output_dir:
        paths = artifact.write(args.output_dir)
        print("\nwrote artifacts:")
        for kind, path in sorted(paths.items()):
            print(f"  {kind}: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
