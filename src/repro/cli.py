"""Command-line interface for regenerating the paper's tables and figures.

``python -m repro`` is a thin shell over the :mod:`repro.api` facade: it
exposes every experiment in the repository so a user can reproduce a
figure, run a one-off deployment or export the underlying data without
writing any code::

    python -m repro list
    python -m repro table1 --quick
    python -m repro fig2a --quick --format markdown
    python -m repro fig4 --quick --output-dir results/
    python -m repro run --scheme iniva --replicas 21 --faults 2 --duration 3
    python -m repro scenario --list
    python -m repro scenario partition-heal --quick
    python -m repro scenario my_campaign.yaml --output-dir results/

``--quick`` applies the shared quick-profile table (reduced trial counts
and durations) so every command finishes in seconds; dropping it uses the
defaults the benchmarks use (minutes).  Use ``--output-dir`` to also
write CSV/JSON/Markdown artifacts.  For the ``run`` and ``scenario``
commands ``--format json`` emits the full versioned
:class:`~repro.results.RunResult` schema document (config echo, seed,
per-epoch metrics); figure commands print their rows as JSON.
``scenario`` accepts either a built-in preset name (see ``--list``) or a
path to a JSON/YAML spec file (see :mod:`repro.scenarios`).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from repro import api
from repro.consensus.config import ConsensusConfig
from repro.experiments.export import FigureArtifact
from repro.results import RunResult
from repro.scenarios.spec import (
    CommitteeSpec,
    FaultSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = ["main", "build_parser", "EXPERIMENTS"]

#: The figure catalogue (name → how to run/plot it) — shared with the API.
EXPERIMENTS = api.FIGURES


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the Iniva paper (DSN 2024).",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list all reproducible tables and figures")

    for experiment in EXPERIMENTS.values():
        sub = subparsers.add_parser(experiment.name, help=experiment.title)
        _add_common_options(sub)
        if experiment.name == "table1":
            sub.add_argument(
                "--attacker-power", type=float, default=0.1, dest="attacker_power",
                help="attacker power m (default 0.1)",
            )

    run_parser = subparsers.add_parser("run", help="run a single simulated deployment")
    _add_common_options(run_parser)
    run_parser.add_argument(
        "--scheme", default="iniva", choices=sorted(ConsensusConfig.SUPPORTED_AGGREGATIONS)
    )
    run_parser.add_argument("--replicas", type=int, default=21)
    run_parser.add_argument("--batch", type=int, default=100)
    run_parser.add_argument("--payload", type=int, default=64)
    run_parser.add_argument("--load", type=float, default=6_000.0, help="offered load in ops/sec")
    run_parser.add_argument("--duration", type=float, default=3.0, help="simulated seconds")
    run_parser.add_argument("--faults", type=int, default=0, help="number of crashed replicas")
    run_parser.add_argument(
        "--leader-policy", default="round-robin", choices=["round-robin", "carousel", "rebop"]
    )
    run_parser.add_argument(
        "--second-chance-timeout", type=float, default=0.005, help="the δ timer in seconds"
    )

    scenario_parser = subparsers.add_parser(
        "scenario", help="run a declarative scenario (preset name or spec file)"
    )
    scenario_parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="built-in preset name or path to a .json/.yaml scenario spec",
    )
    scenario_parser.add_argument(
        "--list", action="store_true", dest="list_presets", help="list the built-in presets"
    )
    scenario_parser.add_argument("--quick", action="store_true", help="reduced duration/committee")
    scenario_parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    scenario_parser.add_argument(
        "--format",
        choices=["table", "csv", "json", "markdown", "plot"],
        default="table",
        help="how to print the result on stdout (json = RunResult schema)",
    )
    scenario_parser.add_argument(
        "--output-dir",
        default=None,
        help="also write CSV/JSON/Markdown/plot artifacts into this directory",
    )
    return parser


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true", help="reduced trials/durations")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--format",
        choices=["table", "csv", "json", "markdown", "plot"],
        default="table",
        help="how to print the result on stdout",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also write CSV/JSON/Markdown/plot artifacts into this directory",
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _render(artifact: FigureArtifact, fmt: str) -> str:
    from repro.experiments.report import rows_to_csv, rows_to_json

    if fmt == "csv":
        return rows_to_csv(artifact.rows)
    if fmt == "json":
        return rows_to_json(artifact.rows)
    if fmt == "markdown":
        return artifact.to_markdown()
    if fmt == "plot":
        return artifact.to_plot()
    return artifact.to_table()


def _command_list() -> str:
    lines = ["Reproducible experiments:", ""]
    for experiment in EXPERIMENTS.values():
        lines.append(f"  {experiment.name:<8} {experiment.title}")
    lines.append("")
    lines.append("  run      a single simulated deployment (see `repro run --help`)")
    lines.append("  scenario a declarative campaign (see `repro scenario --list`)")
    return "\n".join(lines)


def _command_scenario_list() -> str:
    from repro.scenarios import PRESETS

    lines = ["Built-in scenario presets:", ""]
    for name, data in PRESETS.items():
        lines.append(f"  {name:<18} {data.get('description', '')}")
    lines.append("")
    lines.append("Run one with `python -m repro scenario <name> [--quick]`, or pass a")
    lines.append("path to a JSON/YAML spec file (format: repro.scenarios.ScenarioSpec).")
    return "\n".join(lines)


def _command_scenario(args: argparse.Namespace) -> RunResult:
    return api.run(args.spec, quick=args.quick, seed=args.seed)


def _command_run(args: argparse.Namespace) -> RunResult:
    duration = min(args.duration, 1.5) if args.quick else args.duration
    spec = ScenarioSpec(
        name="run",
        aggregation=args.scheme,
        batch_size=args.batch,
        leader_policy=args.leader_policy,
        duration=duration,
        warmup=min(0.2, duration / 5),
        seed=args.seed,
        delta=0.0025,
        second_chance_timeout=args.second_chance_timeout,
        view_timeout=0.1 if args.quick else 0.25,
        committee=CommitteeSpec(size=args.replicas),
        topology=TopologySpec(kind="normal", intra_delay=0.0005, jitter=0.2),
        workload=WorkloadSpec(rate=args.load, payload_size=args.payload, seed=args.seed),
        faults=FaultSpec(crashes=args.faults, crash_seed=args.seed, protect_leader=False),
    )
    return api.run(spec)


def _run_artifact(args: argparse.Namespace, result: RunResult) -> FigureArtifact:
    metrics = result.metrics
    row: Dict[str, object] = {
        "configuration": f"{args.scheme} n={args.replicas} faults={args.faults}"
    }
    row.update(metrics.row())
    row["committed_blocks"] = metrics.committed_blocks
    return FigureArtifact(name="run", title="Single deployment run", rows=[row])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        print(_command_list())
        return 0

    result: Optional[RunResult] = None
    if args.command == "scenario":
        if args.list_presets:
            print(_command_scenario_list())
            return 0
        if args.spec is None:
            print(_command_scenario_list())
            print("\nerror: give a preset name or spec file (or --list)")
            return 2
        result = _command_scenario(args)
        artifact = result.artifact()
    elif args.command == "run":
        result = _command_run(args)
        artifact = _run_artifact(args, result)
    else:
        extra = {}
        if args.command == "table1":
            extra["attacker_power"] = args.attacker_power
        artifact = api.figure(args.command, quick=args.quick, seed=args.seed, **extra)

    if result is not None and args.format == "json":
        # A single run serialises as the full RunResult schema document.
        print(result.to_json())
    else:
        print(_render(artifact, args.format))
    if args.output_dir:
        paths = artifact.write(args.output_dir)
        print("\nwrote artifacts:")
        for kind, path in sorted(paths.items()):
            print(f"  {kind}: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
