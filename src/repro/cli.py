"""Command-line interface for regenerating the paper's tables and figures.

``python -m repro`` is a thin shell over the :mod:`repro.api` facade: it
exposes every experiment in the repository so a user can reproduce a
figure, run a one-off deployment or export the underlying data without
writing any code::

    python -m repro list
    python -m repro table1 --quick
    python -m repro fig2a --quick --format markdown
    python -m repro fig4 --quick --output-dir results/
    python -m repro run --scheme iniva --replicas 21 --faults 2 --duration 3
    python -m repro scenario --list
    python -m repro scenario partition-heal --quick
    python -m repro scenario my_campaign.yaml --output-dir results/
    python -m repro live rack-baseline --quick
    python -m repro live my_campaign.yaml --duration 5 --procs 4
    python -m repro trace omission-cartel --quick
    python -m repro trace rack-baseline --runtime live --output-dir traces/
    python -m repro sweep rack-baseline --set aggregation=star,iniva --quick

``--quick`` applies the shared quick-profile table (reduced trial counts
and durations) so every command finishes in seconds; dropping it uses the
defaults the benchmarks use (minutes).  Use ``--output-dir`` to also
write CSV/JSON/Markdown artifacts.  ``--format json`` always emits a
versioned schema document: the full
:class:`~repro.results.RunResult` document (config echo, seed, per-epoch
metrics, per-replica transport counters) for ``run``/``scenario``/
``live``, a run-result *list* document for ``sweep``, and the
``repro.figure/1`` document for the figure commands.  ``scenario`` and
``live`` accept either a built-in preset name (see ``scenario --list``)
or a path to a JSON/YAML spec file (see :mod:`repro.scenarios`);
``live`` executes the spec on the asyncio localhost-TCP cluster instead
of the simulator — including the adversarial and WAN presets, whose
partitions, loss, latency/bandwidth shaping, crash-restart churn and
Byzantine omission cartels are injected by :mod:`repro.chaos` (task
mode; ``--procs`` clusters run clean or shaped links only).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro import api
from repro.consensus.config import ConsensusConfig
from repro.experiments.export import FigureArtifact
from repro.results import RESULT_LIST_SCHEMA, RunResult
from repro.scenarios.spec import (
    CommitteeSpec,
    FaultSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    parse_scalar,
)

__all__ = ["main", "build_parser", "EXPERIMENTS"]

#: The figure catalogue (name → how to run/plot it) — shared with the API.
EXPERIMENTS = api.FIGURES


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the tables and figures of the Iniva paper (DSN 2024).",
    )
    subparsers = parser.add_subparsers(dest="command")

    subparsers.add_parser("list", help="list all reproducible tables and figures")

    for experiment in EXPERIMENTS.values():
        sub = subparsers.add_parser(experiment.name, help=experiment.title)
        _add_common_options(sub)
        if experiment.name == "table1":
            sub.add_argument(
                "--attacker-power", type=float, default=0.1, dest="attacker_power",
                help="attacker power m (default 0.1)",
            )

    run_parser = subparsers.add_parser("run", help="run a single simulated deployment")
    _add_common_options(run_parser)
    run_parser.add_argument(
        "--scheme", default="iniva", choices=sorted(ConsensusConfig.SUPPORTED_AGGREGATIONS)
    )
    run_parser.add_argument("--replicas", type=int, default=21)
    run_parser.add_argument("--batch", type=int, default=100)
    run_parser.add_argument("--payload", type=int, default=64)
    run_parser.add_argument("--load", type=float, default=6_000.0, help="offered load in ops/sec")
    run_parser.add_argument(
        "--rate", type=float, default=None,
        help="offered load in ops/sec (synonym for --load; wins when both given)",
    )
    run_parser.add_argument(
        "--clients", type=int, default=None,
        help="logical client population the requests are attributed to",
    )
    run_parser.add_argument(
        "--arrival", default=None, choices=["poisson", "uniform", "bursty", "diurnal"],
        help="request arrival model (default poisson)",
    )
    run_parser.add_argument("--duration", type=float, default=3.0, help="simulated seconds")
    run_parser.add_argument("--faults", type=int, default=0, help="number of crashed replicas")
    run_parser.add_argument(
        "--leader-policy", default="round-robin", choices=["round-robin", "carousel", "rebop"]
    )
    run_parser.add_argument(
        "--second-chance-timeout", type=float, default=0.005, help="the δ timer in seconds"
    )

    scenario_parser = subparsers.add_parser(
        "scenario", help="run a declarative scenario (preset name or spec file)"
    )
    scenario_parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="built-in preset name or path to a .json/.yaml scenario spec",
    )
    scenario_parser.add_argument(
        "--list", action="store_true", dest="list_presets", help="list the built-in presets"
    )
    scenario_parser.add_argument("--quick", action="store_true", help="reduced duration/committee")
    scenario_parser.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    scenario_parser.add_argument(
        "--format",
        choices=["table", "csv", "json", "markdown", "plot"],
        default="table",
        help="how to print the result on stdout (json = RunResult schema)",
    )
    scenario_parser.add_argument(
        "--output-dir",
        default=None,
        help="also write CSV/JSON/Markdown/plot artifacts into this directory",
    )

    live_parser = subparsers.add_parser(
        "live",
        help="run a scenario on the live asyncio runtime (localhost TCP cluster "
        "with chaos fault injection for adversarial/WAN specs)",
    )
    live_parser.add_argument(
        "spec", help="built-in preset name or path to a .json/.yaml scenario spec"
    )
    live_parser.add_argument(
        "--quick", action="store_true",
        help="shrink the spec and stop after a handful of committed blocks",
    )
    live_parser.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    live_parser.add_argument(
        "--duration", type=float, default=None,
        help="wall-clock seconds to serve traffic (default: the spec's duration)",
    )
    live_parser.add_argument(
        "--target-blocks", type=int, default=None, dest="target_blocks",
        help="stop early once a replica has committed this many blocks",
    )
    live_parser.add_argument(
        "--procs", type=int, default=1,
        help="spread the replicas over this many worker subprocesses (default: tasks in one process)",
    )
    live_parser.add_argument(
        "--rate", type=float, default=None,
        help="override the spec's open-loop client request rate (ops/sec)",
    )
    live_parser.add_argument(
        "--clients", type=int, default=None,
        help="override the spec's logical client population",
    )
    live_parser.add_argument(
        "--arrival", default=None, choices=["poisson", "uniform", "bursty", "diurnal"],
        help="override the spec's arrival model",
    )
    live_parser.add_argument(
        "--format",
        choices=["table", "csv", "json", "markdown", "plot"],
        default="table",
        help="how to print the result on stdout (json = RunResult schema)",
    )
    live_parser.add_argument(
        "--output-dir",
        default=None,
        help="also write CSV/JSON/Markdown/plot artifacts into this directory",
    )

    trace_parser = subparsers.add_parser(
        "trace",
        help="run a scenario with consensus tracing on and print the forensic "
        "report (see repro.observe; --output-dir also writes the JSONL trace "
        "and a Perfetto-loadable Chrome trace)",
    )
    trace_parser.add_argument(
        "spec", help="built-in preset name or path to a .json/.yaml scenario spec"
    )
    trace_parser.add_argument(
        "--runtime", choices=["sim", "live"], default="sim",
        help="which substrate executes the traced run (default sim)",
    )
    trace_parser.add_argument(
        "--quick", action="store_true", help="reduced duration/committee"
    )
    trace_parser.add_argument("--seed", type=int, default=None, help="override the spec's seed")
    trace_parser.add_argument(
        "--sample-rate", type=float, default=1.0, dest="sample_rate",
        help="fraction of views whose hot-path share events are traced "
        "(milestone events are always recorded; default 1.0)",
    )
    trace_parser.add_argument(
        "--capacity", type=int, default=None,
        help="per-tracer event ring capacity (default: the spec's observe.capacity)",
    )
    trace_parser.add_argument(
        "--duration", type=float, default=None,
        help="live runtime only: wall-clock seconds to serve traffic",
    )
    trace_parser.add_argument(
        "--target-blocks", type=int, default=None, dest="target_blocks",
        help="live runtime only: stop early after this many committed blocks",
    )
    trace_parser.add_argument(
        "--procs", type=int, default=1,
        help="live runtime only: spread replicas over worker subprocesses",
    )
    trace_parser.add_argument(
        "--output-dir",
        default=None,
        help="write trace.jsonl, trace_chrome.json and report.md into this directory",
    )

    sweep_parser = subparsers.add_parser(
        "sweep", help="run one scenario per grid cell (cartesian --set product)"
    )
    sweep_parser.add_argument(
        "spec", help="base spec: built-in preset name or path to a .json/.yaml file"
    )
    sweep_parser.add_argument(
        "--set",
        action="append",
        default=[],
        dest="grid",
        metavar="FIELD=V1,V2,...",
        help="sweep a (possibly dotted) spec field over comma-separated values; "
        "repeatable — cells are the cartesian product",
    )
    sweep_parser.add_argument("--quick", action="store_true", help="reduced duration/committee")
    sweep_parser.add_argument(
        "--format",
        choices=["table", "csv", "json", "markdown", "plot"],
        default="table",
        help="how to print the results (json = versioned run-result list document)",
    )
    sweep_parser.add_argument(
        "--output-dir",
        default=None,
        help="also write CSV/JSON/Markdown artifacts into this directory",
    )
    return parser


def _add_common_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true", help="reduced trials/durations")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--format",
        choices=["table", "csv", "json", "markdown", "plot"],
        default="table",
        help="how to print the result on stdout",
    )
    parser.add_argument(
        "--output-dir",
        default=None,
        help="also write CSV/JSON/Markdown/plot artifacts into this directory",
    )


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------
def _render(artifact: FigureArtifact, fmt: str) -> str:
    from repro.experiments.report import rows_to_csv

    if fmt == "csv":
        return rows_to_csv(artifact.rows)
    if fmt == "json":
        # The versioned figure document (schema + metadata + rows) — the
        # figure analogue of the RunResult document run/scenario/live emit.
        return json.dumps(artifact.to_document(), indent=2)
    if fmt == "markdown":
        return artifact.to_markdown()
    if fmt == "plot":
        return artifact.to_plot()
    return artifact.to_table()


def _command_list() -> str:
    lines = ["Reproducible experiments:", ""]
    for experiment in EXPERIMENTS.values():
        lines.append(f"  {experiment.name:<8} {experiment.title}")
    lines.append("")
    lines.append("  run      a single simulated deployment (see `repro run --help`)")
    lines.append("  scenario a declarative campaign (see `repro scenario --list`)")
    lines.append("  live     a scenario on the asyncio TCP cluster (see `repro live --help`)")
    lines.append("  trace    a traced run + forensic report (see `repro trace --help`)")
    lines.append("  sweep    one scenario per --set grid cell (see `repro sweep --help`)")
    return "\n".join(lines)


def _command_scenario_list() -> str:
    from repro.scenarios import PRESETS

    lines = ["Built-in scenario presets:", ""]
    for name in sorted(PRESETS):
        lines.append(f"  {name:<18} {PRESETS[name].get('description', '')}")
    lines.append("")
    lines.append("Run one with `python -m repro scenario <name> [--quick]` (simulated)")
    lines.append("or `python -m repro live <name> [--quick]` (asyncio TCP cluster), or")
    lines.append("pass a path to a JSON/YAML spec file (format: repro.scenarios.ScenarioSpec).")
    return "\n".join(lines)


def _command_scenario(args: argparse.Namespace) -> RunResult:
    return api.run(args.spec, quick=args.quick, seed=args.seed)


def _workload_overrides(args: argparse.Namespace) -> Dict[str, Any]:
    """Dotted spec overrides for the shared --rate/--clients/--arrival flags."""
    overrides: Dict[str, Any] = {}
    if getattr(args, "rate", None) is not None:
        overrides["workload.rate"] = args.rate
    if getattr(args, "clients", None) is not None:
        overrides["workload.num_clients"] = args.clients
    if getattr(args, "arrival", None) is not None:
        overrides["workload.arrival"] = args.arrival
    return overrides


def _command_live(args: argparse.Namespace) -> RunResult:
    return api.run(
        args.spec,
        quick=args.quick,
        seed=args.seed,
        runtime="live",
        overrides=_workload_overrides(args) or None,
        duration=args.duration,
        target_blocks=args.target_blocks,
        procs=args.procs,
    )


def _command_trace(args: argparse.Namespace) -> int:
    """Run a spec with tracing on, validate the trace, print the report."""
    from repro.observe import (
        critical_path,
        forensic_report,
        to_chrome_trace,
        to_jsonl,
        trace_document,
        validate_trace,
    )

    overrides: Dict[str, Any] = {
        "observe.enabled": True,
        "observe.sample_rate": args.sample_rate,
    }
    if args.capacity is not None:
        overrides["observe.capacity"] = args.capacity
    kwargs: Dict[str, Any] = {}
    if args.runtime == "live":
        kwargs.update(
            duration=args.duration,
            target_blocks=args.target_blocks,
            procs=args.procs,
        )
    result = api.run(
        args.spec,
        quick=args.quick,
        seed=args.seed,
        runtime=args.runtime,
        overrides=overrides,
        **kwargs,
    )
    observability = result.observability
    if not observability.get("enabled"):
        print("error: the run produced no trace", file=sys.stderr)
        return 1
    document = trace_document(
        observability["trace"],
        spec_name=result.spec.name,
        seed=result.seed,
        runtime=args.runtime,
    )
    problems = validate_trace(document)
    if problems:
        print("error: trace failed schema validation:", file=sys.stderr)
        for problem in problems:
            print(f"  - {problem}", file=sys.stderr)
        return 1
    paths = critical_path(document["events"])
    report = forensic_report(document, paths=paths)
    print(report)
    if args.output_dir:
        import os

        os.makedirs(args.output_dir, exist_ok=True)
        written = {
            "trace (JSONL)": os.path.join(args.output_dir, "trace.jsonl"),
            "trace (Chrome)": os.path.join(args.output_dir, "trace_chrome.json"),
            "report": os.path.join(args.output_dir, "report.md"),
        }
        with open(written["trace (JSONL)"], "w", encoding="utf-8") as stream:
            stream.write(to_jsonl(document))
        with open(written["trace (Chrome)"], "w", encoding="utf-8") as stream:
            json.dump(to_chrome_trace(document, critical_paths=paths), stream)
        with open(written["report"], "w", encoding="utf-8") as stream:
            stream.write(report)
        print("\nwrote artifacts:")
        for kind, path in sorted(written.items()):
            print(f"  {kind}: {path}")
    return 0


def _parse_sweep_grid(assignments: List[str]) -> Dict[str, List[Any]]:
    """Turn repeated ``--set field=v1,v2`` options into an api.sweep grid."""
    grid: Dict[str, List[Any]] = {}
    for assignment in assignments:
        field, separator, values = assignment.partition("=")
        field = field.strip()
        if not separator or not field or not values.strip():
            raise SystemExit(f"error: --set expects FIELD=V1[,V2,...], got {assignment!r}")
        grid[field] = [parse_scalar(value) for value in values.split(",")]
    return grid


def _sweep_artifact(
    args: argparse.Namespace, cells: List[Dict[str, Any]], results: List[RunResult]
) -> FigureArtifact:
    rows: List[Dict[str, object]] = []
    for cell_overrides, result in zip(cells, results):
        label = " ".join(
            f"{field}={value}" for field, value in _flatten_cell(cell_overrides)
        )
        for row in result.rows():
            row = dict(row)
            row["cell"] = label or "(base)"
            rows.append(row)
    return FigureArtifact(
        name=f"sweep-{results[0].spec.name}" if results else "sweep",
        title=f"Sweep over {args.spec} ({len(results)} cells)",
        rows=rows,
        series_key="cell",
        x="epoch",
        y="throughput_ops",
    )


def _flatten_cell(cell: Dict[str, Any], prefix: str = "") -> List[tuple]:
    pairs: List[tuple] = []
    for key, value in cell.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            pairs.extend(_flatten_cell(value, prefix=f"{dotted}."))
        else:
            pairs.append((dotted, value))
    return pairs


def _command_run(args: argparse.Namespace) -> RunResult:
    duration = min(args.duration, 1.5) if args.quick else args.duration
    rate = args.rate if args.rate is not None else args.load
    workload = WorkloadSpec(
        rate=rate,
        payload_size=args.payload,
        seed=args.seed,
        num_clients=args.clients if args.clients is not None else 4,
        arrival=args.arrival if args.arrival is not None else "poisson",
    )
    spec = ScenarioSpec(
        name="run",
        aggregation=args.scheme,
        batch_size=args.batch,
        leader_policy=args.leader_policy,
        duration=duration,
        warmup=min(0.2, duration / 5),
        seed=args.seed,
        delta=0.0025,
        second_chance_timeout=args.second_chance_timeout,
        view_timeout=0.1 if args.quick else 0.25,
        committee=CommitteeSpec(size=args.replicas),
        topology=TopologySpec(kind="normal", intra_delay=0.0005, jitter=0.2),
        workload=workload,
        faults=FaultSpec(crashes=args.faults, crash_seed=args.seed, protect_leader=False),
    )
    return api.run(spec)


def _run_artifact(args: argparse.Namespace, result: RunResult) -> FigureArtifact:
    metrics = result.metrics
    row: Dict[str, object] = {
        "configuration": f"{args.scheme} n={args.replicas} faults={args.faults}"
    }
    row.update(metrics.row())
    row["committed_blocks"] = metrics.committed_blocks
    return FigureArtifact(name="run", title="Single deployment run", rows=[row])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        print(_command_list())
        return 0

    result: Optional[RunResult] = None
    if args.command == "scenario":
        if args.list_presets:
            print(_command_scenario_list())
            return 0
        if args.spec is None:
            print(_command_scenario_list())
            print("\nerror: give a preset name or spec file (or --list)")
            return 2
        result = _command_scenario(args)
        artifact = result.artifact()
    elif args.command == "live":
        result = _command_live(args)
        artifact = result.artifact()
    elif args.command == "trace":
        return _command_trace(args)
    elif args.command == "sweep":
        grid = _parse_sweep_grid(args.grid)
        cells = api.expand_grid(grid or None)
        results = api.sweep(args.spec, grid or None, quick=args.quick)
        sweep_artifact = None
        if args.format != "json" or args.output_dir:
            sweep_artifact = _sweep_artifact(args, cells, results)
        if args.format == "json":
            document = {
                "schema": RESULT_LIST_SCHEMA,
                "runs": [run.to_dict() for run in results],
            }
            print(json.dumps(document, indent=2))
        else:
            print(_render(sweep_artifact, args.format))
        if args.output_dir:
            _write_artifacts(sweep_artifact, args.output_dir)
        return 0
    elif args.command == "run":
        result = _command_run(args)
        artifact = _run_artifact(args, result)
    else:
        extra = {}
        if args.command == "table1":
            extra["attacker_power"] = args.attacker_power
        artifact = api.figure(args.command, quick=args.quick, seed=args.seed, **extra)

    if result is not None and args.format == "json":
        # A single run serialises as the full RunResult schema document.
        print(result.to_json())
    else:
        print(_render(artifact, args.format))
    if args.output_dir:
        _write_artifacts(artifact, args.output_dir)
    return 0


def _write_artifacts(artifact: FigureArtifact, output_dir: str) -> None:
    paths = artifact.write(output_dir)
    print("\nwrote artifacts:")
    for kind, path in sorted(paths.items()):
        print(f"  {kind}: {path}")


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
