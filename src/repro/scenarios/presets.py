"""The built-in scenario catalogue.

Each preset is stored as the plain dictionary form of its spec, so
loading one exercises the same :meth:`ScenarioSpec.from_dict` path a user
spec file takes — the presets double as living documentation of the spec
format.  ``python -m repro scenario --list`` prints this catalogue.
"""

from __future__ import annotations

from typing import Dict, List

from repro.scenarios.spec import ScenarioSpec

__all__ = ["PRESETS", "load_preset", "preset_names"]


PRESETS: Dict[str, dict] = {
    "rack-baseline": {
        "name": "rack-baseline",
        "description": "the paper's testbed: one rack, sub-ms latency, no faults",
        "duration": 4.0,
        "committee": {"size": 21},
        "topology": {"kind": "normal", "intra_delay": 0.0005, "jitter": 0.2},
        "workload": {"rate": 4000.0, "payload_size": 64},
    },
    "wan-5-regions": {
        "name": "wan-5-regions",
        "description": "committee spread over five cloud regions with thin links",
        "duration": 6.0,
        "warmup": 1.0,
        "committee": {"size": 20},
        "topology": {
            "kind": "wan",
            "regions": 5,
            "intra_delay": 0.0005,
            "jitter": 0.1,
            "bandwidth_bytes_per_sec": 25_000_000.0,
        },
        "workload": {"rate": 1000.0, "payload_size": 64},
    },
    "lossy-wan": {
        "name": "lossy-wan",
        "description": "three regions, 3% message loss on every link",
        "duration": 5.0,
        "committee": {"size": 12},
        "topology": {"kind": "wan", "regions": 3, "loss_probability": 0.03},
        "workload": {"rate": 800.0},
    },
    "partition-heal": {
        "name": "partition-heal",
        "description": "two replicas cut off mid-run, links healed later",
        "duration": 4.5,
        "warmup": 0.4,
        "committee": {"size": 9},
        "topology": {"kind": "normal", "intra_delay": 0.0005},
        "faults": {
            "partitions": [
                {"at": 1.5, "heal_at": 3.0, "groups": [[0, 1, 2, 3, 4, 5, 6], [7, 8]]}
            ]
        },
        "workload": {"rate": 2000.0},
    },
    "flash-churn": {
        "name": "flash-churn",
        "description": "six rapid epochs re-selected from a 48-validator pool",
        "duration": 6.0,
        "warmup": 0.2,
        "committee": {"size": 13, "validators": 48, "stake_distribution": "zipf",
                      "stake_skew": 0.8},
        "churn": {"epochs": 6, "views_per_epoch": 20, "reward_feedback": True,
                  "reward_per_block": 2.0},
        "workload": {"rate": 2000.0},
    },
    "stake-skew": {
        "name": "stake-skew",
        "description": "heavily skewed stake; rewards compound across epochs",
        "duration": 4.0,
        "warmup": 0.2,
        "committee": {"size": 13, "validators": 40, "stake_distribution": "zipf",
                      "stake_skew": 1.6},
        "churn": {"epochs": 4, "reward_feedback": True, "reward_per_block": 5.0},
        "workload": {"rate": 2000.0},
    },
    "omission-cartel": {
        "name": "omission-cartel",
        "description": "four corrupted aggregators censor one victim's votes",
        "duration": 4.0,
        "committee": {"size": 15},
        "attack": {"strategy": "omission", "attackers": 4, "victim": 2},
        "workload": {"rate": 2000.0},
    },
    "crash-storm": {
        "name": "crash-storm",
        "description": "a third of the committee crashes at once mid-run",
        "duration": 5.0,
        "view_timeout": 0.1,
        "committee": {"size": 21},
        "faults": {"crashes": 6, "crash_at": 2.0},
        "workload": {"rate": 2000.0},
    },
    "crash-restart": {
        "name": "crash-restart",
        "description": "one replica crashes, restarts and catches up via state sync",
        "duration": 4.0,
        "view_timeout": 0.15,
        "committee": {"size": 7},
        "faults": {"crashes": 1, "crash_at": 1.2, "restart_at": 2.4},
        "resilience": {"catchup": True, "heartbeat_interval": 0.05,
                       "phi_threshold": 6.0},
        "workload": {"rate": 2000.0},
    },
    "open-loop": {
        "name": "open-loop",
        "description": "open-loop client swarm with bounded admission (live runtime)",
        "duration": 4.0,
        "committee": {"size": 7},
        "topology": {"kind": "normal", "intra_delay": 0.0005},
        "workload": {
            "rate": 500.0,
            "payload_size": 64,
            "num_clients": 16,
            "arrival": "poisson",
            "max_pending": 20_000,
            "client_window": 2_000,
        },
    },
    "bandwidth-crunch": {
        "name": "bandwidth-crunch",
        "description": "fat blocks through 200 KB/s links; queuing dominates",
        "duration": 4.0,
        "batch_size": 200,
        "committee": {"size": 9},
        "topology": {
            "kind": "constant",
            "intra_delay": 0.0005,
            "bandwidth_bytes_per_sec": 200_000.0,
        },
        "workload": {"rate": 3000.0, "payload_size": 256},
    },
}


def preset_names() -> List[str]:
    return list(PRESETS)


def load_preset(name: str) -> ScenarioSpec:
    """The named built-in scenario as a fresh :class:`ScenarioSpec`."""
    try:
        data = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise KeyError(f"unknown scenario preset {name!r} (known: {known})") from None
    return ScenarioSpec.from_dict(data)
