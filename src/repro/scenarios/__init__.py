"""Declarative scenario engine for adversarial and WAN campaigns.

One :class:`ScenarioSpec` composes committee size and stake distribution,
topology and per-link bandwidth, churn across epochs, crash/partition
schedules, a Byzantine strategy mix and the client workload — and
compiles into a configured, fully seeded simulator run:

    >>> from repro.scenarios import load_preset, run_scenario
    >>> result = run_scenario(load_preset("partition-heal"), quick=True)
    >>> result.summary()["messages_blocked"] > 0
    True

Specs round-trip through dicts, JSON and YAML-lite files, so campaigns
live in version control instead of copy-pasted Python; the built-in
catalogue (``python -m repro scenario --list``) covers WAN spreads,
churn, partitions, crash storms, lossy links, bandwidth crunches and
omission cartels.

The :mod:`repro.api` facade is the preferred entry point
(``repro.run``/``repro.sweep`` accept preset names, spec files and
dicts); ``run_scenario`` returns the unified
:class:`~repro.results.RunResult` (``ScenarioResult`` and
``EpochOutcome`` remain as aliases).
"""

from repro.scenarios.engine import (
    CompiledScenario,
    EpochOutcome,
    ScenarioResult,
    build_latency_model,
    build_scenario_deployment,
    compile_scenario,
    run_scenario,
)
from repro.scenarios.presets import PRESETS, load_preset, preset_names
from repro.scenarios.spec import (
    AttackSpec,
    ChurnSpec,
    CommitteeSpec,
    FaultSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
    parse_yaml_lite,
)

__all__ = [
    "AttackSpec",
    "ChurnSpec",
    "CommitteeSpec",
    "CompiledScenario",
    "EpochOutcome",
    "FaultSpec",
    "PRESETS",
    "ScenarioResult",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "build_latency_model",
    "build_scenario_deployment",
    "compile_scenario",
    "load_preset",
    "parse_yaml_lite",
    "preset_names",
    "run_scenario",
]
