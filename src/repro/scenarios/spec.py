"""Declarative scenario specifications.

A :class:`ScenarioSpec` is one complete experiment description: committee
composition and stake distribution, network topology and link capacity,
churn across epochs, crash/partition schedules, a Byzantine strategy mix
and the client workload.  Specs are plain frozen dataclasses so they can
be built in code, round-tripped through dictionaries, or loaded from JSON
or YAML-lite files — and then compiled into a configured simulator run by
:mod:`repro.scenarios.engine`.

The YAML-lite dialect (no external dependency) supports nested mappings
by indentation, ``- `` block lists, inline ``[a, b, [c]]`` lists, comments
and the usual scalars; it covers everything a scenario file needs::

    name: my-wan
    topology:
      kind: wan
      regions: 3
    faults:
      partitions:
        - at: 1.0
          heal_at: 2.0
          groups: [[0, 1, 2, 3, 4], [5, 6, 7, 8]]
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.simnet.failures import PartitionEvent

__all__ = [
    "AttackSpec",
    "ChurnSpec",
    "CommitteeSpec",
    "FaultSpec",
    "ObserveSpec",
    "ResilienceSpec",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "parse_scalar",
    "parse_yaml_lite",
]


# ---------------------------------------------------------------------------
# Component specs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CommitteeSpec:
    """Committee size and the stake pool it is drawn from.

    Attributes:
        size: Number of replicas per epoch committee.
        validators: Size of the staking pool committees are selected from;
            ``None`` (or == ``size``) means a fixed committee with no
            selection step.
        stake_distribution: ``"uniform"``, ``"zipf"`` (stake of the r-th
            validator proportional to ``1 / r**stake_skew``) or
            ``"linear"`` (stake proportional to rank).
        stake_skew: Skew parameter for non-uniform distributions.
        base_stake: Stake units held by the richest validator.
    """

    size: int = 21
    validators: Optional[int] = None
    stake_distribution: str = "uniform"
    stake_skew: float = 1.0
    base_stake: float = 100.0

    SUPPORTED_DISTRIBUTIONS = ("uniform", "zipf", "linear")

    def __post_init__(self) -> None:
        if self.size < 4:
            raise ValueError("committee needs at least four replicas")
        if self.validators is not None and self.validators < self.size:
            raise ValueError("validator pool cannot be smaller than the committee")
        if self.stake_distribution not in self.SUPPORTED_DISTRIBUTIONS:
            raise ValueError(f"unknown stake distribution {self.stake_distribution!r}")
        if self.stake_skew < 0:
            raise ValueError("stake skew cannot be negative")
        if self.base_stake <= 0:
            raise ValueError("base stake must be positive")

    @property
    def pool_size(self) -> int:
        return self.validators if self.validators is not None else self.size

    def stakes(self) -> List[float]:
        """The initial stake of every validator in the pool, by rank."""
        pool = self.pool_size
        if self.stake_distribution == "zipf":
            return [self.base_stake / (rank + 1) ** self.stake_skew for rank in range(pool)]
        if self.stake_distribution == "linear":
            return [self.base_stake * (pool - rank) / pool for rank in range(pool)]
        return [self.base_stake] * pool


@dataclass(frozen=True)
class TopologySpec:
    """Where the replicas sit and what the links between them cost.

    Attributes:
        kind: ``"constant"``, ``"normal"`` (single rack, the paper's
            testbed), ``"rack"`` (multi-rack two-tier), ``"wan"``
            (region-level latency matrix) or ``"matrix"`` (explicit
            per-process matrix).
        regions: Number of racks/regions for ``rack``/``wan``.
        intra_delay: Mean one-way delay between co-located processes.
        inter_delay: Mean cross-rack delay (``rack`` only).
        jitter: Relative standard deviation on the sampled delays.
        matrix: Region-level (``wan``) or per-process (``matrix``)
            all-pairs one-way delay matrix; ``wan`` defaults to a built-in
            five-region cloud matrix.
        bandwidth_bytes_per_sec: Per-link capacity with FIFO queuing
            (``None`` disables transmission delay).
        loss_probability: Probability of dropping any individual message.
    """

    kind: str = "normal"
    regions: int = 1
    intra_delay: float = 0.0005
    inter_delay: float = 0.02
    jitter: float = 0.1
    matrix: Optional[Tuple[Tuple[float, ...], ...]] = None
    bandwidth_bytes_per_sec: Optional[float] = None
    loss_probability: float = 0.0

    SUPPORTED_KINDS = ("constant", "normal", "rack", "wan", "matrix")

    def __post_init__(self) -> None:
        if self.kind not in self.SUPPORTED_KINDS:
            raise ValueError(f"unknown topology kind {self.kind!r}")
        if self.regions < 1:
            raise ValueError("need at least one region")
        if self.intra_delay <= 0 or self.inter_delay <= 0:
            raise ValueError("delays must be positive")
        if not 0 <= self.jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if not 0 <= self.loss_probability < 1:
            raise ValueError("loss probability must be in [0, 1)")
        if self.bandwidth_bytes_per_sec is not None and self.bandwidth_bytes_per_sec <= 0:
            raise ValueError("bandwidth must be positive")
        if self.matrix is not None:
            object.__setattr__(
                self, "matrix", tuple(tuple(float(v) for v in row) for row in self.matrix)
            )
        if self.kind == "matrix" and self.matrix is None:
            raise ValueError("matrix topology requires an explicit latency matrix")
        if self.kind == "wan":
            if self.matrix is not None:
                # The matrix defines the region count; `regions` may restate
                # it (or stay at its default of 1) but must not contradict it.
                if self.regions not in (1, len(self.matrix)):
                    raise ValueError(
                        f"regions={self.regions} contradicts the {len(self.matrix)}-region matrix"
                    )
                object.__setattr__(self, "regions", len(self.matrix))
            elif self.regions < 2:
                raise ValueError(
                    "a WAN topology needs at least two regions (or an explicit matrix)"
                )


@dataclass(frozen=True)
class FaultSpec:
    """Crash schedule, crash-restart churn and timed partitions.

    Attributes:
        crashes: Number of replicas crashed (chosen pseudo-randomly from
            the crash seed, never the attack victim).
        crash_at: Virtual time the crashes happen.
        restart_at: Virtual time the crashed cohort recovers (crash-restart
            churn); ``None`` (the default) leaves them crash-stopped.
        crash_seed: Seed for the crash draw; ``None`` uses the scenario's
            seed.
        crash_exclude: Extra process ids protected from crashing.
        protect_leader: Keep process 0 (the initial leader) out of the
            crash draw.  The legacy per-figure harnesses allowed the
            leader to crash, so the figure specs switch this off.
        partitions: Timed :class:`PartitionEvent` s applied via link-level
            suppression (each epoch run gets the same schedule).
    """

    crashes: int = 0
    crash_at: float = 0.0
    restart_at: Optional[float] = None
    crash_seed: Optional[int] = None
    crash_exclude: Tuple[int, ...] = ()
    protect_leader: bool = True
    partitions: Tuple[PartitionEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.crashes < 0:
            raise ValueError("crash count cannot be negative")
        if self.crash_at < 0:
            raise ValueError("crash time cannot be negative")
        if self.restart_at is not None and self.restart_at <= self.crash_at:
            raise ValueError("restart time must be after the crash time")
        object.__setattr__(self, "crash_exclude", tuple(self.crash_exclude))
        object.__setattr__(self, "partitions", tuple(self.partitions))


@dataclass(frozen=True)
class AttackSpec:
    """The Byzantine strategy mix attached to the deployment.

    Attributes:
        strategy: ``"none"`` or ``"omission"`` (a coalition of corrupted
            Iniva aggregators running the paper's targeted vote-omission
            attack from :mod:`repro.attacks.byzantine`).
        attackers: Coalition size (chosen pseudo-randomly, never the
            victim or the initial leader).
        victim: Process id whose vote the coalition censors.
    """

    strategy: str = "none"
    attackers: int = 0
    victim: int = 1

    SUPPORTED_STRATEGIES = ("none", "omission")

    def __post_init__(self) -> None:
        if self.strategy not in self.SUPPORTED_STRATEGIES:
            raise ValueError(f"unknown attack strategy {self.strategy!r}")
        if self.attackers < 0:
            raise ValueError("attacker count cannot be negative")
        if self.victim < 0:
            raise ValueError("victim must be a valid process id")
        if self.strategy != "none" and self.attackers == 0:
            raise ValueError("an active attack needs at least one attacker")


@dataclass(frozen=True)
class WorkloadSpec:
    """Open-loop client workload (see :class:`ClientWorkload`).

    ``arrival`` selects the arrival model — one of
    :data:`~repro.clients.arrivals.ARRIVAL_MODELS` (``"poisson"``,
    ``"uniform"``, ``"bursty"``, ``"diurnal"``); ``burst_factor`` and
    ``arrival_period`` shape the time-varying models.  ``seed`` pins the
    arrival-process RNG independently of the scenario seed; ``None`` (the
    default) derives it from the run's seed so churn epochs each see
    fresh arrivals.

    ``preload`` submits the whole request volume (``rate * duration``
    requests) at time zero instead of as an arrival process.  Batching
    then no longer depends on arrival timing, which is what makes a
    fixed-seed run finalize *the same block ids* under the deterministic
    sim runtime and the live asyncio cluster — the property the
    cross-runtime equivalence tests pin.  Under the live runtime
    ``preload`` selects deterministic replay mode; with ``preload=False``
    (the default) a real open-loop client swarm drives the cluster over
    TCP, rejected or late requests and all.

    ``max_pending`` / ``client_window`` bound the live mempool's
    admission (queue depth / per-client in-flight fairness); 0 disables
    a bound.  ``jitter`` is the deprecated ancestor of ``arrival``
    (``True`` → ``"poisson"``, ``False`` → ``"uniform"``): passing it
    explicitly warns and maps onto ``arrival``.
    """

    rate: float = 2000.0
    payload_size: int = 64
    num_clients: int = 4
    jitter: Optional[bool] = None
    seed: Optional[int] = None
    preload: bool = False
    arrival: str = "poisson"
    burst_factor: float = 4.0
    arrival_period: float = 1.0
    max_pending: int = 0
    client_window: int = 0

    def __post_init__(self) -> None:
        if self.jitter is not None:
            import warnings

            warnings.warn(
                "WorkloadSpec(jitter=...) is deprecated; pass "
                "arrival='poisson' (jitter=True) or arrival='uniform' "
                "(jitter=False) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            object.__setattr__(self, "arrival", "poisson" if self.jitter else "uniform")
            # Reset the sentinel so spec round-trips do not warn again.
            object.__setattr__(self, "jitter", None)
        if self.rate < 0:
            raise ValueError("workload rate cannot be negative")
        if self.payload_size < 0:
            raise ValueError("payload size cannot be negative")
        from repro.clients.arrivals import ARRIVAL_MODELS

        if self.arrival not in ARRIVAL_MODELS:
            raise ValueError(
                f"unknown arrival model {self.arrival!r} "
                f"(expected one of {', '.join(ARRIVAL_MODELS)})"
            )
        if self.burst_factor <= 1.0:
            raise ValueError("burst factor must exceed 1")
        if self.arrival_period <= 0:
            raise ValueError("arrival period must be positive")
        if self.max_pending < 0 or self.client_window < 0:
            raise ValueError("admission bounds cannot be negative")


@dataclass(frozen=True)
class ChurnSpec:
    """Committee churn across epochs.

    Each epoch re-selects the committee from the stake pool (weighted by
    current stake) and runs ``duration / epochs`` virtual seconds; block
    rewards are optionally compounded back into the registry so selection
    probabilities drift over time.

    Attributes:
        epochs: Number of committee generations to simulate.
        views_per_epoch: Epoch length in views (metadata for the epoch
            schedule; the wall split is time-based).
        reward_feedback: Compound per-epoch block rewards into stake.
        reward_per_block: Stake units distributed per committed block.
    """

    epochs: int = 1
    views_per_epoch: int = 100
    reward_feedback: bool = True
    reward_per_block: float = 1.0

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("need at least one epoch")
        if self.views_per_epoch < 1:
            raise ValueError("views per epoch must be positive")
        if self.reward_per_block < 0:
            raise ValueError("reward cannot be negative")


@dataclass(frozen=True)
class ResilienceSpec:
    """Self-healing knobs of the live runtime (see :mod:`repro.resilience`).

    The defaults are tuned for localhost clusters: heartbeats every 50 ms,
    suspicion at phi 8 (odds ~1e-8 the silence is jitter), generous resend
    buffering.  ``catchup`` also applies under the sim runtime (it gates
    ``ConsensusConfig.sync_on_recover``), so sim/live parity holds for
    crash-restart scenarios.

    Attributes:
        heartbeat_interval: Seconds of link idleness before an explicit
            heartbeat is sent (any payload frame doubles as one).
        phi_threshold: Phi-accrual suspicion level at which a peer is
            declared suspect (raised/cleared transitions are recorded in
            ``RunResult.resilience``).
        detector_window: Inter-arrival samples per peer in the detector.
        catchup: Recovering replicas fetch the committed-block suffix
            from a live peer (``SyncRequest``/``SyncResponse``).
        max_sync_blocks: Most blocks one sync response carries.
        resend_buffer: Unacknowledged envelopes kept per peer session for
            resend-on-reconnect; overflow drops oldest (counted).
        reconnect_base / reconnect_cap: Exponential backoff bounds for
            session reconnects, seconds.
        ready_timeout: Seconds the readiness barrier waits for every peer
            session to establish before starting the protocol anyway.
        quiesce_after: End the serve window early once no node has made
            commit progress for this many seconds (``None`` disables the
            watchdog and keeps the fixed wall budget).
        worker_restart_attempts: Restarts the ``--procs`` supervisor
            grants one worker subprocess (0 disables restarting).
        worker_restart_backoff: Base backoff between worker restarts.
    """

    heartbeat_interval: float = 0.05
    phi_threshold: float = 8.0
    detector_window: int = 32
    catchup: bool = True
    max_sync_blocks: int = 64
    resend_buffer: int = 512
    reconnect_base: float = 0.01
    reconnect_cap: float = 0.25
    ready_timeout: float = 5.0
    quiesce_after: Optional[float] = None
    worker_restart_attempts: int = 2
    worker_restart_backoff: float = 0.25

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.phi_threshold <= 0:
            raise ValueError("phi threshold must be positive")
        if self.detector_window < 2:
            raise ValueError("detector window needs at least two samples")
        if self.max_sync_blocks < 1:
            raise ValueError("max_sync_blocks must be positive")
        if self.resend_buffer < 1:
            raise ValueError("resend buffer must hold at least one envelope")
        if self.reconnect_base <= 0 or self.reconnect_cap < self.reconnect_base:
            raise ValueError("reconnect backoff bounds must satisfy 0 < base <= cap")
        if self.ready_timeout <= 0:
            raise ValueError("ready timeout must be positive")
        if self.quiesce_after is not None and self.quiesce_after <= 0:
            raise ValueError("quiesce_after must be positive (or None to disable)")
        if self.worker_restart_attempts < 0:
            raise ValueError("worker restart attempts cannot be negative")
        if self.worker_restart_backoff < 0:
            raise ValueError("worker restart backoff cannot be negative")


@dataclass(frozen=True)
class ObserveSpec:
    """Observability knobs (see :mod:`repro.observe`).

    Tracing is off by default: the hot path pays one attribute load and
    an ``is None`` check per emission site and nothing else.  With
    ``enabled=True`` every replica records consensus events into a
    bounded ring buffer; ``sample_rate < 1`` thins hot-path events
    (share arrivals, client admissions) by deterministic view/tick
    sampling so sim and live sample the *same* subset.

    Attributes:
        enabled: Record consensus events into per-replica tracers and
            surface the merged trace as ``RunResult.observability``.
        capacity: Ring-buffer size per tracer; overflow drops oldest
            (counted in the snapshot, never an error).
        sample_rate: Fraction of views/ticks whose hot-path events are
            traced; milestone events (propose/qc/commit/view) are
            always recorded.
    """

    enabled: bool = False
    capacity: int = 4096
    sample_rate: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("trace capacity must be positive")
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError("sample rate must be in (0, 1]")


# ---------------------------------------------------------------------------
# The scenario spec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative adversarial/WAN campaign, ready to compile and run."""

    name: str
    description: str = ""
    aggregation: str = "iniva"
    signature_scheme: str = "hashsig"
    batch_size: int = 100
    leader_policy: str = "round-robin"
    duration: float = 4.0
    warmup: float = 0.5
    seed: int = 1
    # Protocol timers; ``None`` derives them from the topology's latency
    # bound so WAN scenarios don't need hand-tuned Δ values.
    delta: Optional[float] = None
    second_chance_timeout: Optional[float] = None
    view_timeout: Optional[float] = None
    # Tree shape: internal aggregators; ``None`` is the balanced default.
    num_internal: Optional[int] = None
    # Hot-path pacing and verification knobs (see ConsensusConfig).  All
    # default off: the paper-faithful timer-paced, per-share-verified
    # behaviour the figures and goldens pin.
    #
    # ``optimistic_responsiveness`` enters a view the moment its QC forms
    # instead of waiting out the 2Δ propose delay (timers stay armed as
    # the fallback).  ``batch_verification`` defers share checks at
    # collectors and batches them into one verify_batch call (under
    # ``bls`` the RLC check: ~2 pairings for any number of shares).
    # ``verification_offload`` runs those batched checks through
    # ``Runtime.offload`` — a worker pool under the live runtime, inline
    # under sim so simulated runs stay deterministic.
    optimistic_responsiveness: bool = False
    batch_verification: bool = False
    verification_offload: bool = False
    # Extra ConsensusConfig knobs for baseline schemes (gossip fanout,
    # Handel levels, Kauri fallback, ablation switches ...), stored as a
    # sorted tuple of pairs so the spec stays hashable; accepts a mapping.
    scheme_params: Tuple[Tuple[str, Any], ...] = ()
    committee: CommitteeSpec = field(default_factory=CommitteeSpec)
    topology: TopologySpec = field(default_factory=TopologySpec)
    faults: FaultSpec = field(default_factory=FaultSpec)
    attack: AttackSpec = field(default_factory=AttackSpec)
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    resilience: ResilienceSpec = field(default_factory=ResilienceSpec)
    observe: ObserveSpec = field(default_factory=ObserveSpec)

    #: ConsensusConfig fields the spec already controls through dedicated
    #: fields — they may not be smuggled in through ``scheme_params``.
    RESERVED_SCHEME_PARAMS = frozenset(
        {
            "committee_size",
            "batch_size",
            "payload_size",
            "aggregation",
            "signature_scheme",
            "leader_policy",
            "delta",
            "second_chance_timeout",
            "view_timeout",
            "seed",
            "num_internal",
            "cpu_model",
            "sync_on_recover",
            "max_sync_blocks",
            "optimistic_responsiveness",
            "batch_verification",
            "verification_offload",
        }
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.warmup < 0:
            raise ValueError("warmup cannot be negative")
        if self.num_internal is not None and self.num_internal < 1:
            raise ValueError("num_internal must be positive")
        params = self.scheme_params
        if isinstance(params, Mapping):
            params = tuple(sorted(params.items()))
        else:
            params = tuple(sorted((str(key), value) for key, value in params))
        object.__setattr__(self, "scheme_params", params)
        from repro.consensus.config import ConsensusConfig

        known = {f.name for f in fields(ConsensusConfig)}
        for key, _ in params:
            if key in self.RESERVED_SCHEME_PARAMS:
                raise ValueError(
                    f"scheme param {key!r} is controlled by a dedicated spec field"
                )
            if key not in known:
                raise ValueError(f"unknown scheme param {key!r}")
        if self.attack.strategy == "omission" and self.aggregation != "iniva":
            raise ValueError("the omission attack corrupts Iniva aggregators")
        if self.attack.strategy != "none" and self.attack.victim >= self.committee.size:
            raise ValueError("victim must be inside the committee")
        for event in self.faults.partitions:
            max_pid = max((pid for group in event.groups for pid in group), default=0)
            if max_pid >= self.committee.size:
                raise ValueError("partition group references a process outside the committee")

    # -- convenience -----------------------------------------------------------
    def with_(self, **overrides: Any) -> "ScenarioSpec":
        """A copy with overrides; nested specs also accept partial dicts.

        ``spec.with_(aggregation="star", faults={"crashes": 4})`` merges
        the given keys over the existing nested spec, which is what lets
        the examples stay one-liners.
        """
        nested = {
            "committee": CommitteeSpec,
            "topology": TopologySpec,
            "faults": FaultSpec,
            "attack": AttackSpec,
            "workload": WorkloadSpec,
            "churn": ChurnSpec,
            "resilience": ResilienceSpec,
            "observe": ObserveSpec,
        }
        converted: Dict[str, Any] = {}
        for key, value in overrides.items():
            if key in nested and isinstance(value, Mapping):
                current = _spec_to_dict(getattr(self, key))
                current.update(value)
                if key == "faults":
                    converted[key] = _fault_spec_from_dict(current)
                else:
                    converted[key] = _spec_from_dict(nested[key], current)
            elif key == "scheme_params" and isinstance(value, Mapping):
                merged = dict(self.scheme_params)
                merged.update(value)
                converted[key] = merged
            else:
                converted[key] = value
        return replace(self, **converted)

    def quick(self) -> "ScenarioSpec":
        """A shrunken copy that finishes in seconds (for --quick / CI).

        Durations shrink, event times scale proportionally so partitions
        and crashes still land inside the run, committees cap at 13 (never
        below what explicit partition groups reference), and crash counts
        clamp to the new committee's fault budget.
        """
        # High-latency topologies need several protocol rounds' worth of
        # virtual time (Δ covers a wide-area hop), so their quick window
        # is longer; sub-millisecond topologies commit plenty in 1.2 s.
        worst_hop = self.topology.intra_delay
        if self.topology.kind in ("rack", "wan", "matrix"):
            worst_hop = max(
                worst_hop,
                self.topology.inter_delay,
                max((v for row in (self.topology.matrix or ()) for v in row), default=0.0),
            )
        if self.topology.bandwidth_bytes_per_sec:
            # Thin links make serialization part of the hop: timers scale
            # with one proposal's transmission time (see compile_scenario).
            worst_hop += (
                self.batch_size * self.workload.payload_size
                / self.topology.bandwidth_bytes_per_sec
            )
        quick_window = 3.0 if worst_hop > 0.01 else 1.2
        duration = min(self.duration, quick_window)
        factor = duration / self.duration
        size = min(self.committee.size, 13)
        for event in self.faults.partitions:
            max_pid = max((pid for group in event.groups for pid in group), default=0)
            size = max(size, max_pid + 1)
        if self.attack.strategy != "none":
            size = max(size, self.attack.victim + 1, self.attack.attackers + 2)
        max_faulty = size - ((2 * size) // 3 + 1)
        committee = replace(
            self.committee,
            size=size,
            validators=None
            if self.committee.validators is None
            else max(size, min(self.committee.validators, 3 * size)),
        )
        faults = replace(
            self.faults,
            crashes=min(self.faults.crashes, max_faulty),
            crash_at=self.faults.crash_at * factor,
            restart_at=None if self.faults.restart_at is None
            else self.faults.restart_at * factor,
            partitions=tuple(event.scaled(factor) for event in self.faults.partitions),
        )
        return replace(
            self,
            duration=duration,
            warmup=min(self.warmup * factor, 0.2),
            committee=committee,
            faults=faults,
            workload=replace(self.workload, rate=min(self.workload.rate, 2500.0)),
            churn=replace(self.churn, epochs=min(self.churn.epochs, 2)),
        )

    # -- dict / file round-tripping ---------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "description": self.description,
            "aggregation": self.aggregation,
            "signature_scheme": self.signature_scheme,
            "batch_size": self.batch_size,
            "leader_policy": self.leader_policy,
            "duration": self.duration,
            "warmup": self.warmup,
            "seed": self.seed,
            "delta": self.delta,
            "second_chance_timeout": self.second_chance_timeout,
            "view_timeout": self.view_timeout,
            "num_internal": self.num_internal,
            "optimistic_responsiveness": self.optimistic_responsiveness,
            "batch_verification": self.batch_verification,
            "verification_offload": self.verification_offload,
            "scheme_params": dict(self.scheme_params),
            "committee": _spec_to_dict(self.committee),
            "topology": _spec_to_dict(self.topology),
            "faults": _spec_to_dict(self.faults),
            "attack": _spec_to_dict(self.attack),
            "workload": _spec_to_dict(self.workload),
            "churn": _spec_to_dict(self.churn),
            "resilience": _spec_to_dict(self.resilience),
            "observe": _spec_to_dict(self.observe),
        }
        data["faults"]["partitions"] = [
            {"at": event.at, "groups": [list(group) for group in event.groups],
             "heal_at": event.heal_at}
            for event in self.faults.partitions
        ]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown scenario keys: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {
            key: value
            for key, value in data.items()
            if key
            not in (
                "committee",
                "topology",
                "faults",
                "attack",
                "workload",
                "churn",
                "resilience",
                "observe",
            )
        }
        if "committee" in data:
            kwargs["committee"] = _spec_from_dict(CommitteeSpec, data["committee"])
        if "topology" in data:
            kwargs["topology"] = _spec_from_dict(TopologySpec, data["topology"])
        if "faults" in data:
            kwargs["faults"] = _fault_spec_from_dict(data["faults"])
        if "attack" in data:
            kwargs["attack"] = _spec_from_dict(AttackSpec, data["attack"])
        if "workload" in data:
            kwargs["workload"] = _spec_from_dict(WorkloadSpec, data["workload"])
        if "churn" in data:
            kwargs["churn"] = _spec_from_dict(ChurnSpec, data["churn"])
        if "resilience" in data:
            kwargs["resilience"] = _spec_from_dict(ResilienceSpec, data["resilience"])
        if "observe" in data:
            kwargs["observe"] = _spec_from_dict(ObserveSpec, data["observe"])
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_yaml(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(parse_yaml_lite(text))

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ScenarioSpec":
        """Load a spec file; the format follows the file extension."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix.lower() == ".json":
            return cls.from_json(text)
        return cls.from_yaml(text)


def _spec_to_dict(spec: Any) -> Dict[str, Any]:
    return {f.name: getattr(spec, f.name) for f in fields(spec)}


def _spec_from_dict(cls: type, data: Mapping[str, Any]) -> Any:
    known = {f.name for f in fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown {cls.__name__} keys: {sorted(unknown)}")
    return cls(**dict(data))


def _fault_spec_from_dict(data: Mapping[str, Any]) -> FaultSpec:
    data = dict(data)
    events = []
    for item in data.pop("partitions", ()):
        if isinstance(item, PartitionEvent):
            events.append(item)
        else:
            extra = set(item) - {"at", "groups", "heal_at"}
            if extra:
                raise ValueError(f"unknown partition keys: {sorted(extra)}")
            events.append(
                PartitionEvent(
                    at=float(item["at"]),
                    groups=tuple(tuple(int(pid) for pid in group) for group in item["groups"]),
                    heal_at=None if item.get("heal_at") is None else float(item["heal_at"]),
                )
            )
    spec = _spec_from_dict(FaultSpec, data)
    return replace(spec, partitions=tuple(events))


# ---------------------------------------------------------------------------
# YAML-lite parser
# ---------------------------------------------------------------------------
def parse_yaml_lite(text: str) -> Dict[str, Any]:
    """Parse the YAML subset scenario files use into nested dicts/lists.

    Supported: nested mappings by indentation, ``- `` block lists (scalar
    items or inline maps with continuation lines), inline ``[...]`` lists
    (arbitrarily nested), ``#`` comments, quoted strings and the scalars
    int / float / bool / null.  Anchors, multi-line strings and flow
    mappings are deliberately out of scope.
    """
    lines: List[Tuple[int, str]] = []
    for raw in text.splitlines():
        stripped = _strip_comment(raw)
        if not stripped.strip():
            continue
        indent = len(stripped) - len(stripped.lstrip(" "))
        lines.append((indent, stripped.strip()))
    if not lines:
        return {}
    value, index = _parse_block(lines, 0, lines[0][0])
    if index != len(lines):
        raise ValueError(f"could not parse line: {lines[index][1]!r}")
    if not isinstance(value, dict):
        raise ValueError("top level of a scenario file must be a mapping")
    return value


def _strip_comment(line: str) -> str:
    in_quote: Optional[str] = None
    # A quote only *opens* a string where a scalar can start (after ':',
    # ',', '[' or '-', or at the start of the line) — an apostrophe inside
    # a bare word like ``it's`` must not swallow a trailing comment.
    previous = None
    for position, char in enumerate(line):
        if in_quote:
            if char == in_quote:
                in_quote = None
                previous = char
            continue
        if char in "\"'" and previous in (None, ":", ",", "[", "-"):
            in_quote = char
        elif char == "#":
            return line[:position]
        if not char.isspace():
            previous = char
    return line


def _parse_block(lines: List[Tuple[int, str]], index: int, indent: int) -> Tuple[Any, int]:
    if lines[index][1].startswith("- "):
        return _parse_list(lines, index, indent)
    return _parse_map(lines, index, indent)


def _parse_map(lines: List[Tuple[int, str]], index: int, indent: int) -> Tuple[Dict[str, Any], int]:
    result: Dict[str, Any] = {}
    while index < len(lines):
        line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise ValueError(f"unexpected indentation at: {content!r}")
        if content.startswith("- "):
            break
        if ":" not in content:
            raise ValueError(f"expected 'key: value' at: {content!r}")
        key, _, rest = content.partition(":")
        key = key.strip()
        rest = rest.strip()
        if rest:
            result[key] = _parse_scalar(rest)
            index += 1
        else:
            index += 1
            if index < len(lines) and lines[index][0] > indent:
                result[key], index = _parse_block(lines, index, lines[index][0])
            else:
                result[key] = None
    return result, index


def _parse_list(lines: List[Tuple[int, str]], index: int, indent: int) -> Tuple[List[Any], int]:
    result: List[Any] = []
    while index < len(lines):
        line_indent, content = lines[index]
        if line_indent != indent or not content.startswith("- "):
            break
        item_text = content[2:].strip()
        # The item's own keys sit two columns right of the dash.
        item_indent = indent + 2
        if ":" in item_text and not item_text.startswith("["):
            # Inline first entry of a map item, continuation lines follow.
            key, _, rest = item_text.partition(":")
            item: Dict[str, Any] = {}
            rest = rest.strip()
            if rest:
                item[key.strip()] = _parse_scalar(rest)
                index += 1
            else:
                index += 1
                if index < len(lines) and lines[index][0] > item_indent:
                    value, index = _parse_block(lines, index, lines[index][0])
                    item[key.strip()] = value
                else:
                    item[key.strip()] = None
            if index < len(lines) and lines[index][0] == item_indent and not lines[index][1].startswith("- "):
                more, index = _parse_map(lines, index, item_indent)
                item.update(more)
            result.append(item)
        else:
            result.append(_parse_scalar(item_text))
            index += 1
    return result, index


def parse_scalar(text: str) -> Any:
    """Parse one YAML-lite scalar: quoted string, bool, null, number or
    inline ``[...]`` list, falling back to the bare string.

    Public because the CLI reuses it for ``sweep --set field=value``
    parsing, so spec files and sweep cells coerce values identically.
    """
    return _parse_scalar(text)


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text.startswith("["):
        value, position = _parse_inline_list(text, 0)
        if text[position:].strip():
            raise ValueError(f"trailing characters after list: {text!r}")
        return value
    if len(text) >= 2 and text[0] in "\"'" and text[-1] == text[0]:
        return text[1:-1]
    lowered = text.lower()
    if lowered in ("true", "yes"):
        return True
    if lowered in ("false", "no"):
        return False
    if lowered in ("null", "none", "~"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_inline_list(text: str, position: int) -> Tuple[List[Any], int]:
    if text[position] != "[":
        raise ValueError(f"expected '[' in {text!r}")
    position += 1
    items: List[Any] = []
    current = ""

    def flush() -> None:
        if current.strip():
            items.append(_parse_scalar(current))

    in_quote: Optional[str] = None
    while position < len(text):
        char = text[position]
        if in_quote:
            current += char
            if char == in_quote:
                in_quote = None
            position += 1
            continue
        if char in "\"'":
            in_quote = char
            current += char
            position += 1
            continue
        if char == "[":
            nested, position = _parse_inline_list(text, position)
            items.append(nested)
            continue
        if char == "]":
            flush()
            return items, position + 1
        if char == ",":
            flush()
            current = ""
            position += 1
            continue
        current += char
        position += 1
    raise ValueError(f"unterminated list in {text!r}")
