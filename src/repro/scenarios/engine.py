"""Compile and run declarative scenarios.

:func:`compile_scenario` turns a :class:`ScenarioSpec` into the concrete
ingredients of a simulator run — a :class:`ConsensusConfig`, a latency
model, a per-link bandwidth model, a crash plan, partition schedules and
the attacker coalition — and :func:`run_scenario` executes it epoch by
epoch through :mod:`repro.experiments.runner`, re-selecting the committee
from the stake registry between epochs when the spec asks for churn.

Everything is seeded from the spec, so a fixed spec produces identical
finalized-view metrics on every run.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace as dataclass_replace
from typing import Callable, List, Optional, Set, Tuple

from repro.attacks.byzantine import corrupt_replicas
from repro.consensus.config import ConsensusConfig
from repro.experiments.runner import ExperimentResult, build_deployment, summarise
from repro.experiments.workloads import ClientWorkload
from repro.membership.epochs import EpochSchedule, MembershipManager
from repro.membership.stake import StakeRegistry
from repro.results import EpochMetrics, RunResult
from repro.scenarios.spec import ScenarioSpec, TopologySpec
from repro.simnet.failures import FailureInjector, FailurePlan
from repro.simnet.latency import (
    ConstantLatency,
    LatencyModel,
    LinkBandwidth,
    NormalLatency,
)
from repro.simnet.topology import (
    WAN_REGION_MATRIX,  # noqa: F401  (canonical home: repro.simnet.topology)
    MatrixLatency,
    RackTopologyLatency,
    RegionMatrixLatency,
)

__all__ = [
    "CompiledScenario",
    "EpochOutcome",
    "ScenarioResult",
    "WAN_REGION_MATRIX",
    "build_latency_model",
    "build_scenario_deployment",
    "compile_scenario",
    "compiled_for_epoch",
    "run_epochs",
    "run_scenario",
]


def build_latency_model(topology: TopologySpec, committee_size: int) -> LatencyModel:
    """The latency model a topology spec describes, sized for the committee."""
    if topology.kind == "constant":
        return ConstantLatency(topology.intra_delay)
    if topology.kind == "normal":
        return NormalLatency(
            mean=topology.intra_delay,
            std=topology.intra_delay * max(topology.jitter, 0.01),
            minimum=topology.intra_delay * 0.1,
        )
    if topology.kind == "rack":
        return RackTopologyLatency.evenly_spread(
            committee_size,
            topology.regions,
            intra_delay=topology.intra_delay,
            inter_delay=topology.inter_delay,
            jitter=topology.jitter,
        )
    if topology.kind == "wan":
        matrix = topology.matrix
        if matrix is None:
            if topology.regions > len(WAN_REGION_MATRIX):
                raise ValueError(
                    f"built-in WAN matrix covers {len(WAN_REGION_MATRIX)} regions; "
                    "provide an explicit matrix for more"
                )
            matrix = tuple(
                row[: topology.regions] for row in WAN_REGION_MATRIX[: topology.regions]
            )
        return RegionMatrixLatency.evenly_spread(
            committee_size, matrix, intra_delay=topology.intra_delay, jitter=topology.jitter
        )
    if topology.kind == "matrix":
        if len(topology.matrix) < committee_size:
            raise ValueError("latency matrix must cover every committee process id")
        return MatrixLatency(topology.matrix, jitter=topology.jitter)
    raise ValueError(f"unknown topology kind {topology.kind!r}")


@dataclass
class CompiledScenario:
    """A spec resolved into concrete run ingredients."""

    spec: ScenarioSpec
    config: ConsensusConfig
    latency_model: LatencyModel
    loss_probability: float
    failure_plan: Optional[FailurePlan]
    attacker_ids: Tuple[int, ...]
    epoch_duration: float

    def link_bandwidth(self) -> Optional[LinkBandwidth]:
        """A fresh (queue-empty) bandwidth model for one epoch run."""
        rate = self.spec.topology.bandwidth_bytes_per_sec
        if rate is None:
            return None
        return LinkBandwidth(rate)


def compile_scenario(spec: ScenarioSpec) -> CompiledScenario:
    """Resolve a spec into a :class:`CompiledScenario` (no run yet)."""
    size = spec.committee.size
    latency_model = build_latency_model(spec.topology, size)
    bound = latency_model.upper_bound
    # On thin links, serialization dominates propagation: a hop is only
    # "delivered" once a full proposal has finished transmitting, so the
    # synchrony bound must cover one batch's transmission time or
    # bandwidth-crunched scenarios live in permanent view timeout.
    if spec.topology.bandwidth_bytes_per_sec:
        proposal_bytes = spec.batch_size * spec.workload.payload_size
        bound += proposal_bytes / spec.topology.bandwidth_bytes_per_sec
    # Timers derive from the topology unless pinned: Δ covers one hop plus
    # processing headroom, the 2ND-CHANCE δ one extra round trip, and the
    # pacemaker must outlast Iniva's 7Δ critical path.
    delta = spec.delta if spec.delta is not None else max(0.0025, 1.25 * bound)
    second_chance = (
        spec.second_chance_timeout if spec.second_chance_timeout is not None else max(0.005, bound)
    )
    view_timeout = spec.view_timeout if spec.view_timeout is not None else max(0.25, 8.0 * delta)
    config = ConsensusConfig(
        committee_size=size,
        batch_size=spec.batch_size,
        payload_size=spec.workload.payload_size,
        aggregation=spec.aggregation,
        signature_scheme=spec.signature_scheme,
        leader_policy=spec.leader_policy,
        delta=delta,
        second_chance_timeout=second_chance,
        view_timeout=view_timeout,
        num_internal=spec.num_internal,
        seed=spec.seed,
        sync_on_recover=spec.resilience.catchup,
        max_sync_blocks=spec.resilience.max_sync_blocks,
        optimistic_responsiveness=spec.optimistic_responsiveness,
        batch_verification=spec.batch_verification,
        verification_offload=spec.verification_offload,
        **dict(spec.scheme_params),
    )

    victim = spec.attack.victim if spec.attack.strategy != "none" else None
    protected = {0} if spec.faults.protect_leader else set()
    protected |= set(spec.faults.crash_exclude)
    if victim is not None:
        protected.add(victim)

    attacker_ids: Tuple[int, ...] = ()
    if spec.attack.strategy == "omission":
        candidates = [pid for pid in range(1, size) if pid != victim]
        if spec.attack.attackers > len(candidates):
            raise ValueError("more attackers than available committee seats")
        # Knuth-style mix keeps the attacker draw independent of the crash
        # draw (both derive from spec.seed) and stable across processes.
        rng = random.Random(spec.seed * 2654435761 + 97)
        attacker_ids = tuple(sorted(rng.sample(candidates, spec.attack.attackers)))
        protected |= set(attacker_ids)

    failure_plan = None
    if spec.faults.crashes:
        crash_seed = (
            spec.faults.crash_seed if spec.faults.crash_seed is not None else spec.seed
        )
        failure_plan = FailurePlan.random_crashes(
            committee_size=size,
            count=spec.faults.crashes,
            seed=crash_seed,
            at_time=spec.faults.crash_at,
            exclude=sorted(protected),
            restart_at=spec.faults.restart_at,
        )

    epoch_duration = spec.duration / spec.churn.epochs
    return CompiledScenario(
        spec=spec,
        config=config,
        latency_model=latency_model,
        loss_probability=spec.topology.loss_probability,
        failure_plan=failure_plan,
        attacker_ids=attacker_ids,
        epoch_duration=epoch_duration,
    )


# The engine used to define its own result types; they are now the
# repo-wide unified result (kept under the old names for compatibility).
EpochOutcome = EpochMetrics
ScenarioResult = RunResult


def compiled_for_epoch(compiled: CompiledScenario, epoch: int) -> CompiledScenario:
    """The per-epoch view of a compiled scenario.

    Epoch ``e`` runs with the config seed shifted by ``7919 * e`` so each
    committee generation sees fresh trees/latency draws while staying
    deterministic; everything else (latency model, failure plan, attacker
    coalition, partition schedule) is shared across epochs.  Epoch 0 is
    the compiled scenario itself.
    """
    if epoch == 0:
        return compiled
    return dataclass_replace(
        compiled, config=compiled.config.with_(seed=compiled.spec.seed + 7919 * epoch)
    )


def build_scenario_deployment(
    compiled: CompiledScenario,
    epoch: int = 0,
    runtime: str = "sim",
):
    """Wire one epoch's deployment: workload attached, faults scheduled.

    This is the single spec→deployment path — :func:`run_scenario` calls
    it once per epoch, and :func:`repro.api.deploy` exposes it to callers
    that need the live :class:`Deployment` (custom drop rules, message
    tracing, QC audits) rather than just the summarised metrics.

    ``runtime`` selects the substrate: ``"sim"`` (default) returns the
    fully wired simulator :class:`Deployment`; ``"live"`` returns a
    not-yet-started :class:`~repro.runtime.live.LiveCluster` that runs
    the same spec as an asyncio TCP cluster — with the chaos layer
    (:mod:`repro.chaos`) translating the spec's topology shaping,
    partitions, crash/restart churn and Byzantine cartel onto the live
    transport.
    """
    if runtime == "live":
        # Imported lazily: repro.runtime.live imports this module.
        from repro.runtime.live import LiveCluster

        return LiveCluster(spec=compiled.spec, compiled=compiled, epoch=epoch)
    if runtime != "sim":
        raise ValueError(f"unknown runtime {runtime!r} (expected 'sim' or 'live')")
    spec = compiled.spec
    config = compiled_for_epoch(compiled, epoch).config
    deployment = build_deployment(
        config,
        warmup=min(spec.warmup, compiled.epoch_duration / 4),
        latency_model=compiled.latency_model,
        loss_probability=compiled.loss_probability,
        link_bandwidth=compiled.link_bandwidth(),
    )
    if spec.observe.enabled:
        # One tracer for the whole deployment (the sim shares one metrics
        # collector; events carry the pid).  The per-replica capacity the
        # spec names scales by committee size so a sim trace holds as many
        # events as the live runtime's n per-node rings would.
        from repro.observe.trace import Tracer, seeded_run_id

        deployment.metrics.tracer = Tracer(
            seeded_run_id(spec.name, spec.seed),
            capacity=spec.observe.capacity * spec.committee.size,
            sample_rate=spec.observe.sample_rate,
            seed=spec.seed,
        )
    workload_seed = spec.workload.seed if spec.workload.seed is not None else config.seed
    workload = ClientWorkload(
        rate=spec.workload.rate,
        payload_size=spec.workload.payload_size,
        num_clients=spec.workload.num_clients,
        arrival=spec.workload.arrival,
        burst_factor=spec.workload.burst_factor,
        period=spec.workload.arrival_period,
        seed=workload_seed,
    )
    if spec.workload.preload:
        workload.preload_into(deployment.mempool, compiled.epoch_duration)
    else:
        workload.attach(deployment.simulator, deployment.mempool, compiled.epoch_duration)

    injector = FailureInjector(deployment.simulator, deployment.network)
    if compiled.failure_plan is not None:
        injector.apply(compiled.failure_plan)
    injector.schedule_partitions(spec.faults.partitions)
    if compiled.attacker_ids:
        corrupt_replicas(deployment, compiled.attacker_ids, spec.attack.victim)
    return deployment


def _stake_gini(stakes: List[float]) -> float:
    """Gini coefficient of the stake distribution (0 equal .. 1 skewed)."""
    if not stakes:
        return 0.0
    ordered = sorted(stakes)
    total = sum(ordered)
    if total <= 0:
        return 0.0
    cumulative = 0.0
    weighted = 0.0
    for rank, stake in enumerate(ordered, start=1):
        cumulative += stake
        weighted += rank * stake
    n = len(ordered)
    return (2.0 * weighted) / (n * total) - (n + 1.0) / n


#: Per-epoch execution callback: ``(compiled, epoch) -> (metrics, crashed
#: process ids)``.  ``run_epochs`` owns everything around it (membership
#: churn, reward feedback, stake drift); the runner owns the substrate.
EpochRunner = Callable[[CompiledScenario, int], Tuple[ExperimentResult, Set[int]]]


def run_epochs(
    spec: ScenarioSpec,
    compiled: CompiledScenario,
    epoch_runner: EpochRunner,
    runtime_name: str,
) -> RunResult:
    """The epoch-loop orchestration shared by the sim and live runtimes.

    Handles committee (re-)selection from the stake pool, per-epoch
    overlap, reward-to-stake feedback and Gini tracking identically for
    every substrate; ``epoch_runner`` executes one epoch on the sim
    (:func:`run_scenario`) or the live cluster
    (:func:`repro.runtime.live.run_live`) and reports which replicas
    ended the epoch crashed (they earn no rewards).
    """
    wall_started = time.perf_counter()
    churn = spec.churn.epochs > 1 or spec.committee.pool_size > spec.committee.size
    registry: Optional[StakeRegistry] = None
    manager: Optional[MembershipManager] = None
    if churn:
        registry = StakeRegistry()
        for validator_id, stake in enumerate(spec.committee.stakes()):
            registry.register(validator_id, stake=stake)
        manager = MembershipManager(
            registry,
            EpochSchedule(views_per_epoch=spec.churn.views_per_epoch),
            committee_size=spec.committee.size,
            base_seed=spec.seed,
        )

    outcome_list: List[EpochMetrics] = []
    previous_committee: Optional[Tuple[int, ...]] = None
    for epoch in range(spec.churn.epochs):
        if manager is not None:
            descriptor = manager.committee_for_epoch(epoch)
            committee = tuple(descriptor.members)
        else:
            committee = tuple(range(spec.committee.size))

        result, crashed = epoch_runner(compiled, epoch)

        overlap = 1.0
        if previous_committee is not None:
            overlap = len(set(committee) & set(previous_committee)) / max(len(committee), 1)
        previous_committee = committee

        gini: Optional[float] = None
        if registry is not None and manager is not None:
            if spec.churn.reward_feedback and result.committed_blocks:
                reward_total = spec.churn.reward_per_block * result.committed_blocks
                earners = [pid for pid in range(len(committee)) if pid not in crashed]
                if earners:
                    payouts = {pid: reward_total / len(earners) for pid in earners}
                    manager.apply_block_rewards(
                        manager.schedule.first_view_of(epoch), payouts
                    )
            gini = _stake_gini([validator.stake for validator in registry])

        outcome_list.append(
            EpochMetrics(
                epoch=epoch,
                committee=committee,
                overlap=overlap,
                stake_gini=gini,
                result=result,
            )
        )
    return RunResult(
        spec=spec,
        epochs=outcome_list,
        attackers=compiled.attacker_ids,
        runtime=runtime_name,
        wall_clock_seconds=time.perf_counter() - wall_started,
    )


def run_scenario(spec: ScenarioSpec, quick: bool = False) -> RunResult:
    """Run a scenario end to end and collect per-epoch metrics.

    With ``quick`` the spec is first shrunk via :meth:`ScenarioSpec.quick`
    so the run finishes in seconds.  Fixed spec ⇒ identical metrics.
    """
    if quick:
        spec = spec.quick()
    compiled = compile_scenario(spec)

    def sim_epoch(compiled_scenario: CompiledScenario, epoch: int):
        deployment = build_scenario_deployment(compiled_scenario, epoch)
        deployment.start()
        deployment.simulator.run(until=compiled_scenario.epoch_duration)
        result = summarise(
            deployment,
            compiled_scenario.epoch_duration,
            label=f"{spec.name} epoch={epoch} {deployment.config.describe()}",
        )
        tracer = deployment.metrics.tracer
        if tracer is not None:
            from repro.observe.metrics import MetricsRegistry

            # Mirror the live node's registry namespace (consensus.* /
            # transport.*) so merged sim and live snapshots are directly
            # comparable; the sim's deployment-wide message counters land
            # under transport.* like the live per-node transport dict.
            metrics = deployment.metrics
            registry = MetricsRegistry()
            registry.fill_counters(deployment.network.counters(), prefix="transport.")
            registry.counter("consensus.committed_blocks", metrics.committed_blocks())
            registry.counter(
                "consensus.committed_operations", metrics.committed_operations()
            )
            registry.counter("consensus.views_recorded", metrics.total_views())
            registry.counter(
                "consensus.second_chance_inclusions",
                metrics.second_chance_inclusions(),
            )
            registry.gauge("consensus.average_qc_size", metrics.average_qc_size())
            histogram = registry.histogram("consensus.commit_latency")
            for sample in metrics.latency_samples():
                histogram.record(sample)
            result = dataclass_replace(
                result,
                observability={
                    "run_id": tracer.run_id,
                    "enabled": True,
                    "trace": tracer.snapshot(),
                    "metrics": registry.snapshot(),
                },
            )
        crashed = set(deployment.network.process_ids) - {
            replica.process_id for replica in deployment.correct_replicas()
        }
        return result, crashed

    return run_epochs(spec, compiled, sim_epoch, runtime_name="sim")
