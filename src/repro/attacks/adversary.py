"""Adversary and role sampling shared by the attack simulations.

Definition 5 of the paper measures the c-omission probability over "a
random assignment of processes to the attacker and the victim role"; this
module provides exactly that sampling, plus per-round sampling of the
aggregation tree and the proposer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.tree.overlay import AggregationTree

__all__ = ["AdversaryModel", "RoleAssignment"]


@dataclass(frozen=True)
class RoleAssignment:
    """One sampled round: who the attacker controls and who the victim is.

    Attributes:
        attacker: The set of process ids under adversarial control.
        victim: The targeted (honest) process.
        proposer: The leader of the previous view (the block proposer); in
            the LSO model it is distinct from the tree root, which is the
            *next* leader and collector.
        tree: The aggregation tree for the round (``None`` for protocols
            without a tree, e.g. the star baseline or Gosig).
    """

    attacker: FrozenSet[int]
    victim: int
    proposer: int
    tree: Optional[AggregationTree] = None

    @property
    def collector(self) -> Optional[int]:
        return self.tree.root if self.tree is not None else None

    def controls(self, process_id: int) -> bool:
        return process_id in self.attacker


class AdversaryModel:
    """Samples random rounds for an adversary with power ``m``.

    The committee has ``committee_size`` processes; the adversary controls
    ``round(m * n)`` of them, chosen uniformly at random each round (the
    paper's probability space).  The victim is drawn uniformly from the
    honest processes.
    """

    def __init__(
        self,
        committee_size: int,
        attacker_power: float,
        num_internal: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if committee_size < 3:
            raise ValueError("need at least three processes")
        if not 0 <= attacker_power < 1:
            raise ValueError("attacker power must lie in [0, 1)")
        self.committee_size = committee_size
        self.attacker_power = attacker_power
        self.num_internal = num_internal
        self.rng = random.Random(seed)

    @property
    def attacker_count(self) -> int:
        return int(round(self.attacker_power * self.committee_size))

    def sample(self, view: int = 0, build_tree: bool = True) -> RoleAssignment:
        """Sample one round: attacker set, victim, proposer and tree."""
        population = list(range(self.committee_size))
        attacker = frozenset(self.rng.sample(population, self.attacker_count))
        honest = [pid for pid in population if pid not in attacker]
        victim = self.rng.choice(honest)
        proposer = self.rng.choice(population)
        tree = None
        if build_tree:
            # The collector (tree root) is uniform too: leader rotation plus
            # the unpredictable per-view shuffle make every process equally
            # likely to hold each role.
            root = self.rng.choice(population)
            tree = AggregationTree.build(
                committee_size=self.committee_size,
                view=view,
                seed=self.rng.getrandbits(32),
                num_internal=self.num_internal,
                root=root,
            )
        return RoleAssignment(attacker=attacker, victim=victim, proposer=proposer, tree=tree)
