"""Round-based simulation of Gosig's randomised vote aggregation.

The paper simulates targeted vote omission against Gosig (Section VII-B,
Figures 2a and 2b) to show that randomised redundancy only protects the
victim for small gossip fan-out ``k`` and small attacker power ``m``, and
that free-riding — processes that skip the costly aggregation step and
only ever forward their own signature — makes the attack substantially
easier.

Model
-----
The exact simulation set-up of the original paper is not fully specified;
the model below captures the mechanisms the paper describes and reproduces
its qualitative findings (see EXPERIMENTS.md for the comparison):

* ``n`` processes; each starts with its own signature.  In every gossip
  round each process sends a *contribution* (an indivisible signer set) to
  ``k`` uniformly random peers; deliveries become visible next round.
* Honest aggregating processes forward the union of everything they know.
* Free-riding processes only ever forward their own signature.
* Attacker processes collude: they never forward anything containing the
  victim and instead forward the largest victim-free union known to the
  coalition.
* An honest leader finalises the full union it holds after the round
  budget; a malicious leader finalises as soon as it can assemble a
  victim-free union of quorum size from the indivisible contributions it
  (or any colluder) received, and otherwise falls back to the full union.

A targeted omission *succeeds* when the finalised certificate reaches a
quorum and does not contain the victim; the collateral of an instance is
the number of other correct processes missing from the certificate.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Set

from repro.attacks.omission import OmissionOutcome

__all__ = ["GosigConfig", "GosigInstanceResult", "GosigSimulator"]


@dataclass(frozen=True)
class GosigConfig:
    """Parameters of the Gosig attack simulation.

    Attributes:
        committee_size: Number of processes (100 in the paper's simulation).
        gossip_fanout: ``k`` — how many random peers each process contacts
            per round.
        attacker_power: Fraction ``m`` of processes under adversarial
            control.
        free_riding_fraction: Fraction of honest processes that free-ride
            (0.3 in the paper's free-riding scenario).
        greedy_leader: If True, a malicious leader engages the victim
            first, delaying the victim's own gossip by one round.
        rounds: Gossip rounds before the leader must finalise.  Defaults to
            ``ceil(log_{k+1}(n))`` — the epidemic spreading time.
        quorum_fraction: Fraction of signatures required for a valid
            certificate (2/3).
    """

    committee_size: int = 100
    gossip_fanout: int = 2
    attacker_power: float = 0.05
    free_riding_fraction: float = 0.0
    greedy_leader: bool = False
    rounds: Optional[int] = None
    quorum_fraction: float = 2 / 3

    def __post_init__(self) -> None:
        if self.committee_size < 4:
            raise ValueError("committee must have at least four processes")
        if self.gossip_fanout < 1:
            raise ValueError("gossip fan-out must be at least one")
        if not 0 <= self.attacker_power < 0.5:
            raise ValueError("attacker power must lie in [0, 0.5)")
        if not 0 <= self.free_riding_fraction < 1:
            raise ValueError("free-riding fraction must lie in [0, 1)")

    @property
    def quorum_size(self) -> int:
        return int(math.ceil(self.quorum_fraction * self.committee_size))

    @property
    def effective_rounds(self) -> int:
        if self.rounds is not None:
            return self.rounds
        # Two rounds beyond the epidemic spreading time: enough for the
        # victim's signature to reach an honest leader with high probability
        # when every honest process aggregates, but tight enough that
        # free-riding (which slows the epidemic) visibly threatens inclusion.
        return max(3, int(math.ceil(math.log(self.committee_size, self.gossip_fanout + 1))) + 2)


@dataclass(frozen=True)
class GosigInstanceResult:
    """Outcome of one simulated aggregation instance."""

    certificate: FrozenSet[int]
    victim: int
    attacker: FrozenSet[int]
    leader: int

    @property
    def leader_malicious(self) -> bool:
        return self.leader in self.attacker

    @property
    def valid(self) -> bool:
        return bool(self.certificate)

    @property
    def victim_omitted(self) -> bool:
        return self.valid and self.victim not in self.certificate

    def collateral_against(self, committee_size: int) -> int:
        """Correct, non-victim processes missing from the certificate."""
        if not self.valid:
            return 0
        correct = set(range(committee_size)) - set(self.attacker)
        return sum(1 for pid in correct if pid != self.victim and pid not in self.certificate)


class GosigSimulator:
    """Monte-Carlo simulator for targeted vote omission in Gosig."""

    def __init__(self, config: GosigConfig, seed: int = 0) -> None:
        self.config = config
        self.rng = random.Random(seed)

    # -- one aggregation instance -------------------------------------------
    def run_instance(self) -> GosigInstanceResult:
        cfg = self.config
        n = cfg.committee_size
        rng = self.rng
        population = list(range(n))

        attacker_count = int(round(cfg.attacker_power * n))
        attacker: Set[int] = set(rng.sample(population, attacker_count)) if attacker_count else set()
        honest = [pid for pid in population if pid not in attacker]
        victim = rng.choice(honest)
        leader = rng.choice(population)
        eligible_free_riders = [pid for pid in honest if pid not in (victim, leader)]
        free_rider_count = min(
            int(round(cfg.free_riding_fraction * len(honest))), len(eligible_free_riders)
        )
        free_riders: Set[int] = (
            set(rng.sample(eligible_free_riders, free_rider_count)) if free_rider_count else set()
        )
        leader_malicious = leader in attacker

        knowledge: List[Set[int]] = [{pid} for pid in population]
        leader_contributions: List[FrozenSet[int]] = [frozenset({leader})]
        attacker_victim_free: Set[int] = set(attacker)
        victim_delayed = cfg.greedy_leader and leader_malicious
        certificate: Optional[Set[int]] = None

        for round_index in range(cfg.effective_rounds):
            outgoing: List[tuple[int, FrozenSet[int]]] = []
            for pid in population:
                if pid == victim and victim_delayed and round_index == 0:
                    continue
                if pid in attacker:
                    contribution = frozenset(attacker_victim_free | {pid})
                elif pid in free_riders:
                    contribution = frozenset({pid})
                else:
                    contribution = frozenset(knowledge[pid])
                targets = rng.sample(population, cfg.gossip_fanout + 1)
                for target in targets[: cfg.gossip_fanout]:
                    if target != pid:
                        outgoing.append((target, contribution))

            for target, contribution in outgoing:
                knowledge[target] |= contribution
                if target in attacker and victim not in contribution:
                    attacker_victim_free |= contribution
                if target == leader:
                    leader_contributions.append(contribution)

            if leader_malicious:
                victim_free_union: Set[int] = set(attacker)
                for contribution in leader_contributions:
                    if victim not in contribution:
                        victim_free_union |= contribution
                if len(victim_free_union) >= cfg.quorum_size:
                    certificate = victim_free_union
                    break

        if certificate is None:
            full_union = set(knowledge[leader])
            if leader_malicious:
                for contribution in leader_contributions:
                    full_union |= contribution
            certificate = full_union if len(full_union) >= cfg.quorum_size else set()

        return GosigInstanceResult(
            certificate=frozenset(certificate),
            victim=victim,
            attacker=frozenset(attacker),
            leader=leader,
        )

    # -- Monte-Carlo estimates ---------------------------------------------------
    def omission_probability(
        self, trials: int = 2000, collateral: Optional[int] = None
    ) -> OmissionOutcome:
        """Probability of a successful targeted omission.

        With ``collateral=None`` (Figure 2a) success only requires the
        victim to be missing from a valid certificate; with an explicit
        collateral budget (Figure 2b) at most that many other correct
        processes may be missing as well.
        """
        cfg = self.config
        successes = 0
        for _ in range(trials):
            result = self.run_instance()
            if not result.victim_omitted:
                continue
            if collateral is not None and result.collateral_against(cfg.committee_size) > collateral:
                continue
            successes += 1
        return OmissionOutcome(
            probability=successes / trials if trials else 0.0,
            trials=trials,
            successes=successes,
        )

    def inclusion_rate(self, trials: int = 500) -> float:
        """Fraction of instances whose certificate contains the victim."""
        included = 0
        for _ in range(trials):
            result = self.run_instance()
            if result.valid and result.victim in result.certificate:
                included += 1
        return included / trials if trials else 0.0
