"""Targeted vote-omission analysis for Iniva and the star baseline.

``iniva_minimal_collateral`` encodes the structural argument of
Section VII-A: which combinations of corrupted roles allow the adversary
to keep the victim's signature out of the final certificate, and how many
other honest processes must be sacrificed (the *collateral*) to do so.
Monte-Carlo sampling of role assignments then yields the c-omission
probability of Definition 5 (Figures 2a and 2b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.attacks.adversary import AdversaryModel, RoleAssignment

__all__ = [
    "OmissionOutcome",
    "iniva_minimal_collateral",
    "star_minimal_collateral",
    "omission_probability",
    "analytic_iniva_omission",
    "analytic_star_omission",
]

#: Collateral value meaning "the attack is impossible this round".
IMPOSSIBLE = math.inf


@dataclass(frozen=True)
class OmissionOutcome:
    """Result of a Monte-Carlo omission estimate.

    Attributes:
        probability: Fraction of sampled rounds in which the targeted
            omission succeeded within the collateral budget.
        trials: Number of sampled rounds.
        successes: Number of successful rounds.
    """

    probability: float
    trials: int
    successes: int

    @property
    def standard_error(self) -> float:
        if self.trials == 0:
            return 0.0
        p = self.probability
        return math.sqrt(max(p * (1 - p), 0.0) / self.trials)


def star_minimal_collateral(assignment: RoleAssignment) -> float:
    """Minimal collateral to omit the victim in the star protocol.

    The collector alone decides which votes to include, so the attack
    needs nothing but a corrupted collector and costs no collateral.  For
    the star baseline the collector role coincides with the (next) leader;
    we reuse the sampled proposer as that leader.
    """
    return 0.0 if assignment.controls(assignment.proposer) else IMPOSSIBLE


def iniva_minimal_collateral(assignment: RoleAssignment) -> float:
    """Minimal collateral to omit the victim under Iniva (Section VII-A).

    Requires the sampled assignment to carry an aggregation tree.  The
    cases are:

    * honest root: impossible — the root's 2ND-CHANCE fallback re-adds the
      victim no matter what intermediate aggregators do;
    * corrupted root, victim is a leaf with a corrupted parent: free
      (the parent omits the victim, the root never asks again);
    * corrupted root, victim is a leaf with an honest parent: the root must
      drop the victim's whole branch; honest branch members other than the
      victim are lost (corrupted ones re-join via individual replies);
    * corrupted root, victim is an internal node and the proposer is also
      corrupted: free — the proposal is withheld from the victim and its
      leaves are collected through 2ND-CHANCE messages;
    * corrupted root, victim is an internal node, honest proposer: the root
      drops the victim's aggregate; its honest leaves only hold acks that
      contain the victim, so they are lost as collateral;
    * the victim is the root itself: impossible (the collector always
      includes its own signature).
    """
    tree = assignment.tree
    if tree is None:
        raise ValueError("iniva_minimal_collateral requires a tree in the assignment")
    victim = assignment.victim
    if not assignment.controls(tree.root):
        return IMPOSSIBLE
    if victim == tree.root:
        return IMPOSSIBLE

    if tree.is_leaf(victim):
        parent = tree.parent(victim)
        if parent == tree.root:
            # Degenerate star-shaped branch: the corrupted root simply drops
            # the individual signature.
            return 0.0
        if assignment.controls(parent):
            return 0.0
        branch = tree.branch_of(victim)
        honest_collateral = sum(
            1 for pid in branch if pid != victim and not assignment.controls(pid)
        )
        return float(honest_collateral)

    # Victim is an internal aggregator.
    if assignment.controls(assignment.proposer):
        return 0.0
    honest_leaves = sum(
        1 for pid in tree.children(victim) if not assignment.controls(pid)
    )
    return float(honest_leaves)


def omission_probability(
    attacker_power: float,
    collateral: int = 0,
    committee_size: int = 111,
    num_internal: int = 10,
    protocol: str = "iniva",
    trials: int = 20000,
    seed: int = 0,
) -> OmissionOutcome:
    """Monte-Carlo estimate of the c-omission probability (Definition 5).

    Args:
        attacker_power: Fraction ``m`` of the committee under adversarial
            control.
        collateral: Maximum number of non-target processes the attacker is
            willing to exclude.
        committee_size: Committee size (the paper uses 111 for Iniva).
        num_internal: Internal aggregators in the Iniva tree (10 in the
            paper's default configuration).
        protocol: ``"iniva"`` or ``"star"``.
        trials: Number of sampled role assignments.
        seed: RNG seed.
    """
    model = AdversaryModel(
        committee_size=committee_size,
        attacker_power=attacker_power,
        num_internal=num_internal,
        seed=seed,
    )
    if protocol == "iniva":
        cost_fn: Callable[[RoleAssignment], float] = iniva_minimal_collateral
        needs_tree = True
    elif protocol == "star":
        cost_fn = star_minimal_collateral
        needs_tree = False
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    successes = 0
    for trial in range(trials):
        assignment = model.sample(view=trial, build_tree=needs_tree)
        if cost_fn(assignment) <= collateral:
            successes += 1
    return OmissionOutcome(
        probability=successes / trials if trials else 0.0,
        trials=trials,
        successes=successes,
    )


# ---------------------------------------------------------------------------
# Closed forms (used in Table I and as cross-checks for the Monte Carlo)
# ---------------------------------------------------------------------------

def analytic_star_omission(attacker_power: float) -> float:
    """0-omission probability of the star protocol: ``m`` (Table I)."""
    if not 0 <= attacker_power <= 1:
        raise ValueError("attacker power must lie in [0, 1]")
    return attacker_power


def analytic_iniva_omission(attacker_power: float) -> float:
    """0-omission probability of Iniva: ``m^2`` (Theorem 4).

    Whether the victim is a leaf (needs root + parent) or an internal node
    (needs root + proposer), two independent uniformly assigned roles must
    fall to the adversary: ``P·m² + (1-P)·m² = m²``.
    """
    if not 0 <= attacker_power <= 1:
        raise ValueError("attacker power must lie in [0, 1]")
    return attacker_power ** 2
