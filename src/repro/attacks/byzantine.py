"""Byzantine aggregator behaviours for protocol-level attack experiments.

The Monte-Carlo analysis in :mod:`repro.attacks.omission` reasons about
targeted vote omission *structurally*; this module provides the matching
behaviours for the discrete-event protocol implementation so the same
claims can be exercised end-to-end: a corrupted internal aggregator that
silently drops its victim's share, and a corrupted collector that withholds
the victim's 2ND-CHANCE and discards its direct contributions.

Used by the integration tests to demonstrate Theorem 4 on live runs: a
single corrupted role is never enough to omit the victim — the fallback
path (honest collector) or the indivisible parent aggregate (honest
parent) always re-adds it — while a coalition holding both roles succeeds.
"""

from __future__ import annotations

from typing import Iterable

from repro.aggregation.messages import SecondChanceReply
from repro.consensus.block import Block
from repro.core.iniva import InivaAggregator
from repro.crypto.multisig import AggregateSignature

__all__ = ["OmittingInivaAggregator", "corrupt_replica", "corrupt_replicas"]


class OmittingInivaAggregator(InivaAggregator):
    """An Iniva aggregator that tries to censor one victim's vote.

    The behaviour follows the paper's targeted vote omission attack with
    collateral 0:

    * as an internal node it leaves the victim's share out of its
      aggregate (and consequently never acknowledges the victim);
    * as the collector it never sends the victim a 2ND-CHANCE message and
      discards any individual contribution or fallback reply that could
      only add the victim;
    * it never discards aggregates that already contain the victim —
      doing so would exclude other processes and exceed the collateral
      budget (and the multi-signature is indivisible, so the victim cannot
      be carved out of them).
    """

    # Deliberately NOT added to the aggregator registry: experiment configs
    # cannot select it by name, it is attached explicitly by `corrupt_replicas`.
    name = "byzantine-omitting-iniva"

    def __init__(self, replica, victim: int) -> None:
        super().__init__(replica)
        self.victim = victim

    # -- internal node behaviour --------------------------------------------
    def _internal_send_up(self, block: Block) -> None:
        state = self._collection(block)
        state["children_shares"].pop(self.victim, None)
        super()._internal_send_up(block)

    # -- collector behaviour ---------------------------------------------------
    def _send_second_chances(self, block: Block) -> None:
        from repro.aggregation.messages import SecondChanceMessage

        state = self._collection(block)
        if state["done"] or state["second_chance_sent"]:
            return
        state["second_chance_sent"] = True
        missing = [
            pid
            for pid in range(self.config.committee_size)
            if pid not in state["included"] and pid != self.victim
        ]
        if not missing:
            # Everyone except (possibly) the victim is in: finalise without it.
            self._root_finalise(block)
            return
        proof = self.scheme.aggregate(state["contributions"]) if state["contributions"] else None
        message = SecondChanceMessage(block=block, proof=proof)
        self.replica.multicast(missing, message, size_bytes=message.size_bytes)
        self.replica.set_timer(
            self.config.second_chance_timeout, self._second_chance_timeout, block
        )

    def _root_add_contribution(self, block: Block, contribution, weight: int, source: int) -> None:
        tree = self._collection(block)["tree"]
        if tree.is_root(self.process_id):
            signers = (
                contribution.signers
                if isinstance(contribution, AggregateSignature)
                else frozenset({contribution.signer})
            )
            # Drop contributions whose only effect would be adding the victim
            # (its individual share or a fallback reply centred on it).
            if signers == frozenset({self.victim}):
                return
        super()._root_add_contribution(block, contribution, weight, source)

    def _on_second_chance_reply(self, sender: int, message: SecondChanceReply) -> None:
        if sender == self.victim:
            return
        super()._on_second_chance_reply(sender, message)


def corrupt_replica(replica, victim: int) -> None:
    """Swap one replica's aggregator for the omission attacker.

    Runtime-agnostic: works on any :class:`HotStuffReplica` regardless of
    the substrate it runs on (the simulator's deployment or a live
    :class:`~repro.runtime.live.LiveNode`), as long as the replica has not
    started yet.  The consensus layer of the corrupted replica is left
    untouched: it still proposes, votes and commits correctly — the attack
    is purely about which votes it aggregates, exactly as in the paper's
    threat model.
    """
    if replica.process_id == victim:
        raise ValueError("the victim cannot be one of the attacker processes")
    replica.aggregator = OmittingInivaAggregator(replica, victim=victim)


def corrupt_replicas(deployment, attacker_ids: Iterable[int], victim: int) -> None:
    """Replace the aggregators of ``attacker_ids`` with omission attackers.

    Must be called before ``deployment.start()``; see :func:`corrupt_replica`.
    """
    for process_id in attacker_ids:
        corrupt_replica(deployment.replicas[process_id], victim)
