"""Attack models and Monte-Carlo simulations (Section VII of the paper).

This package reproduces the paper's security *simulations* (Figure 2):

* :mod:`repro.attacks.adversary` — adversary/role sampling shared by all
  simulations (attacker controls a random fraction ``m`` of the committee).
* :mod:`repro.attacks.omission` — structural targeted vote-omission
  analysis for Iniva and the star protocol: given a concrete tree and
  attacker/victim assignment, the minimal collateral needed to omit the
  victim, and Monte-Carlo estimates of the c-omission probability.
* :mod:`repro.attacks.gosig_sim` — a round-based simulation of Gosig's
  randomised aggregation with parameter ``k``, optional free-riding and a
  greedy malicious leader.
* :mod:`repro.attacks.reward_sim` — reward-loss simulations for victim and
  attacker under vote omission / vote denial (Figures 2c and 2d), built on
  the reward scheme in :mod:`repro.core.rewards`.
"""

from repro.attacks.adversary import AdversaryModel, RoleAssignment
from repro.attacks.byzantine import corrupt_replica, corrupt_replicas
from repro.attacks.gosig_sim import GosigConfig, GosigSimulator
from repro.attacks.omission import (
    OmissionOutcome,
    iniva_minimal_collateral,
    omission_probability,
    star_minimal_collateral,
)
from repro.attacks.reward_sim import RewardAttackSimulator, RewardAttackResult

__all__ = [
    "AdversaryModel",
    "GosigConfig",
    "GosigSimulator",
    "OmissionOutcome",
    "RewardAttackResult",
    "RewardAttackSimulator",
    "RoleAssignment",
    "corrupt_replica",
    "corrupt_replicas",
    "iniva_minimal_collateral",
    "omission_probability",
    "star_minimal_collateral",
]
