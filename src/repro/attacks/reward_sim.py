"""Reward-loss simulations for victim and attacker (Figures 2c and 2d).

For every sampled round the simulator constructs the signer multiplicities
that Iniva's aggregation would produce under a given attacker behaviour,
feeds them to the reward scheme of :mod:`repro.core.rewards` and averages
the resulting payouts of the victim and of the attacker coalition.  The
star baseline uses the same leader bonus but no aggregation bonus and a
leader with full control over inclusion, exactly as in the paper's
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.attacks.adversary import AdversaryModel, RoleAssignment
from repro.core.rewards import RewardParams, compute_rewards, compute_star_rewards
from repro.tree.overlay import AggregationTree

__all__ = ["RewardAttackResult", "RewardAttackSimulator", "honest_multiplicities"]

#: Attacks understood by the simulator.
ATTACKS = ("honest", "vote-omission", "vote-denial", "all")


def honest_multiplicities(tree: AggregationTree) -> Dict[int, int]:
    """Multiplicities of a fault-free Iniva round (everyone aggregated)."""
    multiplicities: Dict[int, int] = {tree.root: 1}
    for internal in tree.internal_nodes:
        children = tree.children(internal)
        multiplicities[internal] = 1 + len(children)
        for child in children:
            multiplicities[child] = 2
    for leaf in tree.direct_leaves:
        multiplicities[leaf] = 1
    return multiplicities


@dataclass(frozen=True)
class RewardAttackResult:
    """Average per-round outcome of an attack campaign.

    All quantities are relative to the *fair share* ``R / n`` (the payout a
    process receives when every participant is honest and included).

    Attributes:
        victim_fraction_of_fair_share: Mean ``victim reward / fair share - 1``
            (the quantity plotted in Figure 2c, left).
        attacker_fraction_of_fair_share: Same for the average attacker
            process (Figure 2c, right).
        victim_lost_reward: Mean absolute reward lost by the victim per
            round, as a fraction of the block reward ``R`` (Figure 2d).
        attacker_lost_reward: Same for the whole attacker coalition.
        attack_rounds: Fraction of rounds in which the attack could actually
            be executed (e.g. the attacker held the necessary roles).
    """

    victim_fraction_of_fair_share: float
    attacker_fraction_of_fair_share: float
    victim_lost_reward: float
    attacker_lost_reward: float
    attack_rounds: float


class RewardAttackSimulator:
    """Monte-Carlo estimator of reward losses under targeted attacks."""

    def __init__(
        self,
        committee_size: int = 111,
        num_internal: int = 10,
        attacker_power: float = 0.1,
        params: Optional[RewardParams] = None,
        seed: int = 0,
    ) -> None:
        self.committee_size = committee_size
        self.num_internal = num_internal
        self.attacker_power = attacker_power
        self.params = params or RewardParams()
        self.adversary = AdversaryModel(
            committee_size=committee_size,
            attacker_power=attacker_power,
            num_internal=num_internal,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Iniva round construction under different attacker behaviours
    # ------------------------------------------------------------------
    def _iniva_multiplicities(
        self, assignment: RoleAssignment, attack: str, unlimited_collateral: bool
    ) -> Dict[int, int]:
        tree = assignment.tree
        assert tree is not None
        multiplicities = honest_multiplicities(tree)
        attacker = assignment.attacker

        apply_denial = attack in ("vote-denial", "all")
        apply_omission = attack in ("vote-omission", "all")

        if apply_denial:
            self._apply_vote_denial(tree, attacker, multiplicities)
        if apply_omission and tree.root in attacker:
            self._apply_targeted_omission(
                tree, assignment, multiplicities, unlimited_collateral
            )
        if attack == "all":
            self._apply_aggregation_attacks(tree, attacker, multiplicities)
        return multiplicities

    def _apply_vote_denial(
        self, tree: AggregationTree, attacker: Set[int], multiplicities: Dict[int, int]
    ) -> None:
        """Attacker processes withhold their votes entirely."""
        for pid in attacker:
            if pid == tree.root:
                continue  # the collector always includes itself
            multiplicities[pid] = 0
            if tree.is_internal(pid):
                # The children of a silent aggregator fall back to 2ND-CHANCE.
                for child in tree.children(pid):
                    if child not in attacker:
                        multiplicities[child] = 1
        for internal in tree.internal_nodes:
            if internal in attacker:
                continue
            aggregated = sum(
                1 for child in tree.children(internal) if multiplicities.get(child, 0) == 2
            )
            multiplicities[internal] = 1 + aggregated

    def _apply_targeted_omission(
        self,
        tree: AggregationTree,
        assignment: RoleAssignment,
        multiplicities: Dict[int, int],
        unlimited_collateral: bool,
    ) -> None:
        """The corrupted root omits the victim, spending collateral if allowed."""
        victim = assignment.victim
        attacker = assignment.attacker
        if victim == tree.root:
            return
        if tree.is_leaf(victim):
            parent = tree.parent(victim)
            if parent == tree.root:
                multiplicities[victim] = 0
                return
            if parent in attacker:
                # The corrupted parent silently skips the victim.
                multiplicities[victim] = 0
                multiplicities[parent] = max(multiplicities[parent] - 1, 1)
                return
            if unlimited_collateral:
                # Drop the whole branch; corrupted branch members rejoin via
                # 2ND-CHANCE replies (multiplicity one).
                for pid in tree.branch_of(victim):
                    multiplicities[pid] = 1 if pid in attacker else 0
                multiplicities[victim] = 0
            return
        # Victim is an internal aggregator.
        if assignment.proposer in attacker:
            # Withhold the proposal; collect the victim's leaves via 2ND-CHANCE.
            multiplicities[victim] = 0
            for child in tree.children(victim):
                multiplicities[child] = 1
            return
        if unlimited_collateral:
            multiplicities[victim] = 0
            for child in tree.children(victim):
                multiplicities[child] = 1 if child in attacker else 0

    def _apply_aggregation_attacks(
        self, tree: AggregationTree, attacker: Set[int], multiplicities: Dict[int, int]
    ) -> None:
        """Aggregation denial (leaves) and aggregation omission (internals)."""
        for pid in attacker:
            if tree.is_leaf(pid) and multiplicities.get(pid, 0) == 2:
                multiplicities[pid] = 1  # bypassed its parent via 2ND-CHANCE
                parent = tree.parent(pid)
                if parent is not None and parent != tree.root and multiplicities.get(parent, 0) > 1:
                    multiplicities[parent] -= 1
            elif tree.is_internal(pid) and multiplicities.get(pid, 0) > 0:
                for child in tree.children(pid):
                    if child not in attacker and multiplicities.get(child, 0) == 2:
                        multiplicities[child] = 1
                aggregated = sum(
                    1 for child in tree.children(pid) if multiplicities.get(child, 0) == 2
                )
                multiplicities[pid] = 1 + aggregated

    # ------------------------------------------------------------------
    # Campaign estimates
    # ------------------------------------------------------------------
    def run_iniva(
        self, attack: str, trials: int = 2000, unlimited_collateral: bool = False
    ) -> RewardAttackResult:
        """Average reward outcome of an attack campaign against Iniva.

        Variance reduction: every sampled round is evaluated both under the
        attack and under fully honest behaviour with the *same* role
        assignment, and only the payout differences are accumulated.  The
        role lottery (who happens to be leader or aggregator) then cancels
        exactly, which is also how the paper reports the results (loss
        relative to the expected fair share ``R / n``).
        """
        if attack not in ATTACKS:
            raise ValueError(f"unknown attack {attack!r}; known: {ATTACKS}")
        victim_delta = 0.0
        attacker_delta = 0.0
        attacker_count_total = 0
        attack_rounds = 0
        for _ in range(trials):
            assignment = self.adversary.sample(build_tree=True)
            attacked = self._iniva_multiplicities(assignment, attack, unlimited_collateral)
            honest = honest_multiplicities(assignment.tree)
            if attacked != honest:
                attack_rounds += 1
            attacked_rewards = compute_rewards(assignment.tree, attacked, self.params)
            honest_rewards = compute_rewards(assignment.tree, honest, self.params)
            victim_delta += attacked_rewards.reward_of(assignment.victim) - honest_rewards.reward_of(
                assignment.victim
            )
            attacker_delta += sum(
                attacked_rewards.reward_of(pid) - honest_rewards.reward_of(pid)
                for pid in assignment.attacker
            )
            attacker_count_total += len(assignment.attacker)
        return self._summarise(victim_delta, attacker_delta, attacker_count_total, attack_rounds, trials)

    def run_star(self, attack: str, trials: int = 2000) -> RewardAttackResult:
        """Average reward outcome of an attack campaign against the star baseline."""
        if attack not in ATTACKS:
            raise ValueError(f"unknown attack {attack!r}; known: {ATTACKS}")
        victim_delta = 0.0
        attacker_delta = 0.0
        attacker_count_total = 0
        attack_rounds = 0
        n = self.committee_size
        for _ in range(trials):
            assignment = self.adversary.sample(build_tree=False)
            leader = assignment.proposer
            included = set(range(n))
            if attack in ("vote-omission", "all") and leader in assignment.attacker:
                included.discard(assignment.victim)
            if attack in ("vote-denial", "all"):
                included -= {pid for pid in assignment.attacker if pid != leader}
            if len(included) != n:
                attack_rounds += 1
            attacked_rewards = compute_star_rewards(n, leader, included, self.params)
            honest_rewards = compute_star_rewards(n, leader, range(n), self.params)
            victim_delta += attacked_rewards.reward_of(assignment.victim) - honest_rewards.reward_of(
                assignment.victim
            )
            attacker_delta += sum(
                attacked_rewards.reward_of(pid) - honest_rewards.reward_of(pid)
                for pid in assignment.attacker
            )
            attacker_count_total += len(assignment.attacker)
        return self._summarise(victim_delta, attacker_delta, attacker_count_total, attack_rounds, trials)

    def _summarise(
        self,
        victim_delta: float,
        attacker_delta: float,
        attacker_count_total: int,
        attack_rounds: int,
        trials: int,
    ) -> RewardAttackResult:
        fair_share = self.params.total_reward / self.committee_size
        mean_victim_delta = victim_delta / trials if trials else 0.0
        mean_attacker_delta = attacker_delta / trials if trials else 0.0
        mean_attacker_count = attacker_count_total / trials if trials else 0.0
        per_attacker_delta = (
            mean_attacker_delta / mean_attacker_count if mean_attacker_count else 0.0
        )
        return RewardAttackResult(
            victim_fraction_of_fair_share=mean_victim_delta / fair_share,
            attacker_fraction_of_fair_share=per_attacker_delta / fair_share,
            victim_lost_reward=-mean_victim_delta / self.params.total_reward,
            attacker_lost_reward=-mean_attacker_delta / self.params.total_reward,
            attack_rounds=attack_rounds / trials if trials else 0.0,
        )
