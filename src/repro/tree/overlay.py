"""Two-level aggregation trees (root, internal aggregators, leaves).

Iniva organises the committee in a tree of height two: the root is the
*next* leader (it collects the final aggregate and sends 2ND-CHANCE
messages), a configurable number of internal processes aggregate their
leaf children, and the remaining processes are leaves.  The assignment of
processes to positions is re-drawn every view by the deterministic
shuffle, so an attacker cannot park itself above a chosen victim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.tree.shuffle import deterministic_shuffle, view_seed

__all__ = ["AggregationTree", "default_internal_count"]

# Every correct replica derives the identical tree for a given view, so the
# construction (shuffle included) is memoised process-wide: n replicas per
# deployment pay for one build per view instead of n.
_BUILD_CACHE: Dict[tuple, "AggregationTree"] = {}
_BUILD_CACHE_MAX = 1024


def default_internal_count(committee_size: int) -> int:
    """A balanced choice of internal-node count, roughly ``sqrt(n - 1)``.

    Matches the paper's configurations: 21 processes -> 4 internal nodes,
    111 processes -> 10 internal nodes.
    """
    if committee_size < 3:
        return max(committee_size - 2, 0)
    balanced = max(1, round(math.sqrt(committee_size - 1)))
    return min(balanced, committee_size - 2)


@dataclass(frozen=True)
class AggregationTree:
    """An immutable two-level aggregation tree over process identities.

    Attributes:
        root: The root process (the collector / next leader).
        internal_nodes: Internal aggregators, children of the root.
        leaf_assignment: Mapping ``internal -> tuple of leaf children``.
    """

    root: int
    internal_nodes: Tuple[int, ...]
    leaf_assignment: Dict[int, Tuple[int, ...]] = field(default_factory=dict)

    # -- construction ------------------------------------------------------
    @classmethod
    def build(
        cls,
        committee_size: int,
        view: int,
        seed: int = 0,
        num_internal: Optional[int] = None,
        root: Optional[int] = None,
        context: bytes = b"",
    ) -> "AggregationTree":
        """Build the deterministic tree for ``view``.

        Args:
            committee_size: Number of processes ``n``; identities are
                ``0 .. n-1``.
            view: The view number; combined with ``seed`` and ``context``
                to key the shuffle.
            seed: Base seed shared by all processes (e.g. genesis hash).
            num_internal: Number of internal aggregators.  Defaults to the
                balanced :func:`default_internal_count`.
            root: The process that must sit at the root (the next leader).
                Defaults to the first process of the shuffled order.
            context: Extra seed context, e.g. the serialised previous QC.
        """
        if committee_size < 2:
            raise ValueError("a tree needs at least two processes")
        if num_internal is None:
            num_internal = default_internal_count(committee_size)
        if num_internal < 0 or num_internal > committee_size - 1:
            raise ValueError("invalid number of internal nodes")
        cache_key = (committee_size, view, seed, num_internal, root, context)
        cached = _BUILD_CACHE.get(cache_key)
        if cached is not None:
            return cached
        order = deterministic_shuffle(list(range(committee_size)), view_seed(seed, view, context))
        if root is None:
            root = order[0]
        elif root not in range(committee_size):
            raise ValueError("root must be a committee member")
        remaining = [pid for pid in order if pid != root]
        internals = tuple(remaining[:num_internal])
        leaves = remaining[num_internal:]
        assignment: Dict[int, Tuple[int, ...]] = {internal: () for internal in internals}
        if internals:
            per_parent = [[] for _ in internals]
            for index, leaf in enumerate(leaves):
                per_parent[index % len(internals)].append(leaf)
            assignment = {
                internal: tuple(children) for internal, children in zip(internals, per_parent)
            }
            orphan_leaves: Tuple[int, ...] = ()
        else:
            # Degenerate configuration: no internal aggregators, every
            # other process is a direct child of the root (star topology).
            orphan_leaves = tuple(leaves)
        tree = cls(root=root, internal_nodes=internals, leaf_assignment=assignment)
        object.__setattr__(tree, "_direct_leaves", orphan_leaves)
        if len(_BUILD_CACHE) >= _BUILD_CACHE_MAX:
            _BUILD_CACHE.pop(next(iter(_BUILD_CACHE)))
        _BUILD_CACHE[cache_key] = tree
        return tree

    @classmethod
    def from_assignment(
        cls, root: int, leaf_assignment: Dict[int, Sequence[int]]
    ) -> "AggregationTree":
        """Build a tree from an explicit assignment (used in tests/attacks)."""
        assignment = {parent: tuple(children) for parent, children in leaf_assignment.items()}
        tree = cls(root=root, internal_nodes=tuple(assignment), leaf_assignment=assignment)
        object.__setattr__(tree, "_direct_leaves", ())
        return tree

    # -- structural queries --------------------------------------------------
    @property
    def direct_leaves(self) -> Tuple[int, ...]:
        """Leaves attached directly to the root (star-degenerate trees)."""
        return getattr(self, "_direct_leaves", ())

    @property
    def leaves(self) -> Tuple[int, ...]:
        nested = tuple(
            leaf for children in self.leaf_assignment.values() for leaf in children
        )
        return nested + self.direct_leaves

    @property
    def processes(self) -> Tuple[int, ...]:
        return (self.root,) + self.internal_nodes + self.leaves

    @property
    def size(self) -> int:
        return len(self.processes)

    def children(self, process_id: int) -> Tuple[int, ...]:
        if process_id == self.root:
            return self.internal_nodes + self.direct_leaves
        return self.leaf_assignment.get(process_id, ())

    def parent(self, process_id: int) -> Optional[int]:
        if process_id == self.root:
            return None
        if process_id in self.leaf_assignment or process_id in self.direct_leaves:
            return self.root
        for internal, children in self.leaf_assignment.items():
            if process_id in children:
                return internal
        raise KeyError(f"process {process_id} is not part of the tree")

    def is_root(self, process_id: int) -> bool:
        return process_id == self.root

    def is_internal(self, process_id: int) -> bool:
        return process_id in self.leaf_assignment

    def is_leaf(self, process_id: int) -> bool:
        return process_id in self.leaves

    def height_of(self, process_id: int) -> int:
        """Height above the deepest level: leaves are 0, internals 1, root 2."""
        if self.is_root(process_id):
            return 2
        if self.is_internal(process_id):
            return 1
        if self.is_leaf(process_id):
            return 0
        raise KeyError(f"process {process_id} is not part of the tree")

    def subtree(self, process_id: int) -> Tuple[int, ...]:
        """The processes whose votes flow through ``process_id`` (inclusive)."""
        if self.is_root(process_id):
            return self.processes
        if self.is_internal(process_id):
            return (process_id,) + self.leaf_assignment[process_id]
        return (process_id,)

    def branch_of(self, process_id: int) -> Tuple[int, ...]:
        """The full branch (internal + its leaves) containing ``process_id``.

        Used by the attack analysis: omitting a victim that is a leaf with
        collateral requires dropping its whole branch.
        """
        if self.is_root(process_id):
            return (process_id,)
        if self.is_internal(process_id):
            return self.subtree(process_id)
        parent = self.parent(process_id)
        if parent == self.root:
            return (process_id,)
        return self.subtree(parent)

    def describe(self) -> str:
        """A short human-readable summary used by examples and logs."""
        return (
            f"AggregationTree(root={self.root}, internals={len(self.internal_nodes)}, "
            f"leaves={len(self.leaves)})"
        )
