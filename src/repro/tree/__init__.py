"""Tree overlay substrate: deterministic shuffling and aggregation trees.

Every view, all processes deterministically derive the same two-level
aggregation tree from public information (the view number, a shared seed
derived from the chain, and the identity of the next leader, who becomes
the tree root).  The shuffle is unpredictable across views, which is what
the paper requires of its VRF-based assignment.
"""

from repro.tree.shuffle import deterministic_shuffle, view_seed
from repro.tree.overlay import AggregationTree, default_internal_count

__all__ = [
    "AggregationTree",
    "default_internal_count",
    "deterministic_shuffle",
    "view_seed",
]
