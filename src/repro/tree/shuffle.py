"""Deterministic, seed-keyed shuffling of process identities.

The paper assumes "a deterministic shuffling algorithm, and Pi is shuffled
every round so that the IDs will be different at each round", with the
outcome unpredictable for future rounds (implementable with a VRF).  We
model this with a SHA-256 keyed Fisher-Yates shuffle: deterministic given
the seed material, and computationally unpredictable without it.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["deterministic_shuffle", "view_seed"]


def view_seed(base_seed: int, view: int, context: bytes = b"") -> int:
    """Derive the per-view shuffle seed from chain state.

    In a deployment ``context`` would be the previous QC (as Iniva
    prescribes: "based on the QC and view number included in the block,
    all processes generate the same tree"); in simulations it may be empty.
    """
    digest = hashlib.sha256(
        b"iniva-view-seed"
        + base_seed.to_bytes(16, "big", signed=True)
        + view.to_bytes(16, "big", signed=True)
        + context
    ).digest()
    return int.from_bytes(digest, "big")


def _hash_stream(seed: int):
    """Yield an endless stream of pseudo-random 64-bit integers."""
    counter = 0
    seed_bytes = seed.to_bytes(32, "big", signed=False) if seed >= 0 else (-seed).to_bytes(32, "big")
    while True:
        block = hashlib.sha256(seed_bytes + counter.to_bytes(8, "big")).digest()
        for offset in range(0, 32, 8):
            yield int.from_bytes(block[offset : offset + 8], "big")
        counter += 1


def deterministic_shuffle(items: Sequence[T], seed: int) -> List[T]:
    """Return a deterministic permutation of ``items`` keyed by ``seed``.

    Implements Fisher-Yates with rejection sampling so every permutation is
    (computationally) equally likely and the result does not depend on the
    platform's ``random`` module.
    """
    result = list(items)
    stream = _hash_stream(seed)
    for i in range(len(result) - 1, 0, -1):
        # Rejection-sample a uniform index in [0, i].
        bound = i + 1
        limit = (1 << 64) - ((1 << 64) % bound)
        draw = next(stream)
        while draw >= limit:
            draw = next(stream)
        j = draw % bound
        result[i], result[j] = result[j], result[i]
    return result
