"""The unified result type every run in the repository returns.

Historically the repo had three incompatible result shapes — the raw
:class:`~repro.experiments.runner.ExperimentResult` of one deployment,
the scenario engine's per-epoch outcome list, and the row-oriented
:class:`~repro.experiments.export.FigureArtifact` — none of which could
be serialized.  :class:`RunResult` replaces the first two: it carries the
resolved spec (config echo), the seed, the attacker coalition, and one
:class:`EpochMetrics` per epoch (committee, overlap, stake drift and the
full deployment metrics including latency stats), and round-trips
through a stable, versioned JSON schema via :meth:`RunResult.to_dict` /
:meth:`RunResult.from_dict`.

``repro.scenarios.run_scenario`` and the :mod:`repro.api` facade both
return this type; ``ScenarioResult``/``EpochOutcome`` remain as aliases.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Tuple

from repro.experiments.export import FigureArtifact
from repro.experiments.runner import ExperimentResult

if TYPE_CHECKING:  # imported lazily at runtime: scenarios.engine imports us
    from repro.scenarios.spec import ScenarioSpec

__all__ = ["EpochMetrics", "RunResult", "RESULT_SCHEMA", "RESULT_LIST_SCHEMA"]

#: Version tag embedded in every serialized result; bump on breaking change.
RESULT_SCHEMA = "repro.run-result/1"

#: Version tag of the multi-run document (``repro sweep --format json``):
#: ``{"schema": ..., "runs": [RunResult documents]}``.
RESULT_LIST_SCHEMA = "repro.run-result-list/1"


@dataclass(frozen=True)
class EpochMetrics:
    """One epoch's committee and its deployment metrics."""

    epoch: int
    committee: Tuple[int, ...]  # validator ids holding the seats
    overlap: float  # committee overlap with the previous epoch
    stake_gini: Optional[float]  # inequality of the pool, post-feedback
    result: ExperimentResult

    def to_dict(self) -> Dict[str, Any]:
        """One ``epochs[]`` entry of the JSON document (inverse of
        :meth:`from_dict`)."""
        return {
            "epoch": self.epoch,
            "committee": list(self.committee),
            "overlap": self.overlap,
            "stake_gini": self.stake_gini,
            "metrics": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EpochMetrics":
        """Rebuild an epoch record from its :meth:`to_dict` document."""
        return cls(
            epoch=int(data["epoch"]),
            committee=tuple(int(pid) for pid in data["committee"]),
            overlap=float(data["overlap"]),
            stake_gini=None if data.get("stake_gini") is None else float(data["stake_gini"]),
            result=ExperimentResult.from_dict(data["metrics"]),
        )


@dataclass
class RunResult:
    """Everything one ``repro.api.run`` call produced.

    Attributes:
        spec: The spec that actually ran (after any ``quick`` shrink) —
            the full config echo.
        epochs: Per-epoch metrics; single-epoch runs have exactly one.
        attackers: Process ids of the Byzantine coalition ("attack
            outcome" echo; empty without an active attack).
        runtime: Which substrate executed the run — ``"sim"``
            (deterministic discrete-event) or ``"live"`` (asyncio TCP
            cluster).  Both emit this same schema.
        wall_clock_seconds: Real elapsed time of the run (for sim runs
            this is the host time spent simulating, not virtual time).
    """

    spec: ScenarioSpec
    epochs: List[EpochMetrics] = field(default_factory=list)
    attackers: Tuple[int, ...] = ()
    runtime: str = "sim"
    wall_clock_seconds: Optional[float] = None

    # -- convenience accessors --------------------------------------------------
    @property
    def seed(self) -> int:
        """The spec's seed — the single source of run determinism."""
        return self.spec.seed

    @property
    def metrics(self) -> ExperimentResult:
        """The first (for single-epoch runs: the only) epoch's metrics."""
        if not self.epochs:
            raise ValueError("run produced no epochs")
        return self.epochs[0].result

    @property
    def latency(self):
        """Latency stats of the first epoch (see :class:`LatencyStats`)."""
        return self.metrics.latency

    @property
    def transport(self) -> Dict[str, Dict[str, int]]:
        """Per-replica transport counters of the first epoch."""
        return self.metrics.transport

    @property
    def resilience(self) -> Dict[str, object]:
        """Recovery telemetry of the first epoch.

        ``per_replica`` maps process ids to crash/recovery timestamps,
        catch-up sync counts and (live runtime) suspicion timelines and
        reconnect stats; live runs add a ``cluster`` record with worker
        supervision events and the quiescence/readiness flags.  Empty for
        fault-free runs.
        """
        return self.metrics.resilience

    @property
    def clients(self) -> Dict[str, object]:
        """Client-layer telemetry of the first epoch (live runs).

        ``admission`` sums each replica's admission verdicts (admitted /
        duplicate / dropped / deferred plus queue depths); open-loop runs
        add the merged ``swarm`` shard summary and the client-observed
        ``goodput`` and ``latency_ms`` percentiles the saturation sweep
        plots.  Empty for sim runs.
        """
        return self.metrics.clients

    @property
    def observability(self) -> Dict[str, object]:
        """The merged consensus trace and metrics registry of the first
        epoch (runs with ``observe.enabled``; see :mod:`repro.observe`).

        ``trace`` is a mergeable tracer snapshot (``run_id`` / ``dropped``
        / ``events``) ready for :func:`repro.observe.trace_document`;
        ``metrics`` a registry snapshot (counters / gauges / histograms).
        Empty when tracing was off.
        """
        return self.metrics.observability

    # -- row/summary/artifact views ---------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """One flat export row per epoch (throughput, latency, QC size,
        fault counters) — the tabular view ``artifact()`` and the CLI
        table/CSV formats render."""
        rows: List[Dict[str, object]] = []
        for outcome in self.epochs:
            result = outcome.result
            row: Dict[str, object] = {
                "scenario": self.spec.name,
                "epoch": outcome.epoch,
                "committee_overlap_pct": round(outcome.overlap * 100, 1),
                "throughput_ops": round(result.throughput, 1),
                "latency_ms": round(result.latency.mean * 1000, 2),
                "latency_p90_ms": round(result.latency.p90 * 1000, 2),
                "failed_views_pct": round(result.failed_view_fraction * 100, 2),
                "avg_qc_size": round(result.average_qc_size, 2),
                "second_chance_votes": result.second_chance_inclusions,
                "committed_blocks": result.committed_blocks,
                "messages_dropped": result.message_counters.get("messages_dropped", 0),
                "messages_blocked": result.message_counters.get("messages_blocked", 0),
            }
            if outcome.stake_gini is not None:
                row["stake_gini"] = round(outcome.stake_gini, 4)
            rows.append(row)
        return rows

    def summary(self) -> Dict[str, float]:
        """Run-level aggregates over all epochs."""
        if not self.epochs:
            return {}
        results = [outcome.result for outcome in self.epochs]
        total_views = sum(r.total_views for r in results)
        failed = sum(r.total_views - r.successful_views for r in results)
        return {
            "epochs": float(len(results)),
            "throughput_ops": sum(r.throughput for r in results) / len(results),
            "latency_mean_ms": 1000
            * sum(r.latency.mean for r in results)
            / len(results),
            "failed_views_pct": 100.0 * failed / total_views if total_views else 0.0,
            "avg_qc_size": sum(r.average_qc_size for r in results) / len(results),
            "committed_blocks": float(sum(r.committed_blocks for r in results)),
            "messages_blocked": float(
                sum(r.message_counters.get("messages_blocked", 0) for r in results)
            ),
            "second_chance_votes": float(sum(r.second_chance_inclusions for r in results)),
        }

    def artifact(self) -> FigureArtifact:
        """Package :meth:`rows` as a :class:`FigureArtifact` whose
        ``write()`` exports CSV/JSON/Markdown/plot files; multi-epoch
        runs plot throughput per epoch."""
        multi_epoch = len(self.epochs) > 1
        return FigureArtifact(
            name=f"scenario-{self.spec.name}",
            title=f"Scenario: {self.spec.name}"
            + (f" — {self.spec.description}" if self.spec.description else ""),
            rows=self.rows(),
            series_key="scenario" if multi_epoch else None,
            x="epoch" if multi_epoch else None,
            y="throughput_ops" if multi_epoch else None,
        )

    # -- stable JSON schema -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The versioned JSON document (inverse of :meth:`from_dict`)."""
        return {
            "schema": RESULT_SCHEMA,
            "runtime": self.runtime,
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "attackers": list(self.attackers),
            "wall_clock_seconds": self.wall_clock_seconds,
            "epochs": [outcome.to_dict() for outcome in self.epochs],
            "summary": self.summary(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from its :meth:`to_dict` document.

        Raises ``ValueError`` when the document's ``schema`` tag is not
        :data:`RESULT_SCHEMA` — bump-and-migrate rather than guessing at
        shapes.
        """
        from repro.scenarios.spec import ScenarioSpec

        schema = data.get("schema")
        if schema != RESULT_SCHEMA:
            raise ValueError(f"unsupported result schema {schema!r} (want {RESULT_SCHEMA!r})")
        wall_clock = data.get("wall_clock_seconds")
        return cls(
            spec=ScenarioSpec.from_dict(data["spec"]),
            epochs=[EpochMetrics.from_dict(entry) for entry in data["epochs"]],
            attackers=tuple(int(pid) for pid in data.get("attackers", ())),
            runtime=str(data.get("runtime", "sim")),
            wall_clock_seconds=None if wall_clock is None else float(wall_clock),
        )

    def to_json(self, indent: int = 2) -> str:
        """:meth:`to_dict` rendered as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Parse a :meth:`to_json` string back into a :class:`RunResult`."""
        return cls.from_dict(json.loads(text))
