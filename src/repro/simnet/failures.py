"""Fault injection: crash schedules and targeted message suppression.

The resiliency evaluation (Figure 4) crashes up to ``f`` replicas that are
then randomly placed in the aggregation tree each view; the security
analysis additionally needs Byzantine behaviours, which are implemented as
protocol-level strategy objects (see :mod:`repro.attacks`) rather than
here — this module only provides the *mechanics* of failing processes and
links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.simnet.events import Simulator
from repro.simnet.network import Network

__all__ = ["FailurePlan", "FailureInjector", "PartitionEvent"]


@dataclass(frozen=True)
class PartitionEvent:
    """A timed network partition with an optional heal time.

    Attributes:
        at: Virtual time the partition takes effect.
        groups: The connectivity components; messages only flow within a
            group while the partition is active.  Processes not listed in
            any group are isolated from everyone.
        heal_at: Virtual time the partition heals (all links restored);
            ``None`` means it never heals.
    """

    at: float
    groups: Tuple[Tuple[int, ...], ...]
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("partition time cannot be negative")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError("heal time must be after the partition time")
        if not self.groups:
            raise ValueError("a partition needs at least one group")
        # Normalise to hashable tuples so specs stay frozen/comparable.
        object.__setattr__(self, "groups", tuple(tuple(group) for group in self.groups))

    def scaled(self, factor: float) -> "PartitionEvent":
        """The same partition with both times scaled (for --quick runs)."""
        return PartitionEvent(
            at=self.at * factor,
            groups=self.groups,
            heal_at=None if self.heal_at is None else self.heal_at * factor,
        )

    def group_map(self) -> Dict[int, int]:
        """Process id -> connectivity-group index (unlisted ids absent)."""
        return {
            pid: index for index, group in enumerate(self.groups) for pid in group
        }

    def severs(self, src: int, dst: int, group_of: Optional[Dict[int, int]] = None) -> bool:
        """Whether this partition cuts the directed link ``src -> dst``.

        The single crossing predicate shared by the simulated network's
        :meth:`FailureInjector.schedule_partition` and the live chaos
        driver, so the two substrates cannot drift: messages flow only
        within a group, and processes not listed in any group are
        isolated from everyone (never from themselves).
        """
        if src == dst:
            return False
        if group_of is None:
            group_of = self.group_map()
        return not (
            src in group_of and dst in group_of and group_of[src] == group_of[dst]
        )


@dataclass(frozen=True)
class FailurePlan:
    """A declarative description of which processes crash (and restart) when.

    Attributes:
        crashes: Mapping ``process id -> crash time`` (seconds of virtual
            time).  A time of ``0.0`` means crashed from the start.
        restarts: Mapping ``process id -> restart time`` for crash-restart
            churn; a process listed here recovers (keeping its pre-crash
            state, losing every message sent meanwhile) at that time.
    """

    crashes: Dict[int, float] = field(default_factory=dict)
    restarts: Dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pid, restart_time in self.restarts.items():
            crash_time = self.crashes.get(pid)
            if crash_time is None:
                raise ValueError(f"process {pid} restarts but never crashes")
            if restart_time <= crash_time:
                raise ValueError(f"process {pid} restarts before it crashes")

    @classmethod
    def crash_from_start(cls, process_ids: Iterable[int]) -> "FailurePlan":
        return cls(crashes={pid: 0.0 for pid in process_ids})

    @classmethod
    def random_crashes(
        cls,
        committee_size: int,
        count: int,
        seed: int = 0,
        at_time: float = 0.0,
        exclude: Sequence[int] = (),
        restart_at: Optional[float] = None,
    ) -> "FailurePlan":
        """Crash ``count`` random processes (excluding ``exclude``) at ``at_time``.

        With ``restart_at`` the crashed cohort recovers at that time
        (crash-restart churn instead of permanent crash-stop).
        """
        rng = random.Random(seed)
        candidates = [pid for pid in range(committee_size) if pid not in set(exclude)]
        if count > len(candidates):
            raise ValueError("cannot crash more processes than are available")
        chosen = rng.sample(candidates, count)
        restarts = {} if restart_at is None else {pid: restart_at for pid in chosen}
        return cls(crashes={pid: at_time for pid in chosen}, restarts=restarts)

    @property
    def faulty_ids(self) -> List[int]:
        return sorted(self.crashes)

    def __len__(self) -> int:
        return len(self.crashes)


class FailureInjector:
    """Applies a :class:`FailurePlan` to a running simulation."""

    def __init__(self, simulator: Simulator, network: Network) -> None:
        self.simulator = simulator
        self.network = network
        self._applied: List[int] = []

    def apply(self, plan: FailurePlan) -> None:
        """Schedule every crash (and restart) in ``plan``."""
        for process_id, crash_time in plan.crashes.items():
            if crash_time <= self.simulator.now:
                self._crash_now(process_id)
            else:
                self.simulator.schedule_at(crash_time, self._crash_now, process_id)
        for process_id, restart_time in plan.restarts.items():
            self.simulator.schedule_at(restart_time, self._restart_now, process_id)

    def _crash_now(self, process_id: int) -> None:
        process = self.network.process(process_id)
        if not process.crashed:
            process.crash()
            self._applied.append(process_id)

    def _restart_now(self, process_id: int) -> None:
        self.network.process(process_id).recover()

    # -- partitions -----------------------------------------------------------
    def schedule_partition(self, event: PartitionEvent) -> None:
        """Schedule a partition (and its heal) as link-level suppression.

        At ``event.at`` every directed link crossing a group boundary is
        blocked on the network; at ``event.heal_at`` exactly those links
        are unblocked again, so overlapping partitions compose without
        clobbering each other's state.
        """
        blocked: Set[Tuple[int, int]] = set()

        def apply() -> None:
            group_of = event.group_map()
            for src in self.network.process_ids:
                for dst in self.network.process_ids:
                    if event.severs(src, dst, group_of):
                        self.network.block_link(src, dst, bidirectional=False)
                        blocked.add((src, dst))

        def heal() -> None:
            for src, dst in blocked:
                self.network.unblock_link(src, dst, bidirectional=False)
            blocked.clear()

        if event.heal_at is not None and event.heal_at <= self.simulator.now:
            return  # already healed before it could take effect
        if event.at <= self.simulator.now:
            apply()
        else:
            self.simulator.schedule_at(event.at, apply)
        if event.heal_at is not None:
            self.simulator.schedule_at(event.heal_at, heal)

    def schedule_partitions(self, events: Iterable[PartitionEvent]) -> None:
        for event in events:
            self.schedule_partition(event)

    def crash_link(self, src: int, dst: int, bidirectional: bool = True) -> None:
        """Permanently drop all messages on a link (models a broken cable)."""

        def rule(message_src: int, message_dst: int, _message) -> bool:
            if message_src == src and message_dst == dst:
                return True
            if bidirectional and message_src == dst and message_dst == src:
                return True
            return False

        self.network.add_drop_rule(rule)

    @property
    def crashed_processes(self) -> List[int]:
        return sorted(self._applied)
