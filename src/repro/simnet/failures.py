"""Fault injection: crash schedules and targeted message suppression.

The resiliency evaluation (Figure 4) crashes up to ``f`` replicas that are
then randomly placed in the aggregation tree each view; the security
analysis additionally needs Byzantine behaviours, which are implemented as
protocol-level strategy objects (see :mod:`repro.attacks`) rather than
here — this module only provides the *mechanics* of failing processes and
links.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.simnet.events import Simulator
from repro.simnet.network import Network

__all__ = ["FailurePlan", "FailureInjector"]


@dataclass(frozen=True)
class FailurePlan:
    """A declarative description of which processes crash and when.

    Attributes:
        crashes: Mapping ``process id -> crash time`` (seconds of virtual
            time).  A time of ``0.0`` means crashed from the start.
    """

    crashes: Dict[int, float] = field(default_factory=dict)

    @classmethod
    def crash_from_start(cls, process_ids: Iterable[int]) -> "FailurePlan":
        return cls(crashes={pid: 0.0 for pid in process_ids})

    @classmethod
    def random_crashes(
        cls,
        committee_size: int,
        count: int,
        seed: int = 0,
        at_time: float = 0.0,
        exclude: Sequence[int] = (),
    ) -> "FailurePlan":
        """Crash ``count`` random processes (excluding ``exclude``) at ``at_time``."""
        rng = random.Random(seed)
        candidates = [pid for pid in range(committee_size) if pid not in set(exclude)]
        if count > len(candidates):
            raise ValueError("cannot crash more processes than are available")
        chosen = rng.sample(candidates, count)
        return cls(crashes={pid: at_time for pid in chosen})

    @property
    def faulty_ids(self) -> List[int]:
        return sorted(self.crashes)

    def __len__(self) -> int:
        return len(self.crashes)


class FailureInjector:
    """Applies a :class:`FailurePlan` to a running simulation."""

    def __init__(self, simulator: Simulator, network: Network) -> None:
        self.simulator = simulator
        self.network = network
        self._applied: List[int] = []

    def apply(self, plan: FailurePlan) -> None:
        """Schedule every crash in ``plan``."""
        for process_id, crash_time in plan.crashes.items():
            if crash_time <= self.simulator.now:
                self._crash_now(process_id)
            else:
                self.simulator.schedule_at(crash_time, self._crash_now, process_id)

    def _crash_now(self, process_id: int) -> None:
        process = self.network.process(process_id)
        if not process.crashed:
            process.crash()
            self._applied.append(process_id)

    def crash_link(self, src: int, dst: int, bidirectional: bool = True) -> None:
        """Permanently drop all messages on a link (models a broken cable)."""

        def rule(message_src: int, message_dst: int, _message) -> bool:
            if message_src == src and message_dst == dst:
                return True
            if bidirectional and message_src == dst and message_dst == src:
                return True
            return False

        self.network.add_drop_rule(rule)

    @property
    def crashed_processes(self) -> List[int]:
        return sorted(self._applied)
