"""Metric collection for protocol experiments.

Collects the quantities reported in the paper's evaluation: throughput
(committed operations per second), client-perceived latency, view
outcomes (successful / failed), quorum-certificate sizes (vote inclusion)
and per-process CPU utilisation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

__all__ = ["MetricsCollector", "LatencyStats"]


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics over a set of latency samples (seconds)."""

    count: int
    mean: float
    median: float
    p90: float
    p99: float
    maximum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if not samples:
            return cls(count=0, mean=0.0, median=0.0, p90=0.0, p99=0.0, maximum=0.0)
        ordered = sorted(samples)

        def percentile(fraction: float) -> float:
            index = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
            return ordered[index]

        # Float summation can drift the mean a ULP outside [min, max]
        # (e.g. many identical samples); clamp to the exact-arithmetic
        # envelope so the stats invariants hold for downstream consumers.
        mean = sum(ordered) / len(ordered)
        mean = min(max(mean, ordered[0]), ordered[-1])
        return cls(
            count=len(ordered),
            mean=mean,
            median=percentile(0.5),
            p90=percentile(0.9),
            p99=percentile(0.99),
            maximum=ordered[-1],
        )

    def to_dict(self) -> Dict[str, float]:
        """A JSON-ready representation (inverse of :meth:`from_dict`)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "p90": self.p90,
            "p99": self.p99,
            "maximum": self.maximum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "LatencyStats":
        return cls(
            count=int(data["count"]),
            mean=float(data["mean"]),
            median=float(data["median"]),
            p90=float(data["p90"]),
            p99=float(data["p99"]),
            maximum=float(data["maximum"]),
        )


class MetricsCollector:
    """Accumulates measurements during a simulation run."""

    def __init__(self, warmup: float = 0.0) -> None:
        #: Samples recorded before ``warmup`` virtual seconds are discarded,
        #: mirroring the paper's 5-second warm-up period.
        self.warmup = warmup
        self._commit_events: List[tuple[float, int]] = []
        self._latencies: List[float] = []
        self._view_outcomes: List[tuple[int, bool]] = []
        self._qc_sizes: List[int] = []
        self._second_chance_inclusions = 0
        self._counters: Dict[str, int] = {}
        self.start_time = 0.0
        self.end_time = 0.0
        #: Optional consensus event tracer (:class:`repro.observe.trace.Tracer`).
        #: The collector is the one object every replica and aggregator
        #: already holds, so it doubles as the tracer attachment point;
        #: emission sites check ``is None`` and skip, keeping the traced-off
        #: hot path free.  Typed ``object`` to avoid importing repro.observe
        #: here (simnet sits below it in the layer diagram).
        self.tracer: object = None

    # -- recording -------------------------------------------------------------
    def record_commit(self, time: float, operation_count: int) -> None:
        """A block with ``operation_count`` client operations committed."""
        if time >= self.warmup:
            self._commit_events.append((time, operation_count))

    def record_latency(self, time: float, latency: float) -> None:
        if time >= self.warmup:
            self._latencies.append(latency)

    def record_latencies(self, time: float, latencies: Iterable[float]) -> None:
        """Bulk :meth:`record_latency` — one warmup check for a whole batch.

        Commit handlers record a latency sample per request in the block;
        at batch sizes in the hundreds the per-call overhead is measurable
        on the live hot path, so they hand the whole batch over at once.
        """
        if time >= self.warmup:
            self._latencies.extend(latencies)

    def record_view(self, view: int, succeeded: bool) -> None:
        self._view_outcomes.append((view, succeeded))

    def record_qc_size(self, size: int) -> None:
        self._qc_sizes.append(size)

    def record_second_chance_inclusion(self, count: int = 1) -> None:
        self._second_chance_inclusions += count

    def increment(self, counter: str, amount: int = 1) -> None:
        self._counters[counter] = self._counters.get(counter, 0) + amount

    def mark_window(self, start_time: float, end_time: float) -> None:
        """Record the measurement window used for rate computations."""
        self.start_time = start_time
        self.end_time = end_time

    # -- summaries --------------------------------------------------------------
    @property
    def measurement_duration(self) -> float:
        duration = self.end_time - max(self.start_time, self.warmup)
        return max(duration, 0.0)

    def throughput(self) -> float:
        """Committed operations per second over the measurement window."""
        duration = self.measurement_duration
        if duration <= 0:
            return 0.0
        operations = sum(count for _time, count in self._commit_events)
        return operations / duration

    def committed_operations(self) -> int:
        return sum(count for _time, count in self._commit_events)

    def committed_blocks(self) -> int:
        return len(self._commit_events)

    def latency_stats(self) -> LatencyStats:
        return LatencyStats.from_samples(self._latencies)

    def latency_samples(self) -> List[float]:
        """The raw post-warmup latency samples, in seconds (the registry
        histogram fill reads these at summary time)."""
        return list(self._latencies)

    def failed_view_fraction(self) -> float:
        if not self._view_outcomes:
            return 0.0
        failed = sum(1 for _view, ok in self._view_outcomes if not ok)
        return failed / len(self._view_outcomes)

    def total_views(self) -> int:
        return len(self._view_outcomes)

    def average_qc_size(self) -> float:
        if not self._qc_sizes:
            return 0.0
        return sum(self._qc_sizes) / len(self._qc_sizes)

    def qc_sizes(self) -> List[int]:
        return list(self._qc_sizes)

    def second_chance_inclusions(self) -> int:
        return self._second_chance_inclusions

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def summary(self) -> Dict[str, float]:
        """A flat dictionary of headline metrics (used by the bench harness)."""
        latency = self.latency_stats()
        return {
            "throughput_ops_per_sec": self.throughput(),
            "committed_operations": float(self.committed_operations()),
            "committed_blocks": float(self.committed_blocks()),
            "latency_mean_sec": latency.mean,
            "latency_p90_sec": latency.p90,
            "latency_p99_sec": latency.p99,
            "failed_view_fraction": self.failed_view_fraction(),
            "total_views": float(self.total_views()),
            "average_qc_size": self.average_qc_size(),
            "second_chance_inclusions": float(self.second_chance_inclusions()),
        }
