"""Event queue and virtual clock for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["EventHandle", "EventQueue", "Simulator"]


@dataclass(order=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


@dataclass
class EventHandle:
    """A handle to a scheduled event, usable for cancellation."""

    _event: _Event

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        self._event.cancelled = True


class EventQueue:
    """A deterministic min-heap of timestamped events.

    Ties are broken by insertion order so runs are fully reproducible.
    """

    def __init__(self) -> None:
        self._heap: list[_Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        event = _Event(time=time, sequence=next(self._counter), callback=callback, args=args)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def pop(self) -> _Event:
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class Simulator:
    """The virtual clock driving all processes and the network.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.5, callback, arg1)
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise ValueError("cannot schedule events in the past")
        return self._queue.push(time, callback, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until``, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        processed = 0
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                return self._now
            event = self._queue.pop()
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self._now < until:
            self._now = until
        return self._now
