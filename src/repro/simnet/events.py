"""Event queue and virtual clock for the discrete-event simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = ["EventHandle", "EventQueue", "Simulator"]


@dataclass(slots=True)
class _Event:
    time: float
    sequence: int
    callback: Callable[..., None]
    args: tuple = ()
    cancelled: bool = False
    popped: bool = False


@dataclass(slots=True)
class EventHandle:
    """A handle to a scheduled event, usable for cancellation."""

    _event: _Event
    _queue: "Optional[EventQueue]" = None

    @property
    def time(self) -> float:
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> None:
        if not self._event.cancelled:
            self._event.cancelled = True
            # Cancelling an event that already fired (popped) must not
            # touch the live count — it no longer occupies the heap.  The
            # pacemaker does this constantly (a timeout handler re-arms
            # the timer that just fired), and the spurious decrements used
            # to starve far-future events such as restart schedules.
            if self._queue is not None and not self._event.popped:
                self._queue._live -= 1


class EventQueue:
    """A deterministic min-heap of timestamped events.

    Ties are broken by insertion order so runs are fully reproducible.
    Heap entries are ``(time, sequence, event)`` tuples so ordering uses
    C-level tuple comparison instead of dataclass ``__lt__`` dispatch (the
    unique sequence number guarantees the event itself is never compared).
    ``len()`` and truthiness count *live* (non-cancelled) events, so
    ``while queue: queue.pop()`` always terminates cleanly.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, _Event]] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        sequence = next(self._counter)
        event = _Event(time=time, sequence=sequence, callback=callback, args=args)
        heapq.heappush(self._heap, (time, sequence, event))
        self._live += 1
        return EventHandle(event, self)

    def pop(self) -> _Event:
        """Pop the earliest live event, discarding cancelled ones."""
        while True:
            event = heapq.heappop(self._heap)[2]
            if not event.cancelled:
                event.popped = True
                self._live -= 1
                return event

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """The virtual clock driving all processes and the network.

    Typical usage::

        sim = Simulator()
        sim.schedule(0.5, callback, arg1)
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError("cannot schedule events in the past")
        return self._queue.push(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at an absolute virtual time."""
        if time < self._now:
            raise ValueError("cannot schedule events in the past")
        return self._queue.push(time, callback, *args)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until``, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        processed = 0
        while self._queue:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                return self._now
            event = self._queue.pop()
            self._now = event.time
            event.callback(*event.args)
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        if until is not None and self._now < until:
            self._now = until
        return self._now
