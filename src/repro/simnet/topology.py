"""Topology-aware latency models.

The paper's testbed is a single rack behind one 10 Gbps top-of-rack switch
with sub-millisecond latency.  To study how Iniva behaves on less uniform
networks (geo-distributed committees are the norm for public blockchains)
the simulator also provides latency models in which the delay depends on
*where* the two processes sit:

* :class:`RackTopologyLatency` — processes grouped into racks / regions;
  intra-group messages are fast, inter-group messages pay a larger, noisy
  delay.
* :class:`MatrixLatency` — an explicit all-pairs latency matrix, e.g. one
  measured between cloud regions.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Sequence, Tuple

from repro.simnet.latency import LatencyModel

__all__ = [
    "RackTopologyLatency",
    "MatrixLatency",
    "RegionMatrixLatency",
    "WAN_REGION_MATRIX",
]

# Approximate one-way delays (seconds) between five cloud regions
# (us-east, us-west, eu-west, ap-southeast, sa-east).  This is the default
# matrix behind ``TopologySpec(kind="wan")`` and pairs naturally with
# :class:`RegionMatrixLatency` below.
WAN_REGION_MATRIX: Tuple[Tuple[float, ...], ...] = (
    (0.0, 0.032, 0.040, 0.105, 0.060),
    (0.032, 0.0, 0.070, 0.085, 0.090),
    (0.040, 0.070, 0.0, 0.090, 0.095),
    (0.105, 0.085, 0.090, 0.0, 0.160),
    (0.060, 0.090, 0.095, 0.160, 0.0),
)


class RackTopologyLatency(LatencyModel):
    """Two-tier latency: cheap within a rack/region, expensive across.

    Args:
        group_of: Mapping from process id to its rack/region index.
            Processes missing from the mapping share the implicit group
            ``-1``.
        intra_delay: Mean one-way delay between processes in the same group.
        inter_delay: Mean one-way delay between processes in different groups.
        jitter: Relative standard deviation applied to either mean.
    """

    def __init__(
        self,
        group_of: Mapping[int, int],
        intra_delay: float = 0.0003,
        inter_delay: float = 0.02,
        jitter: float = 0.1,
    ) -> None:
        if intra_delay <= 0 or inter_delay <= 0:
            raise ValueError("delays must be positive")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self._group_of: Dict[int, int] = dict(group_of)
        self.intra_delay = intra_delay
        self.inter_delay = inter_delay
        self.jitter = jitter

    @classmethod
    def evenly_spread(
        cls,
        committee_size: int,
        num_groups: int,
        intra_delay: float = 0.0003,
        inter_delay: float = 0.02,
        jitter: float = 0.1,
    ) -> "RackTopologyLatency":
        """Assign processes round-robin to ``num_groups`` groups."""
        if num_groups <= 0:
            raise ValueError("need at least one group")
        mapping = {pid: pid % num_groups for pid in range(committee_size)}
        return cls(mapping, intra_delay=intra_delay, inter_delay=inter_delay, jitter=jitter)

    def group(self, process_id: int) -> int:
        return self._group_of.get(process_id, -1)

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        base = self.intra_delay if self.group(src) == self.group(dst) else self.inter_delay
        if not self.jitter:
            return base
        sampled = rng.gauss(base, base * self.jitter)
        return max(sampled, base * 0.1)

    @property
    def upper_bound(self) -> float:
        return self.inter_delay * (1.0 + 4.0 * self.jitter)


class MatrixLatency(LatencyModel):
    """Latency drawn from an explicit all-pairs matrix.

    Args:
        matrix: ``matrix[src][dst]`` is the mean one-way delay; the matrix
            must be square and cover every process id used on the network.
        jitter: Relative standard deviation applied to each entry.
    """

    def __init__(self, matrix: Sequence[Sequence[float]], jitter: float = 0.0) -> None:
        size = len(matrix)
        if size == 0 or any(len(row) != size for row in matrix):
            raise ValueError("latency matrix must be square and non-empty")
        if any(value < 0 for row in matrix for value in row):
            raise ValueError("latencies cannot be negative")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self._matrix = [list(row) for row in matrix]
        self.jitter = jitter

    @property
    def size(self) -> int:
        return len(self._matrix)

    def mean(self, src: int, dst: int) -> float:
        return self._matrix[src][dst]

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        base = self._matrix[src][dst]
        if not self.jitter or base == 0:
            return base
        sampled = rng.gauss(base, base * self.jitter)
        return max(sampled, base * 0.1)

    @property
    def upper_bound(self) -> float:
        worst = max(max(row) for row in self._matrix)
        return worst * (1.0 + 4.0 * self.jitter)


class RegionMatrixLatency(LatencyModel):
    """WAN latency: a region-level all-pairs matrix plus fast local links.

    A committee of ``n`` processes mapped onto ``r`` regions only needs an
    ``r x r`` latency matrix (e.g. measured one-way delays between cloud
    regions), not an ``n x n`` one — this model does that mapping, using
    ``intra_delay`` for two processes in the same region.

    Args:
        region_of: Mapping from process id to its region index (rows of
            ``region_matrix``).  Unmapped processes share region ``0``.
        region_matrix: ``region_matrix[a][b]`` is the mean one-way delay
            between a process in region ``a`` and one in region ``b``.
        intra_delay: Mean one-way delay within a region.
        jitter: Relative standard deviation applied to either mean.
    """

    def __init__(
        self,
        region_of: Mapping[int, int],
        region_matrix: Sequence[Sequence[float]],
        intra_delay: float = 0.0005,
        jitter: float = 0.1,
    ) -> None:
        size = len(region_matrix)
        if size == 0 or any(len(row) != size for row in region_matrix):
            raise ValueError("region matrix must be square and non-empty")
        if any(value < 0 for row in region_matrix for value in row):
            raise ValueError("latencies cannot be negative")
        if intra_delay <= 0:
            raise ValueError("intra-region delay must be positive")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        if any(region < 0 or region >= size for region in region_of.values()):
            raise ValueError("process mapped to a region outside the matrix")
        self._region_of: Dict[int, int] = dict(region_of)
        self._matrix = [list(row) for row in region_matrix]
        self.intra_delay = intra_delay
        self.jitter = jitter

    @classmethod
    def evenly_spread(
        cls,
        committee_size: int,
        region_matrix: Sequence[Sequence[float]],
        intra_delay: float = 0.0005,
        jitter: float = 0.1,
    ) -> "RegionMatrixLatency":
        """Assign processes round-robin over the matrix's regions."""
        regions = len(region_matrix)
        mapping = {pid: pid % regions for pid in range(committee_size)}
        return cls(mapping, region_matrix, intra_delay=intra_delay, jitter=jitter)

    @property
    def num_regions(self) -> int:
        return len(self._matrix)

    def region(self, process_id: int) -> int:
        return self._region_of.get(process_id, 0)

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        src_region, dst_region = self.region(src), self.region(dst)
        if src_region == dst_region:
            base = self.intra_delay
        else:
            base = self._matrix[src_region][dst_region]
        if not self.jitter or base == 0:
            return base
        sampled = rng.gauss(base, base * self.jitter)
        return max(sampled, base * 0.1)

    @property
    def upper_bound(self) -> float:
        worst = max(max(max(row) for row in self._matrix), self.intra_delay)
        return worst * (1.0 + 4.0 * self.jitter)
