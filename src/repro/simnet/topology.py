"""Topology-aware latency models.

The paper's testbed is a single rack behind one 10 Gbps top-of-rack switch
with sub-millisecond latency.  To study how Iniva behaves on less uniform
networks (geo-distributed committees are the norm for public blockchains)
the simulator also provides latency models in which the delay depends on
*where* the two processes sit:

* :class:`RackTopologyLatency` — processes grouped into racks / regions;
  intra-group messages are fast, inter-group messages pay a larger, noisy
  delay.
* :class:`MatrixLatency` — an explicit all-pairs latency matrix, e.g. one
  measured between cloud regions.
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Sequence

from repro.simnet.latency import LatencyModel

__all__ = ["RackTopologyLatency", "MatrixLatency"]


class RackTopologyLatency(LatencyModel):
    """Two-tier latency: cheap within a rack/region, expensive across.

    Args:
        group_of: Mapping from process id to its rack/region index.
            Processes missing from the mapping share the implicit group
            ``-1``.
        intra_delay: Mean one-way delay between processes in the same group.
        inter_delay: Mean one-way delay between processes in different groups.
        jitter: Relative standard deviation applied to either mean.
    """

    def __init__(
        self,
        group_of: Mapping[int, int],
        intra_delay: float = 0.0003,
        inter_delay: float = 0.02,
        jitter: float = 0.1,
    ) -> None:
        if intra_delay <= 0 or inter_delay <= 0:
            raise ValueError("delays must be positive")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self._group_of: Dict[int, int] = dict(group_of)
        self.intra_delay = intra_delay
        self.inter_delay = inter_delay
        self.jitter = jitter

    @classmethod
    def evenly_spread(
        cls,
        committee_size: int,
        num_groups: int,
        intra_delay: float = 0.0003,
        inter_delay: float = 0.02,
        jitter: float = 0.1,
    ) -> "RackTopologyLatency":
        """Assign processes round-robin to ``num_groups`` groups."""
        if num_groups <= 0:
            raise ValueError("need at least one group")
        mapping = {pid: pid % num_groups for pid in range(committee_size)}
        return cls(mapping, intra_delay=intra_delay, inter_delay=inter_delay, jitter=jitter)

    def group(self, process_id: int) -> int:
        return self._group_of.get(process_id, -1)

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        base = self.intra_delay if self.group(src) == self.group(dst) else self.inter_delay
        if not self.jitter:
            return base
        sampled = rng.gauss(base, base * self.jitter)
        return max(sampled, base * 0.1)

    def upper_bound(self) -> float:
        return self.inter_delay * (1.0 + 4.0 * self.jitter)


class MatrixLatency(LatencyModel):
    """Latency drawn from an explicit all-pairs matrix.

    Args:
        matrix: ``matrix[src][dst]`` is the mean one-way delay; the matrix
            must be square and cover every process id used on the network.
        jitter: Relative standard deviation applied to each entry.
    """

    def __init__(self, matrix: Sequence[Sequence[float]], jitter: float = 0.0) -> None:
        size = len(matrix)
        if size == 0 or any(len(row) != size for row in matrix):
            raise ValueError("latency matrix must be square and non-empty")
        if any(value < 0 for row in matrix for value in row):
            raise ValueError("latencies cannot be negative")
        if not 0 <= jitter < 1:
            raise ValueError("jitter must be in [0, 1)")
        self._matrix = [list(row) for row in matrix]
        self.jitter = jitter

    @property
    def size(self) -> int:
        return len(self._matrix)

    def mean(self, src: int, dst: int) -> float:
        return self._matrix[src][dst]

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        base = self._matrix[src][dst]
        if not self.jitter or base == 0:
            return base
        sampled = rng.gauss(base, base * self.jitter)
        return max(sampled, base * 0.1)

    def upper_bound(self) -> float:
        worst = max(max(row) for row in self._matrix)
        return worst * (1.0 + 4.0 * self.jitter)
