"""Discrete-event network simulation substrate.

The paper evaluates Iniva on a 25-machine cluster.  This package provides
the simulation substitute: a deterministic, seeded discrete-event
simulator with

* an event queue and virtual clock (:mod:`repro.simnet.events`),
* message-passing processes with timers and a single-core CPU model
  (:mod:`repro.simnet.process`),
* a network with configurable latency distributions, bandwidth cost,
  message loss and partitions (:mod:`repro.simnet.network`,
  :mod:`repro.simnet.latency`, :mod:`repro.simnet.topology`),
* fault injection (crash and message-drop schedules,
  :mod:`repro.simnet.failures`),
* metric collection (throughput, latency percentiles, CPU utilisation,
  message/byte counters, :mod:`repro.simnet.metrics`), and
* message tracing for debugging and overhead analysis
  (:mod:`repro.simnet.trace`).
"""

from repro.simnet.events import EventHandle, EventQueue, Simulator
from repro.simnet.latency import (
    ConstantLatency,
    LatencyModel,
    LinkBandwidth,
    NormalLatency,
    UniformLatency,
)
from repro.simnet.metrics import MetricsCollector
from repro.simnet.network import Network
from repro.simnet.process import CpuCostModel, Process, Timer
from repro.simnet.failures import FailureInjector, FailurePlan, PartitionEvent
from repro.simnet.topology import MatrixLatency, RackTopologyLatency, RegionMatrixLatency
from repro.simnet.trace import MessageTracer, TraceRecord

__all__ = [
    "ConstantLatency",
    "CpuCostModel",
    "EventHandle",
    "EventQueue",
    "FailureInjector",
    "FailurePlan",
    "LatencyModel",
    "LinkBandwidth",
    "MatrixLatency",
    "MessageTracer",
    "MetricsCollector",
    "Network",
    "NormalLatency",
    "PartitionEvent",
    "Process",
    "RackTopologyLatency",
    "RegionMatrixLatency",
    "Simulator",
    "Timer",
    "TraceRecord",
    "UniformLatency",
]
