"""Network latency models.

The paper's cluster has sub-millisecond latency on a 10 Gbps switch; the
experiment configurations therefore default to a normal distribution with
a 0.5 ms mean.  All models are seeded and deterministic.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Mapping, Optional, Tuple

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "NormalLatency",
    "LinkBandwidth",
]


class LatencyModel(ABC):
    """Samples one-way message latencies in seconds."""

    @abstractmethod
    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Return the propagation latency for a message from src to dst."""

    @property
    @abstractmethod
    def upper_bound(self) -> float:
        """The synchrony bound Delta assumed by the protocol timers."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 0.0005) -> None:
        if delay < 0:
            raise ValueError("latency cannot be negative")
        self.delay = delay

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.delay

    @property
    def upper_bound(self) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.0002, high: float = 0.001) -> None:
        if not 0 <= low <= high:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def upper_bound(self) -> float:
        return self.high


class NormalLatency(LatencyModel):
    """Truncated normal latency (mean/std), never below ``minimum``.

    ``upper_bound`` reports ``mean + 4 * std`` which the protocol uses as
    its synchrony assumption Delta.
    """

    def __init__(self, mean: float = 0.0005, std: float = 0.0001, minimum: float = 0.00005) -> None:
        if mean <= 0 or std < 0 or minimum < 0:
            raise ValueError("invalid latency parameters")
        self.mean = mean
        self.std = std
        self.minimum = minimum

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return max(self.minimum, rng.gauss(self.mean, self.std))

    @property
    def upper_bound(self) -> float:
        return self.mean + 4 * self.std


class LinkBandwidth:
    """Per-link transmission capacity with FIFO queuing delay.

    Unlike the network's legacy scalar ``bandwidth_bytes_per_sec`` (a pure
    size-proportional delay), this models each directed link as a serial
    pipe: a message can only start transmitting once the link has finished
    the previous one, so a burst on a thin link queues up and the delay of
    the k-th message includes the backlog in front of it.  This is what
    makes WAN scenarios saturate realistically instead of scaling latency
    linearly with size alone.

    Args:
        default_bytes_per_sec: Capacity of every link without an override.
            ``None`` or ``0`` means that link adds no transmission delay.
        link_overrides: Optional per-directed-link ``(src, dst) -> rate``
            capacities (e.g. thin cross-region links).
    """

    def __init__(
        self,
        default_bytes_per_sec: Optional[float],
        link_overrides: Optional[Mapping[Tuple[int, int], float]] = None,
    ) -> None:
        if default_bytes_per_sec is not None and default_bytes_per_sec < 0:
            raise ValueError("bandwidth cannot be negative")
        self.default = default_bytes_per_sec
        self._overrides: Dict[Tuple[int, int], float] = dict(link_overrides or {})
        if any(rate < 0 for rate in self._overrides.values()):
            raise ValueError("bandwidth cannot be negative")
        self._busy_until: Dict[Tuple[int, int], float] = {}

    def rate(self, src: int, dst: int) -> Optional[float]:
        return self._overrides.get((src, dst), self.default)

    def transmission_delay(self, src: int, dst: int, size_bytes: int, now: float) -> float:
        """Delay until ``size_bytes`` finish transmitting on ``src -> dst``.

        Mutates the link's queue state: the returned delay covers both the
        wait behind messages already occupying the link and this message's
        own transmission time.
        """
        rate = self.rate(src, dst)
        if not rate or size_bytes <= 0:
            return 0.0
        link = (src, dst)
        start = max(now, self._busy_until.get(link, 0.0))
        finished = start + size_bytes / rate
        self._busy_until[link] = finished
        return finished - now

    def reset(self) -> None:
        """Clear all queue state (e.g. between epochs of a scenario)."""
        self._busy_until.clear()
