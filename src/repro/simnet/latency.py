"""Network latency models.

The paper's cluster has sub-millisecond latency on a 10 Gbps switch; the
experiment configurations therefore default to a normal distribution with
a 0.5 ms mean.  All models are seeded and deterministic.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

__all__ = ["LatencyModel", "ConstantLatency", "UniformLatency", "NormalLatency"]


class LatencyModel(ABC):
    """Samples one-way message latencies in seconds."""

    @abstractmethod
    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Return the propagation latency for a message from src to dst."""

    @property
    @abstractmethod
    def upper_bound(self) -> float:
        """The synchrony bound Delta assumed by the protocol timers."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay`` seconds."""

    def __init__(self, delay: float = 0.0005) -> None:
        if delay < 0:
            raise ValueError("latency cannot be negative")
        self.delay = delay

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.delay

    @property
    def upper_bound(self) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Latency drawn uniformly from ``[low, high]``."""

    def __init__(self, low: float = 0.0002, high: float = 0.001) -> None:
        if not 0 <= low <= high:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)

    @property
    def upper_bound(self) -> float:
        return self.high


class NormalLatency(LatencyModel):
    """Truncated normal latency (mean/std), never below ``minimum``.

    ``upper_bound`` reports ``mean + 4 * std`` which the protocol uses as
    its synchrony assumption Delta.
    """

    def __init__(self, mean: float = 0.0005, std: float = 0.0001, minimum: float = 0.00005) -> None:
        if mean <= 0 or std < 0 or minimum < 0:
            raise ValueError("invalid latency parameters")
        self.mean = mean
        self.std = std
        self.minimum = minimum

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return max(self.minimum, rng.gauss(self.mean, self.std))

    @property
    def upper_bound(self) -> float:
        return self.mean + 4 * self.std
