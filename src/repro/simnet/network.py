"""The simulated network connecting processes.

Supports per-link latency sampling, bandwidth-proportional transmission
delay, probabilistic message loss, explicit drop rules (used by Byzantine
scenarios) and partitions.  All randomness is drawn from a seeded RNG so
experiments are reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Iterable, Optional, Set, Tuple

from repro.simnet.events import Simulator
from repro.simnet.latency import ConstantLatency, LatencyModel, LinkBandwidth
from repro.simnet.process import Process

__all__ = ["Network"]

DropRule = Callable[[int, int, Any], bool]


class Network:
    """Message transport between registered processes."""

    def __init__(
        self,
        simulator: Simulator,
        latency_model: Optional[LatencyModel] = None,
        seed: int = 0,
        loss_probability: float = 0.0,
        bandwidth_bytes_per_sec: Optional[float] = None,
        link_bandwidth: Optional[LinkBandwidth] = None,
    ) -> None:
        if not 0 <= loss_probability < 1:
            raise ValueError("loss probability must be in [0, 1)")
        self.simulator = simulator
        self.latency_model = latency_model or ConstantLatency()
        self.rng = random.Random(seed)
        self.loss_probability = loss_probability
        self.bandwidth = bandwidth_bytes_per_sec
        self.link_bandwidth = link_bandwidth
        self._processes: Dict[int, Process] = {}
        self._drop_rules: list[DropRule] = []
        self._partitions: list[Set[int]] = []
        # Directed links currently suppressed (network partitions, cuts),
        # reference-counted so overlapping partitions compose: healing one
        # must not restore a link another still blocks.
        self._blocked_links: Dict[Tuple[int, int], int] = {}
        # Observers get (event, time, src, dst, message) for every transport
        # event; used by repro.simnet.trace for debugging and analysis.
        self._observers: list = []
        # Counters for the evaluation harness.
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_blocked = 0
        self.bytes_sent = 0
        # Per-process counters so sim and live runs report the same
        # per-replica transport schema (RunResult.transport).  Drops and
        # delays are attributed to the *sender* — the live runtime counts
        # them at whichever node observed the event, so the per-replica
        # split is comparable-in-aggregate, not identical.
        self._sent_by: Dict[int, int] = {}
        self._bytes_by: Dict[int, int] = {}
        self._delivered_to: Dict[int, int] = {}
        self._dropped_by: Dict[int, int] = {}
        self._delayed_by: Dict[int, int] = {}

    # -- observation -----------------------------------------------------------
    def add_observer(self, observer) -> None:
        """Register a callback ``observer(event, time, src, dst, message)``.

        ``event`` is one of ``"send"``, ``"drop"`` or ``"deliver"``.
        """
        self._observers.append(observer)

    def remove_observer(self, observer) -> None:
        self._observers.remove(observer)

    def _notify(self, event: str, src: int, dst: int, message: Any) -> None:
        if not self._observers:
            return
        now = self.simulator.now
        for observer in self._observers:
            observer(event, now, src, dst, message)

    # -- membership -----------------------------------------------------------
    def register(self, process: Process) -> None:
        if process.process_id in self._processes:
            raise ValueError(f"process id {process.process_id} already registered")
        self._processes[process.process_id] = process

    def process(self, process_id: int) -> Process:
        return self._processes[process_id]

    @property
    def process_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._processes))

    # -- failure / partition configuration --------------------------------------
    def add_drop_rule(self, rule: DropRule) -> None:
        """Drop messages for which ``rule(src, dst, message)`` returns True."""
        self._drop_rules.append(rule)

    def clear_drop_rules(self) -> None:
        self._drop_rules.clear()

    def partition(self, groups: Iterable[Iterable[int]]) -> None:
        """Partition the network; messages only flow within a group."""
        self._partitions = [set(group) for group in groups]

    def heal_partition(self) -> None:
        self._partitions = []

    def block_link(self, src: int, dst: int, bidirectional: bool = True) -> None:
        """Suppress delivery on a directed link until :meth:`unblock_link`.

        Unlike :meth:`add_drop_rule` (permanent, rule-based) this is cheap
        to add *and remove*, which is what timed partitions with heal
        schedules need (see :meth:`FailureInjector.schedule_partition`).
        """
        for link in ((src, dst), (dst, src)) if bidirectional else ((src, dst),):
            self._blocked_links[link] = self._blocked_links.get(link, 0) + 1

    def unblock_link(self, src: int, dst: int, bidirectional: bool = True) -> None:
        for link in ((src, dst), (dst, src)) if bidirectional else ((src, dst),):
            count = self._blocked_links.get(link, 0)
            if count <= 1:
                self._blocked_links.pop(link, None)
            else:
                self._blocked_links[link] = count - 1

    @property
    def blocked_links(self) -> Set[Tuple[int, int]]:
        return set(self._blocked_links)

    def _partitioned(self, src: int, dst: int) -> bool:
        if not self._partitions:
            return False
        for group in self._partitions:
            if src in group and dst in group:
                return False
        return True

    # -- transport ----------------------------------------------------------------
    def send(self, src: int, dst: int, message: Any, size_bytes: int = 0) -> None:
        """Send ``message`` from ``src`` to ``dst`` with simulated delays."""
        self.messages_sent += 1
        self.bytes_sent += size_bytes
        self._sent_by[src] = self._sent_by.get(src, 0) + 1
        if size_bytes:
            self._bytes_by[src] = self._bytes_by.get(src, 0) + size_bytes
        self._notify("send", src, dst, message)
        destination = self._processes.get(dst)
        if destination is None or destination.crashed:
            self._count_drop(src, dst, message)
            return
        # A process's message to itself never crosses the network, so
        # partitions, drop rules and loss cannot touch it — mirroring the
        # live runtime, whose self-sends bypass the chaos pipeline.
        # (Delivery still goes through the event queue: never re-entrant.)
        if src != dst:
            if self._partitioned(src, dst) or (src, dst) in self._blocked_links:
                self.messages_blocked += 1
                self._count_drop(src, dst, message)
                return
            if any(rule(src, dst, message) for rule in self._drop_rules):
                self._count_drop(src, dst, message)
                return
            if self.loss_probability and self.rng.random() < self.loss_probability:
                self._count_drop(src, dst, message)
                return
        delay = self.latency_model.sample(self.rng, src, dst)
        if self.bandwidth and size_bytes:
            delay += size_bytes / self.bandwidth
        if self.link_bandwidth is not None and src != dst:
            delay += self.link_bandwidth.transmission_delay(
                src, dst, size_bytes, self.simulator.now
            )
        if src == dst:
            delay = 0.0
        if delay > 0:
            self._delayed_by[src] = self._delayed_by.get(src, 0) + 1
        self.simulator.schedule(delay, self._finalise_delivery, src, dst, message)

    def _count_drop(self, src: int, dst: int, message: Any) -> None:
        self.messages_dropped += 1
        self._dropped_by[src] = self._dropped_by.get(src, 0) + 1
        self._notify("drop", src, dst, message)

    def _finalise_delivery(self, src: int, dst: int, message: Any) -> None:
        destination = self._processes.get(dst)
        if destination is None or destination.crashed:
            self._count_drop(src, dst, message)
            return
        self.messages_delivered += 1
        self._delivered_to[dst] = self._delivered_to.get(dst, 0) + 1
        self._notify("deliver", src, dst, message)
        destination._deliver(src, message)

    # -- reporting -----------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "messages_blocked": self.messages_blocked,
            "bytes_sent": self.bytes_sent,
            # The sim delivers by direct reference — there is no routing
            # demux to misroute or redeliver a frame — so the fabric's
            # misrouting counters are structurally zero; emitted anyway to
            # keep the sim/live message-counter schema diffable.
            "frames_unroutable": 0,
            "frames_duplicate": 0,
        }

    def per_replica_counters(self) -> Dict[int, Dict[str, int]]:
        """Per-process transport counters (same schema as the live runtime).

        All four counters are maintained once, at this framing/transport
        layer, so sim and live report comparable per-replica stats
        (``restarts`` is merged in by the harness from process state).
        """
        return {
            pid: {
                "messages_sent": self._sent_by.get(pid, 0),
                "messages_received": self._delivered_to.get(pid, 0),
                "bytes_sent": self._bytes_by.get(pid, 0),
                "messages_dropped": self._dropped_by.get(pid, 0),
                "messages_delayed": self._delayed_by.get(pid, 0),
            }
            for pid in self.process_ids
        }
